"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's evaluation figures (or an
ablation) and prints the paper-style series to the real stdout, so that

    pytest benchmarks/ --benchmark-only

produces both timing and the reproduced numbers.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print a figure report to the real terminal despite capture."""
    def _print(text: str) -> None:
        with capsys.disabled():
            print("\n" + text, flush=True)
    return _print
