"""Ablation: the slack ratio gamma (paper SIII-B).

The paper sets gamma = 0.2 to "avoid risky interval increasing": without
slack the sampler grows whenever beta == err, which almost guarantees
beta(I+1) > err and an immediate reset (churn), and it flirts with the
allowance. The sweep quantifies the cost/accuracy/stability trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptation import AdaptationConfig
from repro.core.task import TaskSpec
from repro.experiments.figures import _domain_streams
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_adaptive
from repro.workloads import threshold_for_selectivity

GAMMAS = (0.0, 0.1, 0.2, 0.4, 0.8)


def run():
    traces = _domain_streams("network", 4, 8000, seed=0)
    rows = []
    for gamma in GAMMAS:
        config = AdaptationConfig(slack_ratio=gamma)
        ratios, misses = [], []
        for trace in traces:
            threshold = threshold_for_selectivity(trace, 0.4)
            task = TaskSpec(threshold=threshold, error_allowance=0.01,
                            max_interval=10)
            result = run_adaptive(trace, task, config)
            ratios.append(result.sampling_ratio)
            misses.append(result.misdetection_rate)
        rows.append([gamma, float(np.mean(ratios)),
                     float(np.mean(misses))])
    return rows


def test_ablation_slack_ratio(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(["gamma", "cost-ratio", "mis-detection"], rows,
                        title="Ablation: slack ratio (k=0.4%, err=0.01)"))

    by_gamma = {row[0]: row for row in rows}
    # The slack is nearly free: it prevents grow-then-reset churn, so the
    # cost ratio stays within a narrow band across the whole sweep.
    ratios = [row[1] for row in rows]
    assert max(ratios) - min(ratios) < 0.1
    # The paper's default keeps mis-detection at or under the allowance
    # neighbourhood.
    assert by_gamma[0.2][2] <= 0.05
