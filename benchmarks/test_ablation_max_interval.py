"""Ablation: the maximum interval Im (paper SIII-B, user-specified).

``Im`` caps the saving at ``1 - 1/Im`` and bounds how long a fresh
anomaly can stay unseen. The sweep shows the diminishing return: going
from Im=10 to Im=40 buys little extra saving (the cost is already
sub-linear in the interval, as the paper notes: 1 -> 1/2 -> 1/3 ...)
while quadrupling the worst-case blind window.
"""

from __future__ import annotations

import numpy as np

from repro.core.task import TaskSpec
from repro.experiments.figures import _domain_streams
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_adaptive
from repro.workloads import threshold_for_selectivity

MAX_INTERVALS = (2, 5, 10, 20, 40)


def run():
    traces = _domain_streams("network", 4, 8000, seed=0)
    rows = []
    for max_interval in MAX_INTERVALS:
        ratios, misses = [], []
        for trace in traces:
            threshold = threshold_for_selectivity(trace, 0.4)
            task = TaskSpec(threshold=threshold, error_allowance=0.01,
                            max_interval=max_interval)
            result = run_adaptive(trace, task)
            ratios.append(result.sampling_ratio)
            misses.append(result.misdetection_rate)
        rows.append([max_interval, 1.0 - 1.0 / max_interval,
                     float(np.mean(ratios)), float(np.mean(misses))])
    return rows


def test_ablation_max_interval(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(
        ["Im", "saving-cap", "cost-ratio", "mis-detection"], rows,
        title="Ablation: maximum interval Im (network, k=0.4%, "
              "err=0.01)"))

    by_im = {row[0]: row for row in rows}
    # Larger caps cost (weakly) less...
    assert by_im[40][2] <= by_im[2][2] + 0.01
    # ...but the cap binds: the ratio can never beat 1/Im.
    for row in rows:
        assert row[2] >= 1.0 / row[0] - 1e-9
    # Diminishing returns: 10 -> 40 buys far less than 2 -> 10.
    gain_small = by_im[2][2] - by_im[10][2]
    gain_large = by_im[10][2] - by_im[40][2]
    assert gain_large <= gain_small
