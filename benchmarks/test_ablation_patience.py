"""Ablation: the growth patience p (paper SIII-B, p = 20).

Growing only after p consecutive under-slack observations slows ramp-up
but protects against growing on transient calm. The sweep shows the
cost/accuracy trade: small p saves more but risks more misses.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptation import AdaptationConfig
from repro.core.task import TaskSpec
from repro.experiments.figures import _domain_streams
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_adaptive
from repro.workloads import threshold_for_selectivity

PATIENCES = (2, 5, 10, 20, 40)


def run():
    traces = _domain_streams("network", 4, 8000, seed=0)
    rows = []
    for patience in PATIENCES:
        config = AdaptationConfig(patience=patience)
        ratios, misses = [], []
        for trace in traces:
            threshold = threshold_for_selectivity(trace, 0.4)
            task = TaskSpec(threshold=threshold, error_allowance=0.01,
                            max_interval=10)
            result = run_adaptive(trace, task, config)
            ratios.append(result.sampling_ratio)
            misses.append(result.misdetection_rate)
        rows.append([patience, float(np.mean(ratios)),
                     float(np.mean(misses))])
    return rows


def test_ablation_patience(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(["p", "cost-ratio", "mis-detection"], rows,
                        title="Ablation: growth patience (k=0.4%, "
                              "err=0.01)"))

    by_p = {row[0]: row for row in rows}
    # Lower patience grows faster, so it costs (weakly) less.
    assert by_p[2][1] <= by_p[40][1] + 0.02
    # The paper's default remains accurate.
    assert by_p[20][2] <= 0.05
