"""Ablation: delta-statistics maintenance (paper SIII-B, restart at 1000).

The paper restarts the online statistics every 1000 updates so they track
the most recent delta distribution. The sweep compares restart windows
(and a plain sliding window) on a workload whose volatility shifts over
time — too-long memories under-react to the shift, too-short ones starve
the estimator.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptation import AdaptationConfig, ViolationLikelihoodSampler
from repro.core.online_stats import OnlineStatistics, WindowedStatistics
from repro.core.task import TaskSpec
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_sampler_on_trace
from repro.simulation.randomness import RandomStreams


def shifting_trace(n: int, rng: np.random.Generator) -> np.ndarray:
    """Quiet first half, then a 20x noisier second half (regime shift)."""
    half = n // 2
    quiet = 50.0 + rng.normal(0.0, 0.05, half)
    loud = 50.0 + rng.normal(0.0, 1.0, n - half)
    return np.concatenate([quiet, loud])


def run():
    rng = RandomStreams(3).stream("ablation-restart")
    trace = shifting_trace(24_000, rng)
    threshold = float(np.percentile(trace, 99.6))
    task = TaskSpec(threshold=threshold, error_allowance=0.01,
                    max_interval=10)

    variants = [
        ("restart-100", OnlineStatistics(restart_after=100)),
        ("restart-1000", OnlineStatistics(restart_after=1000)),
        ("no-restart", OnlineStatistics(restart_after=None)),
        ("window-256", WindowedStatistics(window=256)),
    ]
    rows = []
    for name, stats in variants:
        sampler = ViolationLikelihoodSampler(task, AdaptationConfig(),
                                             stats=stats)
        result = run_sampler_on_trace(trace, sampler, threshold)
        rows.append([name, result.sampling_ratio,
                     result.misdetection_rate])
    return rows


def test_ablation_stats_restart(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(["stats", "cost-ratio", "mis-detection"], rows,
                        title="Ablation: delta-statistics maintenance "
                              "(regime-shift trace)"))

    by_name = {row[0]: row for row in rows}
    # Every variant keeps mis-detection bounded on this trace.
    assert all(row[2] <= 0.2 for row in rows)
    # The paper's restart-1000 variant saves real cost.
    assert by_name["restart-1000"][1] < 0.9
