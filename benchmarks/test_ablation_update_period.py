"""Ablation: the coordination updating period (paper SIV-B: 1000 Id).

Short periods react faster but compute yields from noisy averages (and
spend more coordinator work); long periods starve the reallocation loop
of rounds. The sweep brackets the paper's 1000-interval choice on the
Fig. 8 hotspot workload.
"""

from __future__ import annotations

from repro.core.coordination import AdaptiveAllocation
from repro.core.task import DistributedTaskSpec
from repro.experiments.distributed import run_distributed_task
from repro.experiments.reporting import format_table
from repro.simulation.randomness import RandomStreams
from repro.workloads import TrafficDifferenceGenerator
from repro.workloads.thresholds import thresholds_for_violation_rates
from repro.workloads.zipf import zipf_hotspot_rates

PERIODS = (250, 500, 1000, 2000, 5000)


def run():
    num_monitors, horizon = 8, 20_000
    streams = RandomStreams(0)
    traces = []
    for i in range(num_monitors):
        rng = streams.stream("ablation-period", i)
        traces.append(TrafficDifferenceGenerator(
            diurnal_depth=0.0, burst_prob=0.0006,
            burst_hold=14).generate(horizon, rng))
    rates = zipf_hotspot_rates(num_monitors, 1.5, 0.2)
    thresholds = thresholds_for_violation_rates(traces, rates)
    spec = DistributedTaskSpec(global_threshold=float(sum(thresholds)),
                               local_thresholds=tuple(thresholds),
                               error_allowance=0.01, max_interval=10)
    rows = []
    for period in PERIODS:
        result = run_distributed_task(traces, spec,
                                      policy=AdaptiveAllocation(),
                                      update_period=period)
        rows.append([period, result.sampling_ratio,
                     result.misdetection_rate, result.reallocations])
    return rows


def test_ablation_update_period(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(
        ["period", "cost-ratio", "mis-detection", "realloc-rounds"],
        rows,
        title="Ablation: coordination updating period (hotspot skew 1.5, "
              "err=0.01)"))

    by_period = {row[0]: row for row in rows}
    # Every period keeps the accuracy safeguard.
    assert all(row[2] <= 0.05 for row in rows)
    # The paper's 1000-interval period is competitive: within a small
    # margin of the best period in the sweep.
    best = min(row[1] for row in rows)
    assert by_period[1000][1] <= best + 0.05
