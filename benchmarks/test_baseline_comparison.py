"""Baseline bench: Volley vs. budget-matched random sampling.

The paper positions random sampling as complementary (SVI); this bench
shows why it is not a substitute: at the *same* sampling budget Volley
places its samples where violations are likely, while random placement
misses a large share of alerts.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.random_interval import RandomIntervalSampler
from repro.core.task import TaskSpec
from repro.experiments.figures import _domain_streams
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_adaptive, run_sampler_on_trace
from repro.workloads import threshold_for_selectivity


def run():
    traces = _domain_streams("network", 4, 8000, seed=0)
    volley_ratios, volley_miss = [], []
    random_ratios, random_miss = [], []
    for i, trace in enumerate(traces):
        threshold = threshold_for_selectivity(trace, 0.4)
        task = TaskSpec(threshold=threshold, error_allowance=0.01,
                        max_interval=10)
        volley = run_adaptive(trace, task)
        volley_ratios.append(volley.sampling_ratio)
        volley_miss.append(volley.misdetection_rate)

        budget = max(1.0 / volley.sampling_ratio, 1.0)
        random = run_sampler_on_trace(
            trace,
            RandomIntervalSampler(budget, np.random.default_rng(100 + i),
                                  max_interval=10 * 4),
            threshold)
        random_ratios.append(random.sampling_ratio)
        random_miss.append(random.misdetection_rate)
    return [
        ["volley", float(np.mean(volley_ratios)),
         float(np.mean(volley_miss))],
        ["random (same budget)", float(np.mean(random_ratios)),
         float(np.mean(random_miss))],
    ]


def test_random_baseline(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(["scheme", "cost-ratio", "mis-detection"], rows,
                        title="Volley vs budget-matched random sampling "
                              "(network, k=0.4%)"))

    volley, random = rows
    # Budgets are matched by construction...
    assert abs(volley[1] - random[1]) < 0.1
    # ...but random placement misses far more alerts.
    assert random[2] > volley[2] + 0.2
