"""Coordination convergence bench (paper SIV-B).

The paper claims the iterative allowance assignment "eventually converges
to a stable assignment when the monitored data distribution across nodes
does not significantly change". This bench runs the adaptive allocation
on stationary heterogeneous streams and measures the settling behaviour
with :func:`repro.analysis.allocation_convergence`.
"""

from __future__ import annotations

from repro.analysis import allocation_convergence
from repro.core.coordination import AdaptiveAllocation
from repro.core.task import DistributedTaskSpec
from repro.experiments.distributed import run_distributed_task
from repro.experiments.reporting import format_table
from repro.simulation.randomness import RandomStreams
from repro.workloads import TrafficDifferenceGenerator
from repro.workloads.thresholds import thresholds_for_violation_rates
from repro.workloads.zipf import zipf_hotspot_rates


def run():
    num_monitors, horizon = 8, 24_000
    streams = RandomStreams(0)
    traces = []
    for i in range(num_monitors):
        rng = streams.stream("bench-convergence", i)
        traces.append(TrafficDifferenceGenerator(
            diurnal_depth=0.0, burst_prob=0.0006,
            burst_hold=14).generate(horizon, rng))
    rates = zipf_hotspot_rates(num_monitors, 1.5, 0.2)
    thresholds = thresholds_for_violation_rates(traces, rates)
    spec = DistributedTaskSpec(global_threshold=float(sum(thresholds)),
                               local_thresholds=tuple(thresholds),
                               error_allowance=0.01, max_interval=10)
    result = run_distributed_task(traces, spec,
                                  policy=AdaptiveAllocation(),
                                  update_period=1000,
                                  keep_allocations=True)
    convergence = allocation_convergence(
        list(result.allocation_history), tolerance=0.2)
    return result, convergence


def test_allocation_convergence(benchmark, report):
    result, convergence = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["rounds", len(result.allocation_history) - 1],
        ["reallocations", result.reallocations],
        ["converged", convergence.converged],
        ["rounds-to-converge", convergence.rounds_to_converge],
        ["max movement (L1/err)", round(convergence.max_movement, 3)],
        ["final movement (L1/err)", round(convergence.final_movement, 3)],
    ]
    report(format_table(["quantity", "value"], rows,
                        title="Adaptive-allocation convergence on "
                              "stationary skewed streams"))

    assert convergence.converged, "allocation must settle on stable data"
    assert convergence.final_movement < 0.2
