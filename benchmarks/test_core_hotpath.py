"""Core hot-path benchmarks: fused fast path vs. reference (DESIGN.md S27).

Times the three optimised layers against their reference twins on the
same synthetic trace the ``bench_core`` CLI uses, asserts the fast path
is actually faster, and — most importantly — asserts the decision
streams are *identical* before any timing result counts. The standalone
CLI (``python -m repro.experiments.bench_core``) runs the same
comparison on a ~1M-point trace and writes ``BENCH_core.json``.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptation import AdaptationConfig, ViolationLikelihoodSampler
from repro.core.task import TaskSpec
from repro.experiments.bench_core import (_evaluate_sampling_legacy,
                                          synthetic_trace)
from repro.experiments.runner import run_adaptive, run_sampler_on_trace

N = 50_000
SEED = 7


def _bench_task(trace: np.ndarray) -> TaskSpec:
    threshold = float(np.quantile(trace, 0.99))
    return TaskSpec(threshold=threshold, error_allowance=0.05,
                    max_interval=10, name="bench-hotpath")


def test_observe_fast_throughput(benchmark, report):
    """Per-call observe_fast vs. observe at every grid point."""
    trace = synthetic_trace(N, SEED)
    values = trace.tolist()
    task = _bench_task(trace)
    config = AdaptationConfig()

    def run_fast():
        sampler = ViolationLikelihoodSampler(task, config)
        observe_fast = sampler.observe_fast
        for t in range(N):
            observe_fast(values[t], t)
        return sampler

    benchmark.pedantic(run_fast, rounds=3, iterations=1)

    # Equivalence gate: the fast surface must leave the sampler in the
    # exact state the reference surface does.
    fast = run_fast()
    ref = ViolationLikelihoodSampler(task, config)
    for t in range(N):
        ref.observe(values[t], t)
    assert fast.state_dict() == ref.state_dict()

    per_call = benchmark.stats["mean"] / N
    report(f"observe_fast: {per_call * 1e6:.2f} us/call "
           f"({1.0 / per_call:,.0f} calls/s)")


def test_run_adaptive_fused_vs_reference(benchmark, report):
    """End-to-end fused driver vs. the reference decision-object driver."""
    trace = synthetic_trace(N, SEED)
    task = _bench_task(trace)
    config = AdaptationConfig()

    fast = benchmark.pedantic(lambda: run_adaptive(trace, task, config),
                              rounds=3, iterations=1)
    reference = run_sampler_on_trace(
        trace, ViolationLikelihoodSampler(task, config), task.threshold,
        task.direction)
    assert np.array_equal(reference.sampled_indices, fast.sampled_indices)
    assert np.array_equal(reference.intervals, fast.intervals)
    assert reference.accuracy == fast.accuracy

    points_per_sec = N / benchmark.stats["mean"]
    report(f"run_adaptive (fused): {points_per_sec:,.0f} points/s, "
           f"sampling ratio {fast.accuracy.sampling_ratio:.3f}")


def test_evaluate_sampling_vectorized(benchmark, report):
    """Vectorized scorer vs. the seed's set-based scorer."""
    from repro.core.accuracy import evaluate_sampling

    trace = synthetic_trace(N, SEED)
    task = _bench_task(trace)
    sampled = run_adaptive(trace, task).sampled_indices

    result = benchmark(
        lambda: evaluate_sampling(trace, task.threshold, sampled))
    legacy = _evaluate_sampling_legacy(trace, task.threshold, sampled)
    assert legacy["truth_alerts"] == result.truth_alerts
    assert legacy["detected_alerts"] == result.detected_alerts
    assert legacy["detected_episodes"] == result.detected_episodes
    assert legacy["misdetection_rate"] == result.misdetection_rate
    assert legacy["mean_detection_delay"] == result.mean_detection_delay

    report(f"evaluate_sampling: {benchmark.stats['mean'] * 1e3:.2f} ms "
           f"for {N:,} points / {sampled.size:,} samples")
