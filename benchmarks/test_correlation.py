"""Multi-task state-correlation benchmark (paper SII-A, our S7).

Measures the extra saving from guarding an expensive task with a cheap
correlated trigger on top of violation-likelihood adaptation, and the
accuracy cost of doing so.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptation import AdaptationConfig
from repro.core.correlation import CorrelationPlanner, TaskProfile
from repro.core.task import TaskSpec
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_adaptive, run_triggered
from repro.simulation.randomness import RandomStreams
from repro.workloads import TrafficDifferenceGenerator


def build_streams():
    rng = RandomStreams(17).stream("bench-correlation")
    n = 30_000
    response = 20.0 + rng.normal(0.0, 1.5, n)
    rho = TrafficDifferenceGenerator(burst_prob=0.0).generate(n, rng)
    for s in range(2500, n - 200, 2500):
        span = int(rng.integers(80, 140))
        response[s:s + span] += rng.uniform(120.0, 280.0)
        rho[s + 10:s + span - 10] += rng.uniform(2500.0, 6000.0)
    return response, rho


def run():
    response, rho = build_streams()
    threshold = 1000.0
    planner = CorrelationPlanner(min_score=0.9, loss_budget=0.1,
                                 suspend_interval=10)
    rules = planner.plan([
        TaskProfile(task_id="response", values=response, threshold=150.0,
                    cost_per_sample=1.0),
        TaskProfile(task_id="ddos", values=rho, threshold=threshold,
                    cost_per_sample=40.0),
    ])
    assert rules, "planner must find the designed correlation"
    rule = rules[0]

    task = TaskSpec(threshold=threshold, error_allowance=0.01,
                    max_interval=10)
    plain = run_adaptive(rho, task)
    guarded = run_triggered(rho, response, task, rule.elevation_level,
                            suspend_interval=10,
                            config=AdaptationConfig())
    return rule, plain, guarded


def test_correlation_guarding(benchmark, report):
    rule, plain, guarded = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["volley", plain.sampling_ratio, plain.misdetection_rate],
        ["volley+trigger", guarded.sampling_ratio,
         guarded.misdetection_rate],
    ]
    report(format_table(["scheme", "cost-ratio", "mis-detection"], rows,
                        title=(f"Correlation guarding (score="
                               f"{rule.evidence.necessary_condition_score:.3f}, "
                               f"trigger hot "
                               f"{rule.evidence.elevated_fraction:.0%} of "
                               f"time)")))

    # Guarding saves on top of adaptation...
    assert guarded.sampling_ratio < plain.sampling_ratio
    # ...without busting the loss budget.
    assert guarded.misdetection_rate <= \
        plain.misdetection_rate + rule.estimated_loss + 0.1
