"""Extension bench: detection delay and event coverage at matched cost.

The paper's SI motivation, quantified over injected SYN-flood episodes:
Volley detects every episode with delay bounded by its maximum interval,
and — because the rising bound re-arms it to the default rate for the
whole episode — captures nearly all violating points for offline event
analysis, where cost-matched periodic sampling captures only ~1/I of
them.
"""

from __future__ import annotations

from repro.experiments.delay import detection_delay_experiment


def run():
    return detection_delay_experiment(num_episodes=12, horizon=30_000)


def test_detection_delay(benchmark, report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(result.report())

    # Every episode detected, with bounded delay.
    assert result.volley_missed == 0
    assert max(result.volley_delays) <= 20

    # The offline-analysis win: near-complete event data vs ~1/I.
    assert result.volley_coverage > 0.9
    assert result.volley_coverage > result.periodic_coverage + 0.2
