"""Estimator ablation: Chebyshev bound vs. Gaussian tail (paper SVI).

The paper deliberately avoids distributional assumptions ("some works
make assumptions on value distributions, while our approach makes no such
assumptions") and accepts Chebyshev's looseness. This ablation quantifies
the trade: the Gaussian estimator grows intervals faster (cheaper) but
its accuracy depends on delta actually being normal — on heavy-tailed
bursty streams it gives up more mis-detections.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptation import AdaptationConfig
from repro.core.task import TaskSpec
from repro.experiments.figures import _domain_streams
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_adaptive
from repro.workloads import threshold_for_selectivity


def run():
    traces = _domain_streams("network", 4, 8000, seed=0)
    rows = []
    for estimator in ("chebyshev", "gaussian"):
        config = AdaptationConfig(estimator=estimator)
        ratios, misses = [], []
        for trace in traces:
            threshold = threshold_for_selectivity(trace, 0.4)
            task = TaskSpec(threshold=threshold, error_allowance=0.01,
                            max_interval=10)
            result = run_adaptive(trace, task, config)
            ratios.append(result.sampling_ratio)
            misses.append(result.misdetection_rate)
        rows.append([estimator, float(np.mean(ratios)),
                     float(np.mean(misses))])
    return rows


def test_estimator_comparison(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(["estimator", "cost-ratio", "mis-detection"], rows,
                        title="Estimator ablation (network, k=0.4%, "
                              "err=0.01)"))

    by_name = {row[0]: row for row in rows}
    # The distribution-free bound is never cheaper than the exact
    # Gaussian tail (Cantelli dominates the normal tail everywhere).
    assert by_name["gaussian"][1] <= by_name["chebyshev"][1] + 1e-9
    # Chebyshev's conservatism keeps its accuracy at least as good.
    assert by_name["chebyshev"][2] <= by_name["gaussian"][2] + 0.02
