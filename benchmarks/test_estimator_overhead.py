"""Micro-benchmark: violation-likelihood estimation overhead (paper SIII-B).

The paper argues the estimation cost is negligible next to a sampling
operation ("sampling operations are usually much more expensive than
violation likelihood estimation"). These benchmarks measure the raw
throughput of the bound computation and of a full adaptation step, and
compare against the modelled cost of one network sampling operation.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptation import ViolationLikelihoodSampler
from repro.core.likelihood import misdetection_bound
from repro.core.task import TaskSpec
from repro.datacenter.cost import NetworkSamplingCostModel

N = 20_000


def test_misdetection_bound_throughput(benchmark):
    def run():
        total = 0.0
        for i in range(1000):
            total += misdetection_bound(10.0 + (i % 7), 100.0, 0.01, 2.0,
                                        1 + i % 10)
        return total

    benchmark(run)


def test_full_adaptation_step_throughput(benchmark, report):
    rng = np.random.default_rng(0)
    values = (10.0 + rng.normal(0.0, 1.0, N)).tolist()
    task = TaskSpec(threshold=100.0, error_allowance=0.01, max_interval=10)

    def run():
        sampler = ViolationLikelihoodSampler(task)
        t = 0
        for i in range(N):
            decision = sampler.observe(values[i], t)
            t += 1  # feed every grid point: worst-case estimation load
        return decision

    benchmark.pedantic(run, rounds=3, iterations=1)

    # The paper's claim, quantified with our own cost model: one network
    # sampling op costs ~0.1 CPU-seconds, one adaptation step costs
    # microseconds.
    seconds_per_step = benchmark.stats["mean"] / N
    sampling_op = NetworkSamplingCostModel().cpu_seconds(20_000)
    ratio = sampling_op / seconds_per_step
    report(f"estimation step: {seconds_per_step * 1e6:.2f} us; one "
           f"network sampling op: {sampling_op * 1e3:.0f} ms "
           f"(~{ratio:,.0f}x more expensive)")
    assert ratio > 100, "estimation should be negligible vs sampling"
