"""Fig. 5(a): network-level monitoring overhead saving.

Paper: violation-likelihood sampling performs 10%-60% of periodic
sampling operations (40-90% saving); savings grow with the error
allowance and with alert selectivity (smaller k); varying k from 6.4% to
0.1% buys on the order of 40% extra cost reduction.
"""

from __future__ import annotations

from repro.experiments.figures import fig5


def run():
    return fig5("network", num_streams=4, horizon=8000, seed=0)


def test_fig5a_network_overhead(benchmark, report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(result.report())

    errs = result.error_allowances
    ks = result.selectivities

    # Savings grow (weakly) with the error allowance for every k.
    for k in ks:
        first = result.cell(k, errs[0]).sampling_ratio
        last = result.cell(k, errs[-1]).sampling_ratio
        assert last <= first + 0.02

    # Higher selectivity (smaller k) saves more at the largest allowance.
    coarse = result.cell(6.4, errs[-1]).sampling_ratio
    fine = result.cell(0.1, errs[-1]).sampling_ratio
    assert fine < coarse

    # Headline: savings reach deep into the paper's 40-90% band.
    best = min(c.sampling_ratio for c in result.cells)
    assert best < 0.35, f"best ratio {best:.3f} — expected <0.35"

    # Varying k from 6.4 to 0.1 buys substantial extra reduction.
    assert coarse - fine > 0.2
