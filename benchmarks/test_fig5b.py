"""Fig. 5(b): system-level monitoring overhead saving.

Paper: the same sweep over OS performance metrics also saves cost, but
with smaller ratios than the network case because system metrics change
more between samples than (off-peak) traffic does.
"""

from __future__ import annotations

from repro.experiments.figures import fig5


def run():
    return fig5("system", num_streams=4, horizon=8000, seed=0)


def test_fig5b_system_overhead(benchmark, report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(result.report())

    errs = result.error_allowances

    # Monotone in the allowance.
    for k in result.selectivities:
        first = result.cell(k, errs[0]).sampling_ratio
        last = result.cell(k, errs[-1]).sampling_ratio
        assert last <= first + 0.02

    # Real savings exist at the large-allowance end...
    best = min(c.sampling_ratio for c in result.cells)
    assert best < 0.7

    # ...but the domain saves less than the network sweep (paper's
    # explicit observation). Compare the same corner cell.
    from repro.experiments.figures import fig5 as fig5_driver
    network = fig5_driver("network", num_streams=4, horizon=8000, seed=0,
                          selectivities=(0.1,),
                          error_allowances=(errs[-1],))
    net_best = network.cells[0].sampling_ratio
    sys_best = result.cell(0.1, errs[-1]).sampling_ratio
    assert sys_best >= net_best
