"""Fig. 5(c): application-level monitoring overhead saving.

Paper: per-object access-rate tasks save heavily because web access is
bursty with long off-peak periods (diurnal effects), letting adaptation
use large intervals most of the time.
"""

from __future__ import annotations

from repro.experiments.figures import fig5


def run():
    return fig5("application", num_streams=4, horizon=8000, seed=0)


def test_fig5c_application_overhead(benchmark, report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(result.report())

    errs = result.error_allowances

    for k in result.selectivities:
        first = result.cell(k, errs[0]).sampling_ratio
        last = result.cell(k, errs[-1]).sampling_ratio
        assert last <= first + 0.02

    # Deep savings at the rare-alert/large-allowance corner.
    best = min(c.sampling_ratio for c in result.cells)
    assert best < 0.4

    # Mis-detection stays bounded across the whole sweep.
    worst_miss = max(c.misdetection_rate for c in result.cells)
    assert worst_miss <= 0.15
