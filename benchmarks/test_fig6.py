"""Fig. 6: Dom0 CPU utilisation of network monitoring vs. error allowance.

Paper: periodic sampling (err = 0) of 40 VMs costs 20-34% of Dom0's CPU;
growing the allowance quickly cuts that by at least half, down to ~5%,
with whiskers reflecting traffic variation.
"""

from __future__ import annotations

from repro.experiments.figures import fig6


def run():
    return fig6(num_servers=1, vms_per_server=40, horizon=1500, seed=0)


def test_fig6_dom0_cpu(benchmark, report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(result.report())

    stats = dict(zip(result.error_allowances, result.stats))
    periodic = stats[0.0]

    # err = 0 degenerates to periodic sampling at full cost.
    assert result.sampling_ratios[0] == 1.0
    # The periodic band sits in the paper's 20-34% range.
    assert 18.0 < periodic["mean"] < 36.0

    # Mean utilisation decreases (weakly) with the allowance.
    means = [s["mean"] for s in result.stats]
    assert all(b <= a + 0.5 for a, b in zip(means, means[1:]))

    # The largest allowance at least halves the CPU cost (paper: "reduces
    # the CPU utilization by at least a half (up to 80%)").
    largest = stats[result.error_allowances[-1]]
    assert largest["mean"] <= 0.5 * periodic["mean"]

    # Box statistics are internally consistent.
    for s in result.stats:
        assert s["min"] <= s["q25"] <= s["median"] <= s["q75"] <= s["max"]
