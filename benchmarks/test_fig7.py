"""Fig. 7: actual mis-detection rate of system-level tasks.

Paper: the realised mis-detection rate stays below the specified error
allowance in most cells; tasks with high alert selectivity (small k) show
relatively larger rates because they have few alerts (small denominator)
and long intervals.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import fig7, fig7_report


def run():
    return fig7(num_streams=6, horizon=8000, seed=0)


def test_fig7_misdetection(benchmark, report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(fig7_report(result))

    matrix = result.misdetection_matrix()

    # "Lower than the specified error allowance in most cases."
    cells = [(k, err) for k in result.selectivities
             for err in result.error_allowances]
    within = sum(1 for k, err in cells if matrix[(k, err)] <= err)
    assert within / len(cells) >= 0.6, (
        f"only {within}/{len(cells)} cells within the allowance")

    # No cell explodes: everything stays the same order of magnitude as
    # the allowance band.
    assert max(matrix.values()) <= 0.2

    # Small-k tasks carry the larger rates (the paper's second
    # observation). On quiet system streams both groups sit near zero, so
    # the comparison carries a small tolerance: the claim to protect is
    # that small-k does not get *meaningfully better* accuracy.
    ks = sorted(result.selectivities)
    small_k = np.mean([matrix[(k, e)] for k in ks[:2]
                       for e in result.error_allowances])
    large_k = np.mean([matrix[(k, e)] for k in ks[-2:]
                       for e in result.error_allowances])
    assert small_k >= large_k - 0.005
