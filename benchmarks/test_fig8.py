"""Fig. 8: distributed sampling coordination, adaptive vs. even.

Paper: as the per-monitor local violation rates skew (Zipf), the even
error-allowance split degrades because allowance parked on hot monitors
buys nothing; the adaptive yield-driven allocation reclaims it and costs
less. At zero skew the two schemes are close.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import fig8


def run():
    return fig8(num_monitors=8, horizon=15_000, repeats=3, seed=0)


def test_fig8_distributed_coordination(benchmark, report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(result.report())

    even = np.array(result.even_ratios)
    adapt = np.array(result.adaptive_ratios)

    # Hotspot skew degrades the even scheme.
    assert even[-1] > even[0] + 0.1

    # The adaptive scheme never does meaningfully worse than even...
    assert (adapt <= even + 0.02).all()

    # ...and wins where it matters (the skewed end).
    assert adapt[-1] < even[-1]

    # Accuracy safeguard holds for both schemes.
    assert max(result.even_misdetection) <= 0.05
    assert max(result.adaptive_misdetection) <= 0.05
