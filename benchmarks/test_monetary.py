"""Monetary cost bench (paper SI: monitoring up to 18% of operation cost).

Prices a fleet of CloudWatch-style pay-per-sample monitoring tasks and
shows the monthly bill under periodic vs. violation-likelihood sampling.
"""

from __future__ import annotations

from repro.experiments.monetary import monetary_analysis


def run():
    return monetary_analysis(num_tasks=8, horizon=8000,
                             error_allowance=0.01)


def test_monetary_saving(benchmark, report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(result.report())

    # Periodic monitoring of this fleet sits in the "substantial share of
    # the operation bill" regime the paper cites (up to 18%).
    periodic_share = result.monitoring_fraction(result.periodic_cost)
    assert periodic_share > 0.1

    # Volley cuts the monitoring bill proportionally to its sampling
    # ratio and pushes the share down accordingly.
    adaptive_share = result.monitoring_fraction(result.adaptive_cost)
    assert adaptive_share < 0.6 * periodic_share
    assert result.saving > 0.0
