"""Multi-task level bench: datacenter-wide correlation scheduling (SII-A).

The paper's third level, end to end: profile a historical window, let the
planner discover that response time gates the expensive DPI task, run the
fleet with the planned triggers, and compare weighted cost and accuracy
against plain violation-likelihood adaptation.
"""

from __future__ import annotations

from repro.experiments.multitask import multitask_experiment


def run():
    return multitask_experiment(num_vms=4, horizon=24_000)


def test_multitask_fleet(benchmark, report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(result.report())

    assert result.rules_planned == result.num_vms
    assert result.planned_cost < result.plain_cost
    assert result.planned_misdetection <= result.plain_misdetection + 0.1
