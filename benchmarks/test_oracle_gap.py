"""Reference bench: Volley's distance to the clairvoyant oracle.

Not a paper figure — a sanity yardstick. The oracle samples exactly the
violating points (plus a heartbeat), the absolute cost floor for perfect
detection. Volley should land between periodic and oracle, much closer to
periodic in accuracy and much closer to oracle in cost at rare-alert
selectivities.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.oracle import OracleSampler
from repro.core.task import TaskSpec
from repro.experiments.figures import _domain_streams
from repro.experiments.reporting import format_table
from repro.experiments.runner import (run_adaptive, run_periodic,
                                      run_sampler_on_trace)
from repro.workloads import threshold_for_selectivity


def run():
    traces = _domain_streams("network", 4, 8000, seed=0)
    rows = []
    ratios = {"periodic": [], "volley": [], "oracle": []}
    misses = {"periodic": [], "volley": [], "oracle": []}
    for trace in traces:
        threshold = threshold_for_selectivity(trace, 0.4)
        task = TaskSpec(threshold=threshold, error_allowance=0.01,
                        max_interval=10)
        for name, result in (
                ("periodic", run_periodic(trace, threshold)),
                ("volley", run_adaptive(trace, task)),
                ("oracle", run_sampler_on_trace(
                    trace, OracleSampler(trace, threshold, heartbeat=100),
                    threshold))):
            ratios[name].append(result.sampling_ratio)
            misses[name].append(result.misdetection_rate)
    for name in ("periodic", "volley", "oracle"):
        rows.append([name, float(np.mean(ratios[name])),
                     float(np.mean(misses[name]))])
    return rows


def test_oracle_gap(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(["scheme", "cost-ratio", "mis-detection"], rows,
                        title="Volley between periodic and the oracle "
                              "(network, k=0.4%, err=0.01)"))
    by_name = {row[0]: row for row in rows}
    assert by_name["oracle"][1] <= by_name["volley"][1] \
        <= by_name["periodic"][1]
    assert by_name["volley"][2] <= 0.05
