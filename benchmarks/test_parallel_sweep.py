"""Parallel sweep layer: pool fan-out vs serial, and warm-cache re-runs.

Not a paper figure — this benchmarks the execution substrate every
figure sweep now runs on (DESIGN.md S25). Three claims to watch:

* ``workers=N`` produces bit-for-bit the ``workers=1`` matrix;
* a warm cache turns a full sweep into pure disk reads;
* the observability surface (cache hits, per-cell wall time) is real.
"""

from __future__ import annotations

import tempfile

from repro.experiments.figures import fig5
from repro.experiments.parallel import SweepCache

KWARGS = dict(num_streams=3, horizon=4000, seed=0,
              selectivities=(3.2, 0.8), error_allowances=(0.008, 0.032))


def run_serial():
    return fig5("network", workers=1, **KWARGS)


def run_parallel():
    return fig5("network", workers=2, **KWARGS)


def test_parallel_sweep_equivalence(benchmark, report):
    parallel = benchmark.pedantic(run_parallel, rounds=1, iterations=1)
    serial = run_serial()
    report(parallel.report())
    report(parallel.sweep_stats.report())

    # The tentpole guarantee: fan-out changes nothing about the numbers.
    assert parallel.cells == serial.cells
    assert parallel.sweep_stats.workers == 2
    assert parallel.sweep_stats.cache_misses == len(parallel.cells)


def test_warm_cache_sweep(benchmark, report):
    with tempfile.TemporaryDirectory() as tmp:
        cache = SweepCache(tmp)
        cold = fig5("network", workers=1, cache=cache, **KWARGS)

        def rerun():
            return fig5("network", workers=1, cache=cache, **KWARGS)

        warm = benchmark.pedantic(rerun, rounds=1, iterations=1)
        report(warm.sweep_stats.report())

        assert warm.cells == cold.cells
        assert warm.sweep_stats.cache_hits == len(warm.cells)
        assert warm.sweep_stats.cache_misses == 0
