"""Robustness bench: coordination under message loss.

The paper assumes reliable coordinator<->monitor messaging; its companion
work exists because that assumption fails in practice. This bench
measures the failure mode on our testbed: a single-victim flood whose
global alerts hinge on one monitor's violation reports, swept over
message-loss rates. Recall degrades roughly like the report delivery
probability — the quantitative case for reliability-aware coordination.
"""

from __future__ import annotations

from repro.experiments.reliability import reliability_experiment


def run():
    return reliability_experiment()


def test_reliability_under_message_loss(benchmark, report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(result.report())

    assert result.recalls[0] == 1.0
    # Monotone-ish degradation, substantial at heavy loss.
    assert result.recalls[-1] <= result.recalls[0] - 0.2
    assert all(b <= a + 0.1 for a, b
               in zip(result.recalls, result.recalls[1:]))
