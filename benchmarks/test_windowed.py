"""Extension bench: aggregation-time-window tasks (paper SVII).

The paper names windowed tasks as ongoing work. The quantitative story:
aggregating over a window smooths the per-step change delta, so the same
violation-likelihood machinery earns *larger* intervals at the same
allowance — windowed tasks benefit more from Volley than instantaneous
ones.
"""

from __future__ import annotations

import numpy as np

from repro.core.task import TaskSpec
from repro.core.windowed import (AggregateKind, WindowedTaskSpec,
                                 aggregate_trace, run_windowed_adaptive)
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_adaptive
from repro.simulation.randomness import RandomStreams
from repro.workloads import TrafficDifferenceGenerator

WINDOWS = (1, 4, 12, 40)


def run():
    rng = RandomStreams(5).stream("bench-windowed")
    raw = TrafficDifferenceGenerator().generate(20_000, rng)
    rows = []
    for window in WINDOWS:
        aggregated = aggregate_trace(raw, window, AggregateKind.MEAN)
        threshold = float(np.percentile(aggregated, 99.6))
        task = TaskSpec(threshold=threshold, error_allowance=0.01,
                        max_interval=10)
        if window == 1:
            result = run_adaptive(raw, task)
            rows.append([window, result.sampling_ratio,
                         result.misdetection_rate])
        else:
            result = run_windowed_adaptive(
                raw, WindowedTaskSpec(task=task, window=window))
            rows.append([window, result.sampling_ratio,
                         result.misdetection_rate])
    return rows


def test_windowed_aggregation(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(["window", "cost-ratio", "mis-detection"], rows,
                        title="Windowed-aggregate tasks (mean over w, "
                              "k=0.4%, err=0.01)"))

    by_window = {row[0]: row for row in rows}
    # A meaningful aggregation window samples less than the instantaneous
    # task: the aggregate's delta is smoother.
    assert by_window[40][1] < by_window[1][1]
    # Accuracy stays bounded across windows.
    assert all(row[2] <= 0.1 for row in rows)
