#!/usr/bin/env python3
"""Full datacenter testbed run (paper SV-A, Fig. 4 topology).

Builds the simulated virtualized datacenter — physical servers, Dom0 CPU
accounting, VMs with traffic agents, per-VM monitors, one coordinator per
server group — in *distributed* mode, runs it, and prints the cost,
accuracy, Dom0 CPU and coordination-traffic summary.

Run: python examples/coordinated_cluster.py
     REPRO_FULL=1 python examples/coordinated_cluster.py   # paper scale
"""

from __future__ import annotations

import os

import numpy as np

from repro import AdaptiveAllocation
from repro.datacenter import TestbedConfig, build_testbed
from repro.workloads import SynFloodAttack, inject_attacks


def main() -> None:
    full = os.environ.get("REPRO_FULL", "") == "1"
    config = TestbedConfig(
        num_servers=20 if full else 4,
        vms_per_server=40 if full else 10,
        servers_per_coordinator=5 if full else 2,
        horizon_steps=2000,
        error_allowance=0.01,
        selectivity_percent=0.4,
        distributed=True,
        seed=1,
    )
    print(f"building testbed: {config.num_servers} servers x "
          f"{config.vms_per_server} VMs = {config.num_vms} VMs, "
          f"{config.num_coordinators} coordinators")

    # A coordinated SYN flood hits every VM of the first coordinator
    # group: the global (summed) traffic difference of that task crosses
    # its threshold, the per-VM floods only barely cross the local ones.
    attack = SynFloodAttack(start=1500, peak_syn_rate=3000.0,
                            ramp_steps=8, hold_steps=40, decay_steps=8)
    group0 = config.servers_per_coordinator * config.vms_per_server

    def flood_group0(vm_id: int, rho: np.ndarray, packets: np.ndarray):
        if vm_id < group0:
            rho = inject_attacks(rho, [attack])
            packets = packets + attack.profile(packets.size).astype(int)
        return rho, packets

    testbed = build_testbed(config, policy=AdaptiveAllocation(),
                            trace_hook=flood_group0)
    testbed.run()

    print(f"\nsimulated {config.horizon_steps} windows of "
          f"{config.default_interval:.0f}s "
          f"({config.horizon_steps * config.default_interval / 3600:.1f} "
          f"hours); engine processed {testbed.engine.events_processed} "
          f"events")
    print(f"total samples: {testbed.total_samples} "
          f"(ratio vs periodic: {testbed.sampling_ratio:.3f})")

    print("\nper-coordinator tasks:")
    for i, coordinator in enumerate(testbed.coordinators):
        print(f"  group {i}: {coordinator.spec.num_monitors} monitors, "
              f"{len(coordinator.polls)} polls, "
              f"{len(coordinator.alerts)} global alerts, "
              f"{coordinator.reallocations} reallocation rounds")

    print("\nDom0 CPU utilisation per server (percent):")
    for server, stats in zip(testbed.servers,
                             testbed.dom0_utilization_stats()):
        print(f"  server {server.server_id}: median "
              f"{stats['median']:5.1f}  q25 {stats['q25']:5.1f}  "
              f"q75 {stats['q75']:5.1f}  max {stats['max']:5.1f}")

    print("\ncoordination traffic:", testbed.network.breakdown())


if __name__ == "__main__":
    main()
