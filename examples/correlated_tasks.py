#!/usr/bin/env python3
"""Multi-task state correlation (paper SII-A "State Correlation").

The paper's example: rising response time is a *necessary condition* of a
successful DDoS attack, so the expensive DDoS task (deep packet
inspection) only needs intensive sampling while the cheap response-time
metric is elevated. This script:

1. generates correlated response-time and traffic-difference streams,
2. lets :class:`CorrelationPlanner` discover the trigger automatically,
3. runs the guarded task and compares cost/accuracy against plain
   adaptive sampling and periodic sampling.

Run: python examples/correlated_tasks.py
"""

from __future__ import annotations

import numpy as np

from repro import (AdaptationConfig, CorrelationPlanner, TaskProfile,
                   TaskSpec, run_adaptive, run_periodic, run_triggered)
from repro.workloads import TrafficDifferenceGenerator

HORIZON = 40_000
DPI_COST = 40.0  # one DPI sampling op costs ~40x a counter read


def correlated_streams(rng: np.random.Generator):
    """Response time (cheap) leads traffic difference (expensive)."""
    response = 20.0 + rng.normal(0.0, 1.5, HORIZON)
    rho = TrafficDifferenceGenerator(burst_prob=0.0).generate(HORIZON, rng)
    # Attack-ish episodes: response time rises, then rho follows.
    starts = rng.choice(np.arange(3000, HORIZON - 200), size=12,
                        replace=False)
    for s in np.sort(starts):
        span = int(rng.integers(60, 140))
        response[s:s + span] += rng.uniform(100.0, 300.0)
        rho[s + 10:s + span - 10] += rng.uniform(2000.0, 6000.0)
    return response, rho


def main() -> None:
    rng = np.random.default_rng(99)
    response, rho = correlated_streams(rng)
    rho_threshold = 1000.0

    planner = CorrelationPlanner(min_score=0.9, loss_budget=0.1,
                                 suspend_interval=10)
    rules = planner.plan([
        TaskProfile(task_id="response-time", values=response,
                    threshold=150.0, cost_per_sample=1.0),
        TaskProfile(task_id="ddos-dpi", values=rho,
                    threshold=rho_threshold, cost_per_sample=DPI_COST),
    ])
    if not rules:
        raise SystemExit("planner found no usable correlation")
    rule = rules[0]
    ev = rule.evidence
    print("discovered trigger rule:")
    print(f"  guard '{rule.target_id}' with '{rule.trigger_id}'")
    print(f"  necessary-condition score: {ev.necessary_condition_score:.3f}"
          f"  (pearson {ev.pearson:.2f})")
    print(f"  trigger elevated {ev.elevated_fraction:.1%} of the time; "
          f"elevation level {rule.elevation_level:.1f}")
    print(f"  expected saving {rule.expected_saving:.1f} cost-units/step, "
          f"estimated extra miss risk {rule.estimated_loss:.3f}\n")

    task = TaskSpec(threshold=rho_threshold, error_allowance=0.01,
                    max_interval=10, name="ddos-dpi")
    periodic = run_periodic(rho, rho_threshold)
    plain = run_adaptive(rho, task)
    guarded = run_triggered(rho, response, task, rule.elevation_level,
                            suspend_interval=planner.suspend_interval,
                            config=AdaptationConfig())

    header = (f"{'scheme':<22} {'cost ratio':>11} {'DPI cost':>10} "
              f"{'mis-detection':>14}")
    print(header)
    print("-" * len(header))
    for name, result in (("periodic", periodic),
                         ("volley", plain),
                         ("volley + correlation", guarded)):
        dpi = result.sampling_ratio * DPI_COST
        print(f"{name:<22} {result.sampling_ratio:>11.3f} {dpi:>10.1f} "
              f"{result.misdetection_rate:>14.4f}")

    extra = plain.sampling_ratio - guarded.sampling_ratio
    print(f"\nCorrelation triggering removed a further "
          f"{extra:.1%} of DPI sampling operations on top of "
          f"violation-likelihood adaptation.")


if __name__ == "__main__":
    main()
