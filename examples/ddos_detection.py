#!/usr/bin/env python3
"""DDoS detection on the virtualized datacenter testbed (paper SII-A).

Builds the flow-level network substrate (Internet2-style synthetic
netflows mapped onto VMs), injects a SYN flood against one VM, and runs
per-VM traffic-difference monitoring with violation-likelihood sampling.
Shows that the flood is caught within a couple of default intervals while
sampling cost stays far below periodic monitoring, and what the monitoring
costs in Dom0 CPU terms.

Run: python examples/ddos_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import TaskSpec, run_adaptive, run_periodic
from repro.datacenter import NetworkSamplingCostModel
from repro.workloads import (NetflowConfig, NetflowGenerator, SynFloodAttack,
                             inject_attacks, map_addresses_to_vms,
                             syn_ack_difference_from_flows,
                             threshold_for_selectivity, window_packet_counts)

NUM_VMS = 8
WINDOW = 15.0           # network default interval, seconds
HORIZON_WINDOWS = 2000  # ~8.3 hours of monitoring
VICTIM = 3


def build_rho_traces(rng: np.random.Generator) -> np.ndarray:
    """Per-VM traffic-difference traces from the flow-level substrate."""
    config = NetflowConfig(num_addresses=256, flows_per_second=60.0,
                           diurnal_period=HORIZON_WINDOWS * WINDOW / 2)
    flows = NetflowGenerator(config).generate(
        HORIZON_WINDOWS * WINDOW, rng)
    mapping = map_addresses_to_vms(config.num_addresses, NUM_VMS)
    incoming, outgoing = window_packet_counts(
        flows, mapping, NUM_VMS, WINDOW, HORIZON_WINDOWS)
    print(f"generated {len(flows)} flows, "
          f"{incoming.sum()} packets across {NUM_VMS} VMs")
    return np.stack([
        syn_ack_difference_from_flows(incoming[vm], outgoing[vm], rng)
        for vm in range(NUM_VMS)
    ])


def main() -> None:
    rng = np.random.default_rng(42)
    rho = build_rho_traces(rng)

    # SYN flood against the victim VM: ramps over 2 minutes, holds for
    # 10 minutes at 4000 excess SYNs per window.
    attack = SynFloodAttack(start=1500, peak_syn_rate=4000.0,
                            ramp_steps=8, hold_steps=40, decay_steps=8)
    rho[VICTIM] = inject_attacks(rho[VICTIM], [attack])

    # DDoS detection thresholds are attack-scale, not noise-percentile:
    # an excess of 1000 unanswered SYNs per window means trouble on any
    # of these VMs. (Percentile thresholds are used by the Fig. 5 sweeps,
    # where tasks deliberately sit at varying selectivities.)
    ddos_threshold = 1000.0
    cost_model = NetworkSamplingCostModel()
    print(f"\n{'vm':>3} {'threshold':>10} {'cost ratio':>11} "
          f"{'mis-detect':>11} {'alerts':>7}")
    total_ratio = 0.0
    detection_step = None
    for vm in range(NUM_VMS):
        threshold = max(ddos_threshold,
                        threshold_for_selectivity(rho[vm], 0.4))
        task = TaskSpec(threshold=threshold, error_allowance=0.01,
                        default_interval=WINDOW, max_interval=10,
                        name=f"ddos/vm-{vm}")
        result = run_adaptive(rho[vm], task)
        total_ratio += result.sampling_ratio
        print(f"{vm:>3} {threshold:>10.1f} {result.sampling_ratio:>11.3f} "
              f"{result.misdetection_rate:>11.4f} "
              f"{result.accuracy.detected_alerts:>7d}")
        if vm == VICTIM:
            start, end = attack.alert_window()
            hits = [int(t) for t in result.sampled_indices
                    if start <= t < end and rho[vm][t] > threshold]
            detection_step = min(hits) if hits else None

    print(f"\nmean cost ratio: {total_ratio / NUM_VMS:.3f} "
          f"(periodic = 1.0)")
    start, _ = attack.alert_window()
    if detection_step is None:
        print("ATTACK MISSED — should not happen at this intensity")
    else:
        delay = (detection_step - start) * WINDOW
        print(f"SYN flood on vm-{VICTIM} detected {delay:.0f}s after "
              f"onset (ramp itself lasts "
              f"{attack.ramp_steps * WINDOW:.0f}s)")

    # What the saving means for Dom0: CPU% for periodic vs adaptive,
    # extrapolated to the paper's 40 VMs per server.
    packets_per_window = 20_000
    per_vm_cpu = cost_model.cpu_seconds(packets_per_window) / WINDOW
    periodic_cpu = 100.0 * 40 * per_vm_cpu
    adaptive_cpu = periodic_cpu * total_ratio / NUM_VMS
    print(f"Dom0 CPU at the paper's 40 VMs/server: {periodic_cpu:.1f}% "
          f"periodic -> {adaptive_cpu:.1f}% with Volley")


if __name__ == "__main__":
    main()
