#!/usr/bin/env python3
"""Regenerate the data behind the paper's Figure 1 (motivating example).

Scheme A: high-frequency periodic sampling — catches the violation,
costs the most. Scheme B: low-frequency periodic sampling — cheap but
misses the violation entirely. Scheme C: Volley's dynamic sampling —
sparse while the state is safe, dense as the violation approaches.

Prints the three schedules as sparklines plus their cost/accuracy so the
figure's story is visible in a terminal.

Run: python examples/motivating_example.py
"""

from __future__ import annotations

import numpy as np

from repro import TaskSpec, run_adaptive, run_periodic
from repro.workloads import SynFloodAttack, inject_attacks

THRESHOLD = 800.0
N = 240  # grid points of 5 seconds each, as in the paper's figure


def traffic_difference_trace(rng: np.random.Generator) -> np.ndarray:
    """A calm stream whose tail ramps into a threshold violation."""
    base = 120.0 + rng.normal(0.0, 25.0, N)
    attack = SynFloodAttack(start=185, peak_syn_rate=850.0,
                            ramp_steps=25, hold_steps=25, decay_steps=5)
    return inject_attacks(base, [attack])


def sparkline(values: np.ndarray, sampled: set[int]) -> str:
    """One character per grid point: sampled points get glyphs by level."""
    glyphs = " .:-=+*#%@"
    lo, hi = values.min(), values.max()
    chars = []
    for i, v in enumerate(values):
        if i not in sampled:
            chars.append(" ")
            continue
        level = int((v - lo) / (hi - lo + 1e-12) * (len(glyphs) - 1))
        chars.append(glyphs[level])
    return "".join(chars)


def main() -> None:
    rng = np.random.default_rng(3)
    rho = traffic_difference_trace(rng)

    scheme_a = run_periodic(rho, THRESHOLD, interval=1)
    scheme_b = run_periodic(rho, THRESHOLD, interval=20)
    task = TaskSpec(threshold=THRESHOLD, error_allowance=0.05,
                    max_interval=20, name="motivating")
    scheme_c = run_adaptive(rho, task)

    print(f"trace: {N} points of 5s; threshold {THRESHOLD:.0f}; "
          f"violating points: {scheme_a.accuracy.truth_alerts}\n")
    for name, result in (("A (dense periodic)", scheme_a),
                         ("B (sparse periodic)", scheme_b),
                         ("C (Volley dynamic)", scheme_c)):
        detected = result.accuracy.detected_alerts
        print(f"scheme {name:<20} samples={result.accuracy.samples_taken:>4}"
              f"  detected={detected}/{result.accuracy.truth_alerts}")
        print("  |" + sparkline(rho, set(int(i)
                                         for i in result.sampled_indices))
              + "|")
    print("\nScheme B's gap swallows the violation; scheme C samples "
          "densely only once the violation likelihood rises.")


if __name__ == "__main__":
    main()
