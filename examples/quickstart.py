#!/usr/bin/env python3
"""Quickstart: adaptive sampling on one monitored metric stream.

Generates a bursty synthetic metric, derives a threshold from the alert
selectivity (as the paper does), and compares Volley's violation-likelihood
sampling against periodic sampling and the clairvoyant oracle lower bound.

Run: python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import OracleSampler, TaskSpec, run_adaptive, run_periodic
from repro.experiments.runner import run_sampler_on_trace
from repro.workloads import (SpikeTrainGenerator,
                             threshold_for_selectivity)


def main() -> None:
    rng = np.random.default_rng(7)

    # A mostly-quiet stream with rare spikes: the regime where dynamic
    # sampling shines (violations are rare events).
    baseline = 20.0 + rng.normal(0.0, 1.0, 50_000)
    spikes = SpikeTrainGenerator(spike_prob=0.0008, peak_mean=5.0,
                                 peak_sigma=0.8, ramp_steps=25,
                                 hold_steps=25).generate(50_000, rng)
    stream = baseline + spikes

    # Threshold: make 0.4% of the grid points violate (paper SV-A).
    threshold = threshold_for_selectivity(stream, 0.4)

    # "I can tolerate at most 1% of alerts being missed."
    task = TaskSpec(threshold=threshold, error_allowance=0.01,
                    max_interval=10, name="quickstart")

    volley = run_adaptive(stream, task)
    periodic = run_periodic(stream, threshold)
    oracle = run_sampler_on_trace(
        stream, OracleSampler(stream, threshold), threshold)

    print(f"threshold (k=0.4%):      {threshold:10.2f}")
    print(f"truth alerts:            {volley.accuracy.truth_alerts:10d}")
    print()
    header = f"{'scheme':<12} {'samples':>9} {'cost ratio':>11} " \
             f"{'mis-detection':>14}"
    print(header)
    print("-" * len(header))
    for name, result in (("periodic", periodic), ("volley", volley),
                         ("oracle", oracle)):
        print(f"{name:<12} {result.accuracy.samples_taken:>9d} "
              f"{result.sampling_ratio:>11.3f} "
              f"{result.misdetection_rate:>14.4f}")
    print()
    saving = 100.0 * (1.0 - volley.sampling_ratio)
    print(f"Volley saved {saving:.0f}% of sampling operations while "
          f"missing {volley.misdetection_rate:.2%} of alerts "
          f"(allowance: {task.error_allowance:.2%}).")


if __name__ == "__main__":
    main()
