#!/usr/bin/env python3
"""SLA monitoring of a distributed web application (paper SI, SII).

Thirty web servers host one application (the WorldCup-style workload).
The SLA task tracks the *total* timeout-request rate across servers: the
global state is the sum of per-server timeout rates, checked against a
global threshold — the paper's canonical distributed state monitoring
example. Each server runs a local violation-likelihood sampler; a
coordinator splits the error allowance (even vs. adaptive) and performs
global polls on local violations.

Run: python examples/sla_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import (AdaptiveAllocation, DistributedTaskSpec, EvenAllocation,
                   run_distributed_task)
from repro.simulation.randomness import RandomStreams
from repro.workloads import WebWorkloadGenerator

NUM_SERVERS = 10
HORIZON = 30_000  # seconds of 1-second sampling (~8.3 hours)


def timeout_rate_traces() -> list[np.ndarray]:
    """Per-server timeout-request rates.

    Timeouts are a small, load-dependent fraction of requests: the
    fraction itself rises under overload (flash crowds), which is what
    makes the aggregate cross the SLA threshold during crowds.
    """
    streams = RandomStreams(2024)
    generator = WebWorkloadGenerator(peak_rate=2000.0,
                                     diurnal_period=HORIZON // 2,
                                     flash_prob=0.0001,
                                     flash_magnitude=8.0)
    traces = []
    for server in range(NUM_SERVERS):
        rng = streams.stream("sla-server", server)
        requests = generator.site_requests(HORIZON, rng,
                                           phase=server * 0.01)
        share = requests / NUM_SERVERS
        # Timeout probability grows superlinearly with load.
        overload = np.clip(share / share.mean() - 1.0, 0.0, None)
        p_timeout = 0.001 + 0.02 * overload ** 2
        traces.append(rng.binomial(share.astype(np.int64),
                                   np.minimum(p_timeout, 1.0)).astype(float))
    return traces


def main() -> None:
    traces = timeout_rate_traces()
    totals = np.sum(traces, axis=0)
    global_threshold = float(np.percentile(totals, 99.8))
    spec = DistributedTaskSpec(
        global_threshold=global_threshold,
        local_thresholds=(global_threshold / NUM_SERVERS,) * NUM_SERVERS,
        error_allowance=0.01, max_interval=10, name="sla")

    print(f"global SLA threshold: {global_threshold:.1f} timeouts/s "
          f"summed over {NUM_SERVERS} servers")
    print(f"grid: {HORIZON} steps of 1s; "
          f"truth alerts: {(totals > global_threshold).sum()}\n")

    header = (f"{'allocation':<10} {'cost ratio':>11} {'polls':>7} "
              f"{'alerts':>7} {'mis-detect':>11} {'messages':>9}")
    print(header)
    print("-" * len(header))
    for name, policy in (("even", EvenAllocation()),
                         ("adaptive", AdaptiveAllocation())):
        result = run_distributed_task(traces, spec, policy=policy)
        print(f"{name:<10} {result.sampling_ratio:>11.3f} "
              f"{result.global_polls:>7d} {result.detected_alerts:>7d} "
              f"{result.misdetection_rate:>11.4f} {result.messages:>9d}")

    print("\nBoth schemes hold the task-level mis-detection near the 1% "
          "allowance; the adaptive allocation matches or beats the even "
          "split in sampling cost.")


if __name__ == "__main__":
    main()
