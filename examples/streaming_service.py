#!/usr/bin/env python3
"""Streaming integration: the MonitoringService facade.

The experiments replay recorded traces; a deployment pushes live values.
This example wires three tasks into a :class:`repro.MonitoringService` —
an instantaneous DDoS indicator, a windowed CPU task ("mean over the last
minute above threshold"), and a correlation-gated expensive task — and
streams values through it, skipping collection work whenever the service
says a sample is not due (that skipping is the saving).

Run: python examples/streaming_service.py
"""

from __future__ import annotations

import numpy as np

from repro import AggregateKind, MonitoringService, TaskSpec
from repro.workloads import (SynFloodAttack, SystemMetricsDataset,
                             TrafficDifferenceGenerator, inject_attacks)

HORIZON = 10_000


def main() -> None:
    rng = np.random.default_rng(21)

    # Live streams the collection pipeline would produce.
    rho = TrafficDifferenceGenerator(burst_prob=0.0).generate(HORIZON, rng)
    attack = SynFloodAttack(start=7000, peak_syn_rate=4000.0,
                            ramp_steps=10, hold_steps=50)
    rho = inject_attacks(rho, [attack])
    cpu = SystemMetricsDataset(num_nodes=1, seed=4).generate(
        0, "cpu_user_pct", HORIZON)
    response = 20.0 + rng.normal(0.0, 1.0, HORIZON)
    response[6990:7070] += 150.0  # response time leads the flood

    alerts: list[str] = []
    service = MonitoringService()
    service.add_task(
        "cpu-1min", TaskSpec(threshold=float(np.percentile(cpu, 99.5)),
                             error_allowance=0.01, max_interval=10),
        window=12, window_kind=AggregateKind.MEAN,
        on_alert=lambda a: alerts.append(f"cpu-1min@{a.time_index}"))
    service.add_task(
        "response", TaskSpec(threshold=100.0, error_allowance=0.01,
                             max_interval=10),
        on_alert=lambda a: alerts.append(f"response@{a.time_index}"))
    service.add_task(
        "ddos-dpi", TaskSpec(threshold=1000.0, error_allowance=0.01,
                             max_interval=10),
        on_alert=lambda a: alerts.append(f"ddos-dpi@{a.time_index}"))
    # Expensive DPI sampling idles unless response time is elevated.
    service.add_trigger("ddos-dpi", trigger="response",
                        elevation_level=60.0, suspend_interval=10)

    streams = {"cpu-1min": cpu, "response": response, "ddos-dpi": rho}
    collected = {name: 0 for name in streams}
    for step in range(HORIZON):
        for name, stream in streams.items():
            if service.due(name, step):
                # Only now does the pipeline pay for collection.
                service.offer(name, float(stream[step]), step)
                collected[name] += 1

    print(f"{'task':<10} {'collected':>10} {'of':>7} {'ratio':>7} "
          f"{'alerts':>7}")
    for name in streams:
        n = collected[name]
        print(f"{name:<10} {n:>10d} {HORIZON:>7d} {n / HORIZON:>7.3f} "
              f"{len(service.alerts(name)):>7d}")

    flood_alerts = [a for a in alerts if a.startswith("ddos-dpi")]
    start, end = attack.alert_window()
    print(f"\nfirst DDoS alert: {flood_alerts[0] if flood_alerts else '-'}"
          f" (attack spans steps {start}-{end})")
    print("alert order around the attack:",
          [a for a in alerts if "@69" in a or "@70" in a][:6])


if __name__ == "__main__":
    main()
