"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments whose setuptools/pip lack PEP 660
editable-install support (e.g. offline boxes without the ``wheel``
package): ``python setup.py develop`` keeps working there.
"""

from setuptools import setup

setup()
