"""Reproduction of *Volley: Violation Likelihood Based State Monitoring for
Datacenters* (Meng, Iyengar, Rouvellou, Liu — ICDCS 2013).

Volley replaces fixed-interval ("periodic") sampling in datacenter state
monitoring with dynamic intervals driven by the likelihood of missing a
threshold violation, at three levels:

* **monitor level** — Chebyshev-bounded mis-detection rate drives an
  AIMD-like interval adaptation (:mod:`repro.core.adaptation`);
* **task level** — a coordinator reallocates the global error allowance
  across a distributed task's monitors by cost-reduction yield
  (:mod:`repro.core.coordination`);
* **multi-task level** — correlated cheap metrics gate expensive tasks
  (:mod:`repro.core.correlation`).

Quickstart::

    import numpy as np
    from repro import TaskSpec, run_adaptive, run_periodic

    rng = np.random.default_rng(7)
    trace = np.cumsum(rng.normal(0, 1, 50_000)) + rng.normal(0, 3, 50_000)
    threshold = float(np.quantile(trace, 0.99))

    task = TaskSpec(threshold=threshold, error_allowance=0.01)
    volley = run_adaptive(trace, task)
    periodic = run_periodic(trace, threshold)

    print(f"cost ratio      {volley.sampling_ratio:.2f}")
    print(f"mis-detection   {volley.misdetection_rate:.4f}")

Subpackages: :mod:`repro.core` (algorithms), :mod:`repro.workloads`
(synthetic datacenter workloads), :mod:`repro.simulation` (discrete-event
engine), :mod:`repro.datacenter` (virtualized testbed + cost models),
:mod:`repro.baselines`, :mod:`repro.experiments` (figure reproductions).
"""

from repro.core import (AdaptationConfig, AdaptiveAllocation, AggregateKind,
                        CorrelationDetector, CorrelationPlanner,
                        DistributedTaskSpec, EvenAllocation,
                        OnlineStatistics, SamplingDecision, TaskProfile,
                        TaskSpec, TriggeredSampler,
                        ViolationLikelihoodSampler, WindowedTaskSpec,
                        aggregate_trace, evaluate_sampling,
                        misdetection_bound, run_windowed_adaptive)
from repro.baselines import (OracleSampler, PeriodicSampler,
                             RandomIntervalSampler)
from repro.experiments import (DistributedRunResult, RunResult, run_adaptive,
                               run_distributed_task, run_periodic,
                               run_sampler_on_trace, run_triggered)
from repro.config import (ExecutionConfig, service_from_config,
                          task_from_config)
from repro.service import MonitoringService
from repro.types import Alert, Sample, ThresholdDirection

__version__ = "1.0.0"

__all__ = [
    "AdaptationConfig",
    "AdaptiveAllocation",
    "AggregateKind",
    "Alert",
    "CorrelationDetector",
    "CorrelationPlanner",
    "DistributedRunResult",
    "DistributedTaskSpec",
    "EvenAllocation",
    "ExecutionConfig",
    "MonitoringService",
    "OnlineStatistics",
    "OracleSampler",
    "PeriodicSampler",
    "RandomIntervalSampler",
    "RunResult",
    "Sample",
    "SamplingDecision",
    "TaskProfile",
    "TaskSpec",
    "ThresholdDirection",
    "TriggeredSampler",
    "ViolationLikelihoodSampler",
    "WindowedTaskSpec",
    "__version__",
    "aggregate_trace",
    "evaluate_sampling",
    "misdetection_bound",
    "run_adaptive",
    "run_distributed_task",
    "run_periodic",
    "run_sampler_on_trace",
    "run_triggered",
    "run_windowed_adaptive",
    "service_from_config",
    "task_from_config",
]
