"""Result-analysis helpers: bootstrap CIs, box statistics, allocation
convergence (DESIGN.md S16)."""

from repro.analysis.stats import (ConvergenceReport, allocation_convergence,
                                  bootstrap_ci, box_stats,
                                  paired_bootstrap_diff)

__all__ = ["ConvergenceReport", "allocation_convergence", "bootstrap_ci",
           "box_stats", "paired_bootstrap_diff"]
