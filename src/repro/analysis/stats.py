"""Statistical helpers for experiment results.

Bootstrap confidence intervals for sweep aggregates, box-plot statistics
(the Fig. 6 rendering), and convergence analysis for the coordination
scheme's allocation trajectories (the paper claims the iterative
assignment "eventually converges to a stable assignment when the
monitored data distribution across nodes does not significantly change" —
:func:`allocation_convergence` measures that).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["bootstrap_ci", "box_stats", "paired_bootstrap_diff",
           "allocation_convergence", "ConvergenceReport"]


def bootstrap_ci(values: np.ndarray, rng: np.random.Generator,
                 confidence: float = 0.95, n_boot: int = 2000,
                 statistic=np.mean) -> tuple[float, float, float]:
    """Percentile-bootstrap confidence interval for a statistic.

    Args:
        values: sample of observations (e.g. per-stream sampling ratios).
        rng: randomness source for the resampling.
        confidence: interval mass (default 95%).
        n_boot: bootstrap resamples.
        statistic: function of a 1-d array (default: mean).

    Returns:
        ``(point_estimate, lower, upper)``.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError(
            f"need a non-empty 1-d sample, got shape {arr.shape}")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}")
    if n_boot < 10:
        raise ConfigurationError(f"n_boot must be >= 10, got {n_boot}")
    point = float(statistic(arr))
    if arr.size == 1:
        return point, point, point
    indices = rng.integers(0, arr.size, size=(n_boot, arr.size))
    stats = np.apply_along_axis(statistic, 1, arr[indices])
    alpha = (1.0 - confidence) / 2.0
    lower = float(np.quantile(stats, alpha))
    upper = float(np.quantile(stats, 1.0 - alpha))
    return point, lower, upper


def paired_bootstrap_diff(a: np.ndarray, b: np.ndarray,
                          rng: np.random.Generator,
                          confidence: float = 0.95,
                          n_boot: int = 2000,
                          ) -> tuple[float, float, float]:
    """Bootstrap CI of the mean paired difference ``a - b``.

    Use for scheme comparisons where both schemes ran on the *same*
    inputs (same traces, same seeds): pairing removes the between-input
    variance, so e.g. "adaptive minus even allocation cost per seed" gets
    a far tighter interval than two independent CIs would.

    Returns:
        ``(mean difference, lower, upper)``; the comparison is
        significant at the chosen level when the interval excludes 0.
    """
    arr_a = np.asarray(a, dtype=float)
    arr_b = np.asarray(b, dtype=float)
    if arr_a.shape != arr_b.shape or arr_a.ndim != 1 or arr_a.size == 0:
        raise ConfigurationError(
            f"need equal-length 1-d samples, got {arr_a.shape} vs "
            f"{arr_b.shape}")
    return bootstrap_ci(arr_a - arr_b, rng, confidence=confidence,
                        n_boot=n_boot)


def box_stats(values: np.ndarray) -> dict[str, float]:
    """Box-plot statistics (min/q25/median/q75/max/mean) of a sample."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError(
            f"need a non-empty 1-d sample, got shape {arr.shape}")
    return {
        "min": float(arr.min()),
        "q25": float(np.percentile(arr, 25)),
        "median": float(np.percentile(arr, 50)),
        "q75": float(np.percentile(arr, 75)),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
    }


@dataclass(frozen=True, slots=True)
class ConvergenceReport:
    """How an allocation trajectory settled.

    Attributes:
        converged: whether the trajectory's movement dropped below the
            tolerance and stayed there.
        rounds_to_converge: first round after which every subsequent
            movement is below tolerance (-1 when never).
        final_movement: L1 movement of the last round.
        max_movement: largest single-round L1 movement observed.
    """

    converged: bool
    rounds_to_converge: int
    final_movement: float
    max_movement: float


def allocation_convergence(history: list[tuple[float, ...]],
                           tolerance: float = 0.05,
                           ) -> ConvergenceReport:
    """Analyse an allocation trajectory for convergence.

    Movement of round ``r`` is the L1 distance between consecutive
    allocations, normalised by the total allowance; the trajectory counts
    as converged once movement stays below ``tolerance`` for all
    remaining rounds.

    Args:
        history: allocation vectors, one per updating period (including
            the initial allocation).
        tolerance: normalised movement below which a round is "settled".
    """
    if len(history) < 2:
        return ConvergenceReport(converged=True, rounds_to_converge=0,
                                 final_movement=0.0, max_movement=0.0)
    total = sum(history[0])
    scale = total if total > 0 else 1.0
    movements = []
    for prev, cur in zip(history, history[1:]):
        movements.append(sum(abs(a - b) for a, b in zip(prev, cur)) / scale)
    settled_from = len(movements)
    for i in range(len(movements) - 1, -1, -1):
        if movements[i] >= tolerance:
            break
        settled_from = i
    converged = settled_from < len(movements)
    return ConvergenceReport(
        converged=converged,
        rounds_to_converge=settled_from if converged else -1,
        final_movement=movements[-1],
        max_movement=max(movements),
    )
