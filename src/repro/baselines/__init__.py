"""Baseline sampling schemes the paper compares against (DESIGN.md S14).

* :class:`PeriodicSampler` — fixed-interval sampling; with interval 1 this
  is the paper's ground-truth scheme and the cost denominator everywhere.
* :class:`OracleSampler` — an offline lower bound that knows the trace in
  advance and samples only violating points (plus a sparse heartbeat); no
  online scheme can detect the same alerts with fewer samples.

Even error-allowance allocation — the coordination baseline of Fig. 8 — is
:class:`repro.core.coordination.EvenAllocation`.
"""

from repro.baselines.oracle import OracleSampler
from repro.baselines.periodic import PeriodicSampler
from repro.baselines.random_interval import RandomIntervalSampler

__all__ = ["OracleSampler", "PeriodicSampler", "RandomIntervalSampler"]
