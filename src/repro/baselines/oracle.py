"""Offline oracle sampler — a lower bound on achievable sampling cost.

The oracle is told the whole trace and the threshold in advance. It samples
exactly the violating grid points (detecting 100% of alerts) plus an
optional sparse heartbeat so the schedule never goes fully silent. No
online scheme can detect every alert with fewer samples, so the oracle's
sampling ratio bounds from below what adaptation could ever achieve; the
ablation benches report Volley's distance to it.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.core.accuracy import truth_alert_indices
from repro.core.adaptation import SamplingDecision
from repro.exceptions import ConfigurationError
from repro.types import ThresholdDirection

__all__ = ["OracleSampler"]


class OracleSampler:
    """Clairvoyant sampler over a known trace.

    Args:
        values: the full trace the oracle is allowed to inspect.
        threshold: the task threshold.
        direction: violation side.
        heartbeat: sample at least every ``heartbeat`` grid points even in
            violation-free stretches (``None`` disables the heartbeat and
            the oracle may idle arbitrarily long).
    """

    def __init__(self, values: np.ndarray, threshold: float,
                 direction: ThresholdDirection = ThresholdDirection.UPPER,
                 heartbeat: int | None = None):
        if heartbeat is not None and heartbeat < 1:
            raise ConfigurationError(
                f"heartbeat must be >= 1 or None, got {heartbeat}")
        arr = np.asarray(values, dtype=float)
        self._n = int(arr.size)
        self._threshold = threshold
        self._direction = direction
        self._heartbeat = heartbeat
        alerts = truth_alert_indices(arr, threshold, direction)
        self._alerts = [int(i) for i in alerts]
        self._interval = 1

    @property
    def interval(self) -> int:
        """Interval chosen by the most recent :meth:`observe` call."""
        return self._interval

    def observe(self, value: float, time_index: int) -> SamplingDecision:
        """Jump directly to the next violating point (or heartbeat)."""
        violation = self._direction.violated(value, self._threshold)
        pos = bisect.bisect_right(self._alerts, time_index)
        if pos >= len(self._alerts):
            gap = self._n - time_index  # beyond the trace: run ends
        else:
            gap = self._alerts[pos] - time_index
        if self._heartbeat is not None:
            gap = min(gap, self._heartbeat)
        self._interval = max(1, gap)
        # Oracle decisions are exact, not bounds.
        return SamplingDecision(next_interval=self._interval,
                                misdetection_bound=0.0,
                                violation=violation)
