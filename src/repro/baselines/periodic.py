"""Fixed-interval (periodic) sampling — the paper's status quo baseline.

Periodic sampling with the default interval ``Id`` defines both the ground
truth for accuracy and the cost denominator for every figure; periodic
sampling with larger intervals is "scheme B" of the motivating example
(cheap but blind between samples).
"""

from __future__ import annotations

from repro.core.adaptation import SamplingDecision
from repro.exceptions import ConfigurationError

__all__ = ["PeriodicSampler"]


class PeriodicSampler:
    """Sample every ``interval`` default intervals, forever.

    Args:
        interval: fixed interval in default-interval units (>= 1).
        threshold: optional threshold so decisions can flag violations;
            when omitted every decision reports ``violation=False``.
    """

    def __init__(self, interval: int = 1, threshold: float | None = None):
        if interval < 1:
            raise ConfigurationError(f"interval must be >= 1, got {interval}")
        self._interval = interval
        self._threshold = threshold
        self._observations = 0

    @property
    def interval(self) -> int:
        """The fixed sampling interval."""
        return self._interval

    @property
    def observations(self) -> int:
        """Total samples observed."""
        return self._observations

    def observe(self, value: float, time_index: int) -> SamplingDecision:
        """Record a sample; the next interval is always the fixed one."""
        self._observations += 1
        violation = (self._threshold is not None
                     and value > self._threshold)
        return SamplingDecision(next_interval=self._interval,
                                misdetection_bound=0.0,
                                violation=violation)
