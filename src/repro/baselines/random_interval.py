"""Random-interval sampling baseline.

The paper notes that some monitoring scenarios use *random sampling*
(collecting a random subset) and argues Volley is complementary to it
(SVI). This baseline makes the comparison concrete: sample with
geometrically distributed gaps whose mean matches a given budget. At the
same budget as Volley it spends its samples uniformly over time instead
of concentrating them where violations are likely, so it misses far more
alerts — the quantitative version of the paper's argument.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptation import SamplingDecision
from repro.exceptions import ConfigurationError

__all__ = ["RandomIntervalSampler"]


class RandomIntervalSampler:
    """Sample with i.i.d. geometric gaps of a given mean.

    Args:
        mean_interval: expected gap between samples in default intervals
            (> 1 spends less than periodic; 1 degenerates to periodic).
        rng: randomness source for the gap draws.
        max_interval: optional hard cap on a single gap.
    """

    def __init__(self, mean_interval: float, rng: np.random.Generator,
                 max_interval: int | None = None):
        if mean_interval < 1.0:
            raise ConfigurationError(
                f"mean_interval must be >= 1, got {mean_interval}")
        if max_interval is not None and max_interval < 1:
            raise ConfigurationError(
                f"max_interval must be >= 1, got {max_interval}")
        self._mean_interval = mean_interval
        self._rng = rng
        self._max_interval = max_interval
        self._observations = 0
        self._interval = 1

    @property
    def interval(self) -> int:
        """Gap chosen by the most recent :meth:`observe` call."""
        return self._interval

    @property
    def observations(self) -> int:
        """Total samples observed."""
        return self._observations

    def observe(self, value: float, time_index: int) -> SamplingDecision:
        """Draw the next geometric gap; the value itself is ignored."""
        self._observations += 1
        if self._mean_interval <= 1.0:
            gap = 1
        else:
            # Geometric on {1, 2, ...} with mean `mean_interval`.
            gap = int(self._rng.geometric(1.0 / self._mean_interval))
        if self._max_interval is not None:
            gap = min(gap, self._max_interval)
        self._interval = max(1, gap)
        return SamplingDecision(next_interval=self._interval,
                                misdetection_bound=0.0)
