"""Multi-process cluster runtime: shard placement, routing, migration.

The package splits along the coordinator/worker line of the paper's
architecture:

* :mod:`repro.cluster.routing` — the pure task-to-shard map shared with
  the single-process runtime (``route(task_id, n_shards)``);
* :mod:`repro.cluster.hosting` — :class:`WorkerHost`, the worker-side
  shard container behind the ``w_*`` op surface;
* :mod:`repro.cluster.transport` — the shard-transport interface and its
  three backends (in-proc, subprocess over a unix socket, TCP);
* :mod:`repro.cluster.worker` — the worker process entry point;
* :mod:`repro.cluster.coordinator` — placement table, live migration,
  heartbeat failure recovery, cluster checkpoints, fleet telemetry;
* :mod:`repro.cluster.server` — the client-facing routing tier, wire-
  compatible with :class:`repro.runtime.server.RuntimeServer`;
* :mod:`repro.cluster.fleet` — merging per-worker metric registries.

Only :func:`route` is imported eagerly: :mod:`repro.runtime.shard`
imports it for its shard map, so pulling in the heavier cluster modules
here (which themselves import :mod:`repro.runtime`) would create an
import cycle. Everything else resolves lazily on first attribute access.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.routing import route

__all__ = ["ClusterServer", "ClusterWorker", "Coordinator",
           "InProcTransport", "ShardRoute", "ShardTransport",
           "SubprocessTransport", "TCPTransport", "WorkerHost",
           "merge_fleet_snapshots", "route"]

_LAZY = {
    "ClusterServer": "repro.cluster.server",
    "ClusterWorker": "repro.cluster.worker",
    "Coordinator": "repro.cluster.coordinator",
    "ShardRoute": "repro.cluster.coordinator",
    "InProcTransport": "repro.cluster.transport",
    "ShardTransport": "repro.cluster.transport",
    "SubprocessTransport": "repro.cluster.transport",
    "TCPTransport": "repro.cluster.transport",
    "WorkerHost": "repro.cluster.hosting",
    "merge_fleet_snapshots": "repro.cluster.fleet",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib
    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(__all__)
