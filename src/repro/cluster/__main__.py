"""``python -m repro.cluster`` starts the multi-process cluster.

One command brings up the full topology: the routing tier listening on
TCP, N worker processes (or in-proc hosts / remote TCP endpoints,
depending on ``--backend``), shard placement, the heartbeat failure
detector and — when ``--checkpoint`` is given — periodic cluster
checkpoints. The config file format is the same one
``python -m repro.runtime`` takes (``defaults`` / ``tasks`` /
``triggers`` / ``adaptation``), with the runtime section named
``cluster`` instead of ``runtime``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import sys
from typing import Any

from repro.config import ClusterConfig
from repro.core.adaptation import AdaptationConfig
from repro.exceptions import ConfigurationError, ReproError

from repro.cluster.server import ClusterServer

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Multi-process sharded cluster for Volley monitoring "
                    "tasks: routing tier + N workers + live migration.")
    parser.add_argument("--config", type=pathlib.Path, default=None,
                        help="JSON config file; may hold a 'cluster' "
                             "section plus defaults/tasks/triggers")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes to spawn (default 2)")
    parser.add_argument("--shards", type=int, default=None,
                        help="global shard count (default 2x workers)")
    parser.add_argument("--backend", default=None,
                        choices=["inproc", "subprocess", "tcp"])
    parser.add_argument("--worker-endpoint", action="append", default=None,
                        metavar="HOST:PORT",
                        help="tcp backend: one per worker, repeatable")
    parser.add_argument("--host", default=None)
    parser.add_argument("--port", type=int, default=None,
                        help="router TCP port (0 = ephemeral)")
    parser.add_argument("--http-port", type=int, default=None,
                        help="fleet telemetry HTTP port (0 = ephemeral; "
                             "omitted = disabled)")
    parser.add_argument("--queue-depth", type=int, default=None)
    parser.add_argument("--max-batch", type=int, default=None)
    parser.add_argument("--checkpoint", type=pathlib.Path, default=None,
                        help="cluster checkpoint file (restored at startup "
                             "if it exists; flushed on shutdown)")
    parser.add_argument("--checkpoint-interval", type=float, default=None)
    parser.add_argument("--heartbeat-interval", type=float, default=None)
    parser.add_argument("--runtime-dir", type=pathlib.Path, default=None,
                        help="directory for worker sockets/ready files "
                             "(default: a fresh temp dir)")
    parser.add_argument("--ready-file", type=pathlib.Path, default=None,
                        help="write {port, http_port, pid, workers} JSON "
                             "once listening")
    return parser


def _cluster_config(args: argparse.Namespace,
                    file_section: dict[str, Any]) -> ClusterConfig:
    base = ClusterConfig.from_dict(file_section)
    overrides: dict[str, Any] = {}
    for arg, key in (("workers", "workers"), ("shards", "shards"),
                     ("backend", "backend"), ("host", "host"),
                     ("port", "port"), ("http_port", "http_port"),
                     ("queue_depth", "queue_depth"),
                     ("max_batch", "max_batch"),
                     ("checkpoint_interval", "checkpoint_interval"),
                     ("heartbeat_interval", "heartbeat_interval"),
                     ("runtime_dir", "runtime_dir")):
        value = getattr(args, arg)
        if value is not None:
            overrides[key] = value
    if args.worker_endpoint:
        overrides["worker_endpoints"] = tuple(args.worker_endpoint)
        overrides.setdefault("workers", len(args.worker_endpoint))
        overrides.setdefault("backend", "tcp")
    if args.checkpoint is not None:
        overrides["checkpoint_path"] = args.checkpoint
    if not overrides:
        return base
    merged = {key: getattr(base, key) for key in (
        "workers", "shards", "backend", "worker_endpoints", "host", "port",
        "http_port", "queue_depth", "max_batch", "buffer_depth",
        "heartbeat_interval", "heartbeat_misses", "heartbeat_timeout",
        "connections_per_worker", "checkpoint_path", "checkpoint_interval",
        "shed_retry_ms", "trace_capacity", "runtime_dir")}
    merged.update(overrides)
    return ClusterConfig(**merged)


async def _run(args: argparse.Namespace) -> None:
    service_config: dict[str, Any] = {}
    cluster_section: dict[str, Any] = {}
    adaptation: AdaptationConfig | None = None
    if args.config is not None:
        loaded = json.loads(args.config.read_text(encoding="utf-8"))
        if not isinstance(loaded, dict):
            raise ConfigurationError("config file must hold a JSON object")
        cluster_section = dict(loaded.pop("cluster", {}))
        adaptation_section = loaded.pop("adaptation", None)
        if adaptation_section is not None:
            try:
                adaptation = AdaptationConfig(**adaptation_section)
            except TypeError as exc:
                raise ConfigurationError(
                    f"bad adaptation section: {exc}") from None
        service_config = loaded
    server = ClusterServer(_cluster_config(args, cluster_section),
                           adaptation=adaptation)
    await server.start()
    try:
        await server.apply_config(service_config)
    except Exception:
        await server.shutdown()
        raise
    coord = server.coordinator
    endpoints = [f"tcp {server.config.host}:{server.tcp_port}"]
    if server.http_port is not None:
        endpoints.append(f"http {server.config.host}:{server.http_port}")
    print(f"[cluster] listening on {', '.join(endpoints)} "
          f"({len(coord.transports)} workers x {coord.n_shards} shards, "
          f"backend={server.config.backend}, "
          f"{coord.restored_tasks} tasks restored)", flush=True)
    if args.ready_file is not None:
        ready = {"port": server.tcp_port,
                 "http_port": server.http_port,
                 "pid": os.getpid(),
                 "workers": coord.worker_pids()}
        args.ready_file.write_text(json.dumps(ready), encoding="utf-8")
    await server.serve_forever()
    print("[cluster] shut down cleanly", flush=True)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.cluster``)."""
    args = _build_parser().parse_args(argv)
    try:
        asyncio.run(_run(args))
    except ReproError as exc:
        print(f"[cluster] error: {exc}", file=sys.stderr, flush=True)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
