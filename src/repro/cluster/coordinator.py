"""The cluster coordinator: placement table, migration, failure recovery.

One :class:`Coordinator` owns the authoritative map from global shard id
to worker, reached through a :class:`~repro.cluster.transport.ShardTransport`
per worker. Everything stateful about the cluster flows through here:

* **Forwarding** — :meth:`submit` takes pre-routed per-shard batches and
  fans them out, one ``w_offer`` frame per touched worker. A worker that
  cannot be reached costs its updates a *shed* (never a silent loss) and
  feeds the failure detector.
* **Live migration** — :meth:`migrate` moves one shard between workers
  under load: buffer incoming offers, wait for in-flight forwards, drain
  the source, snapshot, restore on the target, verify the restored
  state's fingerprint matches the source's **before** cutover, then
  replay the buffer. A fingerprint mismatch aborts the migration with
  the source still authoritative — the failure mode is a rejected
  migration, never a corrupted shard.
* **Failure re-placement** — a heartbeat loop declares a worker dead
  after ``heartbeat_misses`` consecutive missed pings and rebuilds its
  shards on survivors from the last cluster checkpoint state (or fresh,
  re-registering catalog tasks, when no checkpoint covered the shard) —
  the at-most-once contract: ACKed-and-applied survives via snapshots,
  queued-but-unapplied dies with the process.
* **Fleet telemetry** — per-worker registries are pulled raw and merged
  (:mod:`repro.cluster.fleet`); worker sampler traces are pulled and
  re-emitted into the coordinator's ring so one ``trace`` stream covers
  the whole cluster.
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
import pathlib
import tempfile
import time
from typing import Any

from repro.config import ClusterConfig, task_from_config
from repro.core.adaptation import AdaptationConfig
from repro.exceptions import ClusterError, ConfigurationError
from repro.runtime.checkpoint import read_checkpoint, write_checkpoint
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace import DecisionTrace
from repro.triggers.plan import TriggerPlan

from repro.cluster.fleet import merge_fleet_snapshots
from repro.cluster.hosting import WorkerHost
from repro.cluster.routing import route
from repro.cluster.transport import (InProcTransport, ShardTransport,
                                     SubprocessTransport, TCPTransport)

__all__ = ["Coordinator", "ShardRoute"]

logger = logging.getLogger(__name__)

_FLUSH_RETRY_LIMIT = 200
"""Shed-retry attempts per buffered batch during replay before giving up
(each waits ``shed_retry_ms``, so the default is ~10s of backpressure)."""


class ShardRoute:
    """Routing-table entry for one global shard."""

    __slots__ = ("shard_id", "worker_id", "buffering", "buffer",
                 "buffered_updates", "inflight", "_idle", "_settled")

    def __init__(self, shard_id: int, worker_id: str):
        self.shard_id = shard_id
        self.worker_id = worker_id
        self.buffering = False
        self.buffer: list[list[Any]] = []
        self.buffered_updates = 0
        self.inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._settled = asyncio.Event()
        self._settled.set()

    def begin_buffering(self) -> None:
        self.buffering = True
        self._settled.clear()

    def end_buffering(self) -> None:
        self.buffering = False
        self._settled.set()

    async def wait_settled(self) -> None:
        """Block until no migration/re-placement is in progress."""
        await self._settled.wait()

    async def wait_idle(self) -> None:
        """Block until no forwarded offer is in flight for this shard."""
        await self._idle.wait()


class Coordinator:
    """Owns placement, migration, recovery and fleet telemetry."""

    def __init__(self, config: ClusterConfig,
                 adaptation: AdaptationConfig | None = None,
                 registry: MetricsRegistry | None = None,
                 trace: DecisionTrace | None = None):
        self.config = config
        self.adaptation = adaptation or AdaptationConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace if trace is not None else DecisionTrace(
            config.trace_capacity)
        self.n_shards = config.n_shards
        self.transports: dict[str, ShardTransport] = {}
        self.routes: list[ShardRoute] = []
        self.task_shard: dict[str, int] = {}
        self.catalog: dict[str, dict[str, Any]] = {}
        self.defaults: dict[str, Any] = {}
        # Cluster-global task ids for the binary columnar path: assigned
        # densely at registration, synced lazily to each worker host as a
        # per-worker watermark (gids below it are interned there). These
        # are runtime-scoped, not checkpointed — rebuilt from the catalog
        # on start, re-synced to workers on first use.
        self.gids: dict[str, int] = {}
        self.gid_names: list[str] = []
        self._gid_synced: dict[str, int] = {}
        # Bumped on every register/remove so routing-tier connections can
        # revalidate their interned-name resolution lazily.
        self.task_epoch = 0
        # Trigger channel (repro.triggers): installed plans by target,
        # plus routed-edge accounting. Plans are coordinator state — they
        # survive checkpoints and are re-installed with every shard
        # placement, so a guard keeps working across migration/failover.
        self.trigger_plans: dict[str, TriggerPlan] = {}
        self.trigger_edges = {"arm": 0, "disarm": 0}
        self.router_shed = 0
        self.migrations = 0
        self.replacements = 0
        self.restored_tasks = 0
        self.checkpoint_failures = 0
        self._dead: set[str] = set()
        self._misses: dict[str, int] = {}
        self._trace_cursor: dict[str, int] = {}
        self._trace_lock = asyncio.Lock()
        self._recover_lock = asyncio.Lock()
        self._fleet_cache: dict[str, Any] = {}
        self._last_checkpoint_state: dict[str, Any] | None = None
        self._last_checkpoint_monotonic: float | None = None
        self._heartbeat_task: asyncio.Task | None = None
        self._checkpoint_task: asyncio.Task | None = None
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        self._started_monotonic = time.monotonic()
        self._worker_up = self.registry.gauge(
            "volley_worker_up", "1 while the worker answers heartbeats",
            labels=("worker",))
        self.registry.counter(
            "volley_migrations_total", "Completed live shard migrations",
            fn=lambda: float(self.migrations))
        self.registry.counter(
            "volley_replacements_total",
            "Shards re-placed after worker failure",
            fn=lambda: float(self.replacements))
        self.registry.gauge(
            "volley_tasks", "Registered monitoring tasks",
            fn=lambda: float(len(self.task_shard)))
        self.registry.gauge(
            "volley_trigger_plans", "Correlation trigger plans installed",
            fn=lambda: float(len(self.trigger_plans)))
        edge_family = self.registry.counter(
            "volley_trigger_edges_total",
            "Trigger-channel arm/disarm edges routed to guarded tasks",
            labels=("op",))
        for edge_op in ("arm", "disarm"):
            edge_family.labels(
                edge_op, fn=lambda o=edge_op: float(self.trigger_edges[o]))
        self.registry.gauge(
            "volley_coordinator_uptime_seconds",
            "Seconds since the coordinator started",
            fn=lambda: time.monotonic() - self._started_monotonic)
        # Shed at the routing tier (unreachable worker / buffer overflow).
        # Label shape matches the per-worker shed family after the fleet
        # merge prepends "worker", so family totals stay truthful.
        self.registry.counter(
            "volley_updates_shed_total",
            "Updates shed under backpressure", labels=("worker", "shard"),
        ).labels("router", "-", fn=lambda: float(self.router_shed))

    # ------------------------------------------------------------------
    # Lifecycle

    def _adaptation_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self.adaptation)

    def _build_transports(self) -> None:
        cfg = self.config
        if cfg.backend == "subprocess":
            runtime_dir = cfg.runtime_dir
            if runtime_dir is None:
                self._tmpdir = tempfile.TemporaryDirectory(
                    prefix="repro-cluster-")
                runtime_dir = pathlib.Path(self._tmpdir.name)
            for i in range(cfg.workers):
                wid = f"w{i}"
                self.transports[wid] = SubprocessTransport(
                    wid, runtime_dir, queue_depth=cfg.queue_depth,
                    connections=cfg.connections_per_worker,
                    trace_capacity=cfg.trace_capacity)
        elif cfg.backend == "tcp":
            for i, endpoint in enumerate(cfg.worker_endpoints):
                wid = f"w{i}"
                host, _, port = endpoint.rpartition(":")
                if not host or not port.isdigit():
                    raise ConfigurationError(
                        f"worker endpoint {endpoint!r} is not host:port")
                self.transports[wid] = TCPTransport(
                    wid, host, int(port),
                    connections=cfg.connections_per_worker)
        else:  # inproc
            for i in range(cfg.workers):
                wid = f"w{i}"
                self.transports[wid] = InProcTransport(wid, WorkerHost(
                    wid, queue_depth=cfg.queue_depth,
                    adaptation=self.adaptation,
                    trace_capacity=cfg.trace_capacity))

    async def start(self) -> None:
        """Spawn/connect workers, place every shard, start the loops."""
        self._build_transports()
        await asyncio.gather(*(t.start() for t in self.transports.values()))
        state = self._read_checkpoint_state()
        worker_ids = sorted(self.transports)
        placement = (state or {}).get("placement", {})
        shards_state = (state or {}).get("shards", {})
        for sid in range(self.n_shards):
            wid = placement.get(str(sid))
            if wid not in self.transports:
                wid = worker_ids[sid % len(worker_ids)]
            self.routes.append(ShardRoute(sid, wid))
        if state:
            self.defaults = dict(state.get("defaults", {}))
            self.catalog = {str(k): dict(v)
                            for k, v in state.get("catalog", {}).items()}
            self.task_shard = {str(k): int(v)
                               for k, v in state.get("task_shard", {}).items()}
            for name in self.task_shard:
                self._assign_gid(name)
            for entry in state.get("trigger_plans", []):
                plan = TriggerPlan.from_dict(dict(entry))
                self.trigger_plans[plan.target] = plan
        for routed in self.routes:
            entry = shards_state.get(str(routed.shard_id))
            await self._place_shard(routed, entry)
            if entry is not None:
                self.restored_tasks += len(
                    (entry.get("snapshot") or {}).get("tasks", []))
        for wid, transport in self.transports.items():
            self._worker_up.labels(
                wid, fn=lambda w=wid: 0.0 if w in self._dead else 1.0)
            self.trace.emit("worker_started", worker=wid,
                            pid=self.worker_pids().get(wid))
        self._heartbeat_task = asyncio.create_task(self._heartbeat_loop())
        if self.config.checkpoint_path is not None:
            self._checkpoint_task = asyncio.create_task(
                self._checkpoint_loop())

    def _read_checkpoint_state(self) -> dict[str, Any] | None:
        path = self.config.checkpoint_path
        if path is None or not pathlib.Path(path).exists():
            return None
        state = read_checkpoint(path)
        if state.get("kind") != "cluster":
            raise ConfigurationError(
                f"{path} is not a cluster checkpoint (kind="
                f"{state.get('kind')!r}); single-process checkpoints do "
                f"not restore into a cluster")
        if int(state.get("n_shards", -1)) != self.n_shards:
            raise ConfigurationError(
                f"checkpoint has {state.get('n_shards')} shards but this "
                f"cluster is configured for {self.n_shards}; shard counts "
                f"must match (task routing is shard-count dependent)")
        self._last_checkpoint_state = state
        return state

    async def _place_shard(self, routed: ShardRoute,
                           entry: dict[str, Any] | None) -> None:
        """Install one shard on its routed worker (fresh or from state)."""
        if entry is None:
            reply = await self._request(routed.worker_id, {
                "op": "w_add_shard", "shard": routed.shard_id,
                "adaptation": self._adaptation_dict()})
        else:
            reply = await self._request(routed.worker_id, {
                "op": "w_restore_shard", "shard": routed.shard_id,
                "snapshot": entry.get("snapshot"),
                "counters": entry.get("counters"),
                "adaptation": self._adaptation_dict()})
        if not reply.get("ok"):
            raise ClusterError(
                f"cannot place shard {routed.shard_id} on "
                f"{routed.worker_id}: {reply.get('error')}")
        await self._register_missing_tasks(routed, entry)
        await self._reinstall_triggers(routed)

    async def _reinstall_triggers(self, routed: ShardRoute) -> None:
        """Re-wire trigger plans touching a freshly placed shard.

        Install is idempotent at the service layer: a snapshot-restored
        shard keeps its armed/watch state, while a fresh (no-snapshot)
        re-placement comes back conservatively armed.
        """
        for plan in self.trigger_plans.values():
            if routed.shard_id not in (self.task_shard.get(plan.trigger),
                                       self.task_shard.get(plan.target)):
                continue
            await self._best_effort(routed.worker_id, {
                "op": "w_trigger_install", "shard": routed.shard_id,
                "plan": plan.to_dict()})

    async def _register_missing_tasks(self, routed: ShardRoute,
                                      entry: dict[str, Any] | None) -> None:
        """Re-register catalog tasks a snapshot did not already carry."""
        present = {str(t.get("name")) for t in
                   ((entry or {}).get("snapshot") or {}).get("tasks", [])}
        for name, task_entry in self.catalog.items():
            if (self.task_shard.get(name) != routed.shard_id
                    or name in present):
                continue
            reply = await self._request(routed.worker_id, {
                "op": "w_register_task", "shard": routed.shard_id,
                "task": task_entry, "defaults": self.defaults})
            if not reply.get("ok"):  # pragma: no cover - config drift
                logger.warning("cannot re-register task %s on shard %d: %s",
                               name, routed.shard_id, reply.get("error"))

    async def shutdown(self) -> None:
        """Stop loops, flush a final checkpoint, close every transport."""
        for task in (self._heartbeat_task, self._checkpoint_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._heartbeat_task = self._checkpoint_task = None
        if self.config.checkpoint_path is not None:
            try:
                await self.write_checkpoint()
            except Exception:  # pragma: no cover - best-effort flush
                logger.exception("final cluster checkpoint failed")
        await asyncio.gather(
            *(t.close() for t in self.transports.values()),
            return_exceptions=True)
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    # ------------------------------------------------------------------
    # Worker RPC helpers

    async def _request(self, worker_id: str,
                       payload: dict[str, Any]) -> dict[str, Any]:
        transport = self.transports.get(worker_id)
        if transport is None or worker_id in self._dead:
            raise ClusterError(f"worker {worker_id} is not available")
        return await transport.request(payload)

    async def _best_effort(self, worker_id: str,
                           payload: dict[str, Any]) -> None:
        try:
            await self._request(worker_id, payload)
        except ClusterError:
            pass

    def _note_failure(self, worker_id: str) -> None:
        """A data-path request failed; let the heartbeat confirm sooner."""
        self._misses[worker_id] = self._misses.get(worker_id, 0) + 1

    def worker_pids(self) -> dict[str, int | None]:
        """Worker process ids (router pid for in-proc hosts)."""
        import os
        pids: dict[str, int | None] = {}
        for wid, transport in self.transports.items():
            pid = getattr(transport, "pid", None)
            pids[wid] = pid if pid is not None else (
                os.getpid() if isinstance(transport, InProcTransport)
                else None)
        return pids

    # ------------------------------------------------------------------
    # Data path

    async def submit(self, per_shard: dict[int, list[Any]],
                     ) -> tuple[int, int, int]:
        """Forward pre-routed updates; returns (accepted, shed, rejected).

        Buffering shards ACK into their migration buffer (replayed after
        cutover — an ACK here carries the same durability as an ACK into
        a shard queue). Everything else groups into one ``w_offer`` frame
        per worker, sent concurrently.
        """
        accepted = shed = rejected = 0
        per_worker: dict[str, list[list[Any]]] = {}
        touched: list[ShardRoute] = []
        for sid, items in per_shard.items():
            routed = self.routes[sid]
            if routed.buffering:
                if (routed.buffered_updates + len(items)
                        <= self.config.buffer_depth):
                    routed.buffer.append(items)
                    routed.buffered_updates += len(items)
                    accepted += len(items)
                else:
                    self.router_shed += len(items)
                    shed += len(items)
                continue
            per_worker.setdefault(routed.worker_id, []).append([sid, items])
            routed.inflight += 1
            routed._idle.clear()
            touched.append(routed)
        if per_worker:
            try:
                results = await asyncio.gather(
                    *(self._offer(wid, batches)
                      for wid, batches in per_worker.items()))
            finally:
                for routed in touched:
                    routed.inflight -= 1
                    if routed.inflight == 0:
                        routed._idle.set()
            for a, s, r in results:
                accepted += a
                shed += s
                rejected += r
        return accepted, shed, rejected

    async def _offer(self, worker_id: str,
                     batches: list[list[Any]]) -> tuple[int, int, int]:
        total = sum(len(items) for _sid, items in batches)
        try:
            reply = await self._request(worker_id,
                                        {"op": "w_offer", "b": batches})
        except ClusterError:
            self._note_failure(worker_id)
            self.router_shed += total
            return 0, total, 0
        if not reply.get("ok"):  # pragma: no cover - defensive
            self.router_shed += total
            return 0, total, 0
        return (int(reply.get("accepted", 0)), int(reply.get("shed", 0)),
                int(reply.get("rejected", 0)))

    async def drain(self) -> None:
        """Wait until every live worker has applied its queued batches."""
        for wid in sorted(self.transports):
            if wid in self._dead:
                continue
            try:
                await self._request(wid, {"op": "w_drain"})
            except ClusterError:
                self._note_failure(wid)
        # Propagate any trigger edges the drained batches produced, so a
        # caller that drains at a phase boundary observes guard state
        # deterministically (scenario replay relies on this).
        await self.pump_triggers()

    # ------------------------------------------------------------------
    # Data path — binary columnar

    def _assign_gid(self, name: str) -> int:
        gid = self.gids.get(name)
        if gid is None:
            gid = self.gids[name] = len(self.gid_names)
            self.gid_names.append(name)
        return gid

    async def _sync_gids(self, worker_id: str) -> None:
        """Intern any gids ``worker_id`` has not seen yet (watermark)."""
        high = len(self.gid_names)
        low = self._gid_synced.get(worker_id, 0)
        if low >= high:
            return
        reply = await self._request(worker_id, {
            "op": "w_intern",
            "tasks": [[gid, self.gid_names[gid]]
                      for gid in range(low, high)]})
        if not reply.get("ok"):
            raise ClusterError(
                f"worker {worker_id} rejected gid intern: "
                f"{reply.get('error')}")
        self._gid_synced[worker_id] = high

    async def submit_columns(
            self, per_shard: dict[int, tuple[Any, Any, Any]],
    ) -> tuple[int, int, int]:
        """Columnar twin of :meth:`submit` for pre-routed gid columns.

        ``per_shard`` maps shard id to ``(gids, steps, values)`` arrays.
        Buffering (migrating) shards fall back to row-wise update lists in
        the migration buffer — replay reuses the JSON ``w_offer`` path, so
        a migration window costs throughput, never correctness. Everything
        else groups into one binary ``SHARD_OFFER`` frame per worker.
        """
        accepted = shed = rejected = 0
        per_worker: dict[str, list[Any]] = {}
        touched: list[ShardRoute] = []
        for sid, (gids, steps, values) in per_shard.items():
            routed = self.routes[sid]
            if routed.buffering:
                items = [[self.gid_names[g], int(s), float(v)]
                         for g, s, v in zip(gids.tolist(), steps.tolist(),
                                            values.tolist())]
                if (routed.buffered_updates + len(items)
                        <= self.config.buffer_depth):
                    routed.buffer.append(items)
                    routed.buffered_updates += len(items)
                    accepted += len(items)
                else:
                    self.router_shed += len(items)
                    shed += len(items)
                continue
            per_worker.setdefault(routed.worker_id, []).append(
                (sid, gids, steps, values))
            routed.inflight += 1
            routed._idle.clear()
            touched.append(routed)
        if per_worker:
            try:
                results = await asyncio.gather(
                    *(self._offer_columns(wid, segments)
                      for wid, segments in per_worker.items()))
            finally:
                for routed in touched:
                    routed.inflight -= 1
                    if routed.inflight == 0:
                        routed._idle.set()
            for a, s, r in results:
                accepted += a
                shed += s
                rejected += r
        return accepted, shed, rejected

    async def _offer_columns(self, worker_id: str,
                             segments: list[Any]) -> tuple[int, int, int]:
        total = sum(len(seg[1]) for seg in segments)
        try:
            await self._sync_gids(worker_id)
            return await self.transports[worker_id].request_columns(segments)
        except ClusterError:
            self._note_failure(worker_id)
            self.router_shed += total
            return 0, total, 0

    # ------------------------------------------------------------------
    # Task control

    async def register_task(self, entry: dict[str, Any]) -> dict[str, Any]:
        spec = task_from_config(dict(entry), self.defaults)
        sid = route(spec.name, self.n_shards)
        routed = self.routes[sid]
        await routed.wait_settled()
        reply = await self._request(routed.worker_id, {
            "op": "w_register_task", "shard": sid,
            "task": dict(entry), "defaults": self.defaults})
        if not reply.get("ok"):
            return reply
        self.task_shard[spec.name] = sid
        self.catalog[spec.name] = dict(entry)
        self._assign_gid(spec.name)
        self.task_epoch += 1
        task_type = str(reply.get("type", "value"))
        self.trace.emit("task_registered", task=spec.name, shard=sid,
                        threshold=spec.threshold, type=task_type)
        return {"ok": True, "task": spec.name, "shard": sid,
                "type": task_type}

    async def remove_task(self, name: str) -> dict[str, Any]:
        sid = self.task_shard.get(name)
        if sid is None:
            return {"ok": False, "error": f"unknown task {name!r}",
                    "code": "unknown-task"}
        routed = self.routes[sid]
        await routed.wait_settled()
        reply = await self._request(routed.worker_id, {
            "op": "w_remove_task", "shard": sid, "task": name})
        if not reply.get("ok"):
            return reply
        del self.task_shard[name]
        self.catalog.pop(name, None)
        self.task_epoch += 1
        self.trace.emit("task_removed", task=name, shard=sid)
        return {"ok": True, "task": name}

    async def add_trigger(self, request: dict[str, Any]) -> dict[str, Any]:
        target = str(request.get("target", ""))
        trigger = str(request.get("trigger", ""))
        for name in (target, trigger):
            if name not in self.task_shard:
                return {"ok": False, "error": f"unknown task {name!r}",
                        "code": "unknown-task"}
        if self.task_shard[target] != self.task_shard[trigger]:
            return {"ok": False, "code": "cross-shard-trigger",
                    "error": f"target {target!r} (shard "
                             f"{self.task_shard[target]}) and trigger "
                             f"{trigger!r} (shard "
                             f"{self.task_shard[trigger]}) hash to "
                             f"different shards; correlation gating is "
                             f"intra-shard"}
        sid = self.task_shard[target]
        routed = self.routes[sid]
        await routed.wait_settled()
        reply = await self._request(routed.worker_id, {
            "op": "w_add_trigger", "shard": sid, "target": target,
            "trigger": trigger,
            "elevation_level": float(request.get("elevation_level", 0.0)),
            "suspend_interval": int(request.get("suspend_interval", 10))})
        if not reply.get("ok"):
            return reply
        return {"ok": True, "target": target, "trigger": trigger}

    # ------------------------------------------------------------------
    # Trigger channel (repro.triggers, DESIGN.md S32)

    async def install_trigger(self, request: dict[str, Any],
                              ) -> dict[str, Any]:
        """Install a cross-shard trigger plan on both involved shards.

        Unlike :meth:`add_trigger` (intra-shard value gating), the plan's
        trigger and target may live on different shards or workers: the
        trigger's shard watches for elevation edges and the coordinator
        routes them to the target's shard via ``w_trigger_set``.
        """
        entry = request.get("plan")
        if not isinstance(entry, dict):
            return {"ok": False, "code": "bad-request",
                    "error": "trigger_install needs a 'plan' dict"}
        plan = TriggerPlan.from_dict(entry)
        for name in (plan.target, plan.trigger):
            if name not in self.task_shard:
                return {"ok": False, "error": f"unknown task {name!r}",
                        "code": "unknown-task"}
        for sid in sorted({self.task_shard[plan.trigger],
                           self.task_shard[plan.target]}):
            routed = self.routes[sid]
            await routed.wait_settled()
            reply = await self._request(routed.worker_id, {
                "op": "w_trigger_install", "shard": sid,
                "plan": plan.to_dict()})
            if not reply.get("ok"):
                return reply
        self.trigger_plans[plan.target] = plan
        self.trace.emit("trigger_plan_installed", task=plan.target,
                        shard=self.task_shard[plan.target],
                        trigger=plan.trigger,
                        elevation_level=plan.elevation_level,
                        suspend_interval=plan.suspend_interval)
        return {"ok": True, "target": plan.target, "trigger": plan.trigger,
                "plans": len(self.trigger_plans)}

    async def set_trigger_armed(self, name: str,
                                armed: bool) -> dict[str, Any]:
        """Explicitly arm/disarm a guarded task (operator override)."""
        sid = self.task_shard.get(name)
        if sid is None:
            return {"ok": False, "error": f"unknown task {name!r}",
                    "code": "unknown-task"}
        routed = self.routes[sid]
        await routed.wait_settled()
        reply = await self._request(routed.worker_id, {
            "op": "w_trigger_set", "shard": sid, "task": name,
            "armed": bool(armed)})
        if reply.get("ok") and reply.get("was_armed") != reply.get("armed"):
            self.trigger_edges["arm" if armed else "disarm"] += 1
        return reply

    async def pump_triggers(self) -> None:
        """Drain elevation edges from every worker and route them.

        Each edge fans out to every plan watching the edge's trigger
        task; the guarded target's shard may sit on any worker. Edge
        counters bump per routed target, mirroring the single-process
        runtime's accounting exactly.
        """
        if not self.trigger_plans:
            return
        events: list[dict[str, Any]] = []
        for wid, transport in list(self.transports.items()):
            if wid in self._dead:
                continue
            try:
                reply = await transport.request({"op": "w_trigger_events"})
            except ClusterError:
                continue
            if reply.get("ok"):
                events.extend(reply.get("events", ()))
        for event in events:
            op = str(event.get("op", ""))
            if op not in ("arm", "disarm"):
                continue
            source = str(event.get("trigger", ""))
            for plan in self.trigger_plans.values():
                if plan.trigger != source:
                    continue
                sid = self.task_shard.get(plan.target)
                if sid is None:
                    continue
                routed = self.routes[sid]
                await routed.wait_settled()
                await self._best_effort(routed.worker_id, {
                    "op": "w_trigger_set", "shard": sid,
                    "task": plan.target, "armed": op == "arm"})
                self.trigger_edges[op] += 1

    async def trigger_plan_stats(self) -> tuple[int, float]:
        """Fleet-wide (suspensions, probe collections saved) totals."""
        suspensions = 0
        saved = 0.0
        for target in self.trigger_plans:
            reply = await self.forward_task_read("w_trigger_state", target)
            if not reply.get("ok"):
                continue
            status = reply.get("state", {})
            count = int(status.get("suspensions", 0))
            suspensions += count
            saved += count * (int(status.get("suspend_interval", 1)) - 1)
        return suspensions, saved

    async def forward_task_read(self, op: str, name: str,
                                extra: dict[str, Any] | None = None,
                                ) -> dict[str, Any]:
        """Route a per-task read (``due``/``task_info``/``alerts``)."""
        sid = self.task_shard.get(name)
        if sid is None:
            return {"ok": False, "error": f"unknown task {name!r}",
                    "code": "unknown-task"}
        routed = self.routes[sid]
        await routed.wait_settled()
        payload = {"op": op, "shard": sid, "task": name}
        if extra:
            payload.update(extra)
        return await self._request(routed.worker_id, payload)

    # ------------------------------------------------------------------
    # Migration

    async def migrate(self, shard_id: int, target: str) -> dict[str, Any]:
        """Move one shard to ``target`` live, with offers buffered.

        Protocol: buffer → wait in-flight → drain+snapshot source →
        restore on target → **fingerprint check** → cutover → replay
        buffer → drop source copy. Any failure before cutover aborts
        with the source untouched and the buffer replayed to it.
        """
        if not 0 <= shard_id < self.n_shards:
            raise ClusterError(f"no such shard {shard_id}")
        if target not in self.transports or target in self._dead:
            raise ClusterError(f"no such worker {target!r}")
        routed = self.routes[shard_id]
        source = routed.worker_id
        if target == source:
            return {"ok": True, "shard": shard_id, "from": source,
                    "to": target, "noop": True}
        if routed.buffering:
            raise ClusterError(
                f"shard {shard_id} is already migrating")
        routed.begin_buffering()
        try:
            await routed.wait_idle()
            snap = await self._request(source, {
                "op": "w_snapshot_shard", "shard": shard_id, "drain": True})
            if not snap.get("ok"):
                raise ClusterError(
                    f"cannot snapshot shard {shard_id} on {source}: "
                    f"{snap.get('error')}")
            restored = await self._request(target, {
                "op": "w_restore_shard", "shard": shard_id,
                "snapshot": snap["snapshot"], "counters": snap["counters"],
                "adaptation": self._adaptation_dict()})
            if not restored.get("ok"):
                raise ClusterError(
                    f"cannot restore shard {shard_id} on {target}: "
                    f"{restored.get('error')}")
            if restored.get("fingerprint") != snap.get("fingerprint"):
                await self._best_effort(target, {"op": "w_drop_shard",
                                                 "shard": shard_id})
                raise ClusterError(
                    f"fingerprint mismatch migrating shard {shard_id}: "
                    f"source {snap.get('fingerprint')} != target "
                    f"{restored.get('fingerprint')}; migration aborted")
            routed.worker_id = target
        except Exception:
            self.trace.emit("migration_aborted", shard=shard_id,
                            source=source, target=target)
            # Source is still authoritative; replay what we buffered.
            await self._flush(routed)
            routed.end_buffering()
            raise
        replayed = await self._flush(routed)
        routed.end_buffering()
        await self._best_effort(source, {"op": "w_drop_shard",
                                         "shard": shard_id})
        self.migrations += 1
        self.trace.emit("shard_migrated", shard=shard_id, source=source,
                        target=target, replayed=replayed,
                        fingerprint=snap.get("fingerprint"))
        return {"ok": True, "shard": shard_id, "from": source, "to": target,
                "replayed": replayed,
                "fingerprint": snap.get("fingerprint"),
                "fingerprint_match": True}

    async def _flush(self, routed: ShardRoute) -> int:
        """Replay a route's buffer head-first to its current worker."""
        replayed = 0
        retries = 0
        while routed.buffer:
            items = routed.buffer[0]
            try:
                reply = await self._request(routed.worker_id, {
                    "op": "w_offer", "b": [[routed.shard_id, items]]})
            except ClusterError:
                self._note_failure(routed.worker_id)
                reply = None
            if reply is not None and reply.get("ok"):
                if int(reply.get("accepted", 0)) == len(items):
                    replayed += len(items)
                    routed.buffered_updates -= len(items)
                    routed.buffer.pop(0)
                    retries = 0
                    continue
                if (int(reply.get("shed", 0))
                        and retries < _FLUSH_RETRY_LIMIT):
                    retries += 1
                    await asyncio.sleep(self.config.shed_retry_ms / 1000.0)
                    continue
            # Worker unreachable, shard rejected, or out of retries: the
            # remaining buffer is honestly accounted as shed and recovery
            # (if the worker is dead) is the heartbeat's job.
            for rest in routed.buffer:
                self.router_shed += len(rest)
                routed.buffered_updates -= len(rest)
            routed.buffer.clear()
            break
        return replayed

    # ------------------------------------------------------------------
    # Failure detection and re-placement

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.heartbeat_interval)
            try:
                await self._heartbeat_once()
            except asyncio.CancelledError:
                raise
            except Exception:  # pragma: no cover - keep the loop alive
                logger.exception("heartbeat pass failed")

    async def _heartbeat_once(self) -> None:
        for wid, transport in list(self.transports.items()):
            if wid in self._dead:
                continue
            failed = not transport.alive
            if not failed:
                try:
                    reply = await asyncio.wait_for(
                        transport.request({"op": "w_ping"}),
                        timeout=self.config.heartbeat_timeout)
                    failed = not reply.get("ok")
                except (ClusterError, asyncio.TimeoutError):
                    failed = True
            if failed:
                self._misses[wid] = self._misses.get(wid, 0) + 1
                if self._misses[wid] >= self.config.heartbeat_misses:
                    await self._handle_worker_loss(wid)
            else:
                self._misses[wid] = 0
        await self.pump_triggers()
        await self.pull_traces()
        await self.refresh_fleet()
        await self._refresh_recovery_state()

    async def _refresh_recovery_state(self) -> None:
        """Keep an in-memory copy of every shard's state for re-placement.

        This is the 'last checkpoint' failure recovery restores from; it
        is refreshed every heartbeat so recovery loses at most one beat
        of sampler adaptation, checkpoint file or not.
        """
        self._last_checkpoint_state = await self._collect_state()

    async def _handle_worker_loss(self, worker_id: str) -> None:
        async with self._recover_lock:
            if worker_id in self._dead:
                return
            self._dead.add(worker_id)
        self.trace.emit("worker_lost", worker=worker_id,
                        misses=self._misses.get(worker_id, 0))
        logger.warning("worker %s declared dead after %d missed heartbeats",
                       worker_id, self._misses.get(worker_id, 0))
        shards_state = (self._last_checkpoint_state or {}).get("shards", {})
        survivors = [wid for wid in sorted(self.transports)
                     if wid not in self._dead]
        if not survivors:
            logger.error("no surviving workers; shards on %s are offline",
                         worker_id)
            return
        load = {wid: sum(1 for r in self.routes if r.worker_id == wid)
                for wid in survivors}
        for routed in self.routes:
            if routed.worker_id != worker_id:
                continue
            routed.begin_buffering()
            try:
                new_wid = min(survivors, key=lambda w: (load[w], w))
                entry = shards_state.get(str(routed.shard_id))
                old = routed.worker_id
                routed.worker_id = new_wid
                await self._place_shard(routed, entry)
                load[new_wid] += 1
                self.replacements += 1
                self.trace.emit("shard_replaced", shard=routed.shard_id,
                                source=old, target=new_wid,
                                recovered=entry is not None)
            except ClusterError:
                logger.exception("re-placement of shard %d failed",
                                 routed.shard_id)
            finally:
                await self._flush(routed)
                routed.end_buffering()
        transport = self.transports.get(worker_id)
        if transport is not None:
            try:
                await asyncio.wait_for(transport.close(), timeout=5.0)
            except (asyncio.TimeoutError, ClusterError,
                    OSError):  # pragma: no cover - already dead
                pass

    async def kill_worker(self, worker_id: str) -> None:
        """Hard-kill one worker (chaos tests / CI re-placement check)."""
        transport = self.transports.get(worker_id)
        if transport is None:
            raise ClusterError(f"no such worker {worker_id!r}")
        kill = getattr(transport, "kill", None)
        if kill is None:
            raise ClusterError(
                f"worker {worker_id} backend cannot be killed remotely")
        await kill()

    # ------------------------------------------------------------------
    # Checkpointing

    async def _collect_state(self) -> dict[str, Any]:
        # A worker that is unreachable this pass (possibly dying, not yet
        # declared dead) must not evict its shards from the recovery
        # state: keep the last-known-good entry so a subsequent
        # re-placement still has something to restore from.
        prev_shards = (self._last_checkpoint_state or {}).get("shards", {})
        shards: dict[str, Any] = {}
        for routed in self.routes:
            if routed.worker_id in self._dead:
                continue
            key = str(routed.shard_id)
            try:
                reply = await self._request(routed.worker_id, {
                    "op": "w_snapshot_shard", "shard": routed.shard_id})
            except ClusterError:
                reply = None
            if reply is not None and reply.get("ok"):
                shards[key] = {"snapshot": reply["snapshot"],
                               "counters": reply["counters"]}
            elif key in prev_shards:
                shards[key] = prev_shards[key]
        state = {
            "kind": "cluster",
            "n_shards": self.n_shards,
            "placement": {str(r.shard_id): r.worker_id
                          for r in self.routes},
            "task_shard": dict(self.task_shard),
            "catalog": dict(self.catalog),
            "defaults": dict(self.defaults),
            "adaptation": self._adaptation_dict(),
            "shards": shards,
        }
        if self.trigger_plans:
            state["trigger_plans"] = [
                self.trigger_plans[t].to_dict()
                for t in sorted(self.trigger_plans)]
        return state

    async def write_checkpoint(self) -> pathlib.Path | None:
        """Collect and persist the full cluster state (v2 CRC format)."""
        state = await self._collect_state()
        self._last_checkpoint_state = state
        if self.config.checkpoint_path is None:
            return None
        path = write_checkpoint(self.config.checkpoint_path, state)
        self._last_checkpoint_monotonic = time.monotonic()
        return path

    async def _checkpoint_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.checkpoint_interval)
            try:
                await self.write_checkpoint()
            except asyncio.CancelledError:
                raise
            except Exception:  # pragma: no cover - degrade, don't die
                self.checkpoint_failures += 1
                logger.exception("periodic cluster checkpoint failed")

    # ------------------------------------------------------------------
    # Fleet telemetry

    async def pull_traces(self) -> None:
        """Drain worker sampler traces into the coordinator's ring."""
        async with self._trace_lock:
            for wid, transport in list(self.transports.items()):
                if wid in self._dead:
                    continue
                try:
                    reply = await transport.request({
                        "op": "w_trace",
                        "since": self._trace_cursor.get(wid, 0)})
                except ClusterError:
                    continue
                if not reply.get("ok"):
                    continue
                self._trace_cursor[wid] = int(reply.get("next_seq", 0))
                for event in reply.get("events", ()):
                    data = {k: v for k, v in event.items()
                            if k not in ("seq", "ts_monotonic", "kind",
                                         "task", "shard")}
                    self.trace.emit(str(event.get("kind")),
                                    task=event.get("task"),
                                    shard=event.get("shard"),
                                    worker=wid, **data)

    async def refresh_fleet(self) -> dict[str, Any]:
        """Pull raw worker registries, merge, cache for the HTTP server."""
        snaps: dict[str, Any] = {}
        for wid, transport in list(self.transports.items()):
            if wid in self._dead:
                continue
            try:
                reply = await transport.request({"op": "w_telemetry"})
            except ClusterError:
                continue
            if reply.get("ok"):
                snaps[wid] = reply.get("metrics", {})
        self._fleet_cache = merge_fleet_snapshots(
            snaps, base=self.registry.snapshot())
        return self._fleet_cache

    @property
    def fleet_snapshot(self) -> dict[str, Any]:
        """Last merged fleet metrics snapshot (heartbeat-refreshed)."""
        return self._fleet_cache

    def placement(self) -> dict[str, Any]:
        """The live placement table (the ``placement`` wire op's body)."""
        return {
            "n_shards": self.n_shards,
            "workers": {wid: {"alive": wid not in self._dead
                              and t.alive,
                              "pid": self.worker_pids()[wid],
                              "shards": sorted(
                                  r.shard_id for r in self.routes
                                  if r.worker_id == wid)}
                        for wid, t in self.transports.items()},
            "migrations": self.migrations,
            "replacements": self.replacements,
        }
