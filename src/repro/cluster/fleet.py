"""Fleet-level telemetry: merging per-worker registries at the coordinator.

Workers export *raw* registry snapshots (``registry.snapshot(raw=True)``):
counters and gauges as plain values, histograms as full mergeable
:class:`~repro.telemetry.histogram.LogHistogram` sketches. This module
folds those into one snapshot shaped exactly like a single registry's
summary snapshot, so :func:`repro.telemetry.exposition.render_prometheus`
serves a fleet ``/metrics`` with no special cases:

* counter/gauge series gain a leading ``worker`` label (per-worker series
  stay distinguishable; Prometheus-side ``sum by ()`` gives fleet totals,
  and the loadgen's family-total accounting keeps working unchanged);
* histogram series are **merged sketch-first** — quantiles are computed
  from the combined sketch, never averaged across workers (averaging
  per-worker p99s is the classic fleet-monitoring mistake; the mergeable
  sketch is the whole reason PR 5 chose a DDSketch-style histogram);
* the coordinator's own families (router counters, ``worker_up``,
  migration/replacement totals) pass through, and series whose family
  and label shape match a merged family (e.g. the router's
  ``volley_updates_shed_total{worker="router"}``) are appended to it.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.telemetry.histogram import LogHistogram
from repro.telemetry.registry import SUMMARY_QUANTILES

__all__ = ["merge_fleet_snapshots"]


def _summary(sketch: LogHistogram) -> dict[str, Any]:
    return {
        "count": sketch.count,
        "sum": sketch.total,
        "min": sketch.min,
        "max": sketch.max,
        "quantiles": sketch.quantiles(SUMMARY_QUANTILES),
    }


def merge_fleet_snapshots(
        worker_snapshots: Mapping[str, Mapping[str, Any]],
        base: Mapping[str, Any] | None = None) -> dict[str, Any]:
    """Fold raw per-worker snapshots (plus the coordinator's own summary
    snapshot) into one fleet snapshot.

    Args:
        worker_snapshots: ``{worker_id: registry.snapshot(raw=True)}``.
        base: the coordinator registry's ordinary (summary) snapshot;
            its families pass through, appended to merged families when
            the label shape matches.
    """
    merged: dict[str, dict[str, Any]] = {}
    sketches: dict[str, LogHistogram] = {}
    for worker_id in sorted(worker_snapshots):
        snapshot = worker_snapshots[worker_id]
        for name, family in snapshot.items():
            kind = str(family.get("kind", ""))
            if kind == "histogram":
                entry = merged.setdefault(name, {
                    "kind": "histogram",
                    "help": str(family.get("help", "")),
                    "label_names": [],
                    "series": [],
                })
                for series in family.get("series", ()):
                    value = series.get("value") or {}
                    raw = value.get("sketch")
                    if raw is None:
                        continue  # summary-form series cannot merge
                    sketch = LogHistogram.from_dict(raw)
                    if name in sketches:
                        sketches[name].merge(sketch)
                    else:
                        sketches[name] = sketch
            else:
                labels = ["worker"] + [str(n) for n in
                                       family.get("label_names", ())]
                entry = merged.setdefault(name, {
                    "kind": kind,
                    "help": str(family.get("help", "")),
                    "label_names": labels,
                    "series": [],
                })
                for series in family.get("series", ()):
                    entry["series"].append({
                        "labels": [worker_id] + [str(v) for v in
                                                 series.get("labels", ())],
                        "value": series.get("value", 0.0),
                    })
    for name, entry in merged.items():
        if entry["kind"] == "histogram":
            sketch = sketches.get(name, LogHistogram())
            entry["series"] = [{"labels": [], "value": _summary(sketch)}]
    if base:
        for name, family in base.items():
            entry = merged.get(name)
            if entry is None:
                merged[name] = {
                    "kind": family.get("kind"),
                    "help": family.get("help", ""),
                    "label_names": list(family.get("label_names", ())),
                    "series": [dict(s) for s in family.get("series", ())],
                }
            elif (list(family.get("label_names", ()))
                  == list(entry["label_names"])):
                entry["series"].extend(dict(s) for s
                                       in family.get("series", ()))
    return merged
