"""Shard hosting: the worker-side half of the cluster runtime.

A :class:`WorkerHost` owns a set of :class:`~repro.runtime.shard.ShardWorker`
instances keyed by *global* shard id and exposes one async ``handle(request)
-> reply`` dispatch for the worker-side op surface (``w_*`` ops). The same
object backs every transport backend: the in-proc transport calls
:meth:`WorkerHost.handle` directly (zero-copy), the subprocess/TCP worker
(:mod:`repro.cluster.worker`) wraps it in a frame loop.

The host deliberately reuses the single-process runtime's building blocks
unchanged — :class:`~repro.runtime.shard.ShardWorker` queues and drain
loops, :meth:`~repro.service.MonitoringService.snapshot` /
:meth:`~repro.service.MonitoringService.restore` for migration — so a
shard behaves bit-identically whether it lives in the router process, a
subprocess, or a remote peer. Shard state moves between workers only as
snapshot dicts (the checkpoint format), never as live objects.

Telemetry: each host carries its own
:class:`~repro.telemetry.registry.MetricsRegistry` with the standard
per-shard counter families; the coordinator pulls raw snapshots
(``w_telemetry``) and merges them into the fleet view. Sampler decision
events (``interval_adapted`` / ``violation``) are emitted into the host's
local :class:`~repro.telemetry.trace.DecisionTrace` and pulled by the
coordinator's trace aggregation, so a cluster's trace stream carries the
same event kinds as a single-process runtime's.
"""

from __future__ import annotations

import os
import time
from typing import Any, Sequence

import numpy as np

from repro.config import register_task_from_config
from repro.core.adaptation import AdaptationConfig
from repro.exceptions import ConfigurationError, ReproError
from repro.runtime.checkpoint import state_fingerprint
from repro.runtime.shard import ColumnBatch, ShardWorker, restore_counters
from repro.service import MonitoringService
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace import DecisionTrace
from repro.triggers.plan import TriggerPlan
from repro.types import Alert

__all__ = ["WorkerHost"]

_MAX_GID = 1 << 20
"""Cap on cluster-global task ids a coordinator may intern on a host."""


class _GidNames:
    """Lazy name view for a columnar sub-batch keyed by global task id."""

    __slots__ = ("table", "gids")

    def __init__(self, table: list, gids: np.ndarray):
        self.table = table
        self.gids = gids

    def __len__(self) -> int:
        return len(self.gids)

    def __getitem__(self, pos: int):
        gid = int(self.gids[pos])
        return self.table[gid] if 0 <= gid < len(self.table) else None

_PER_SHARD_COUNTERS = (
    ("volley_updates_offered_total",
     "Updates accepted into shard queues", "offered"),
    ("volley_updates_applied_total",
     "Updates applied to shard services", "applied"),
    ("volley_updates_consumed_total",
     "Updates consumed as scheduled samples", "consumed"),
    ("volley_updates_shed_total",
     "Updates shed under backpressure", "shed"),
    ("volley_updates_rejected_total",
     "Updates rejected (unknown task / malformed)", "rejected"),
    ("volley_alerts_fired_total",
     "State-violation alerts fired", "alerts_fired"),
)


def _error(message: str, code: str = "bad-request") -> dict[str, Any]:
    return {"ok": False, "error": message, "code": code}


class WorkerHost:
    """Hosts a mutable set of global shards inside one event loop.

    Args:
        worker_id: stable identifier within the cluster (``w0``, ``w1``,
            ...); labels every metric series and trace event this host
            produces.
        queue_depth: per-shard ingest queue depth, in batches.
        adaptation: default adaptation tunables for tasks registered on
            hosted shards (the coordinator forwards its own).
        registry: metrics registry; the default creates a live one so
            per-worker counters always exist for the fleet merge.
        trace: decision trace for sampler events; the default creates a
            local ring the coordinator drains via ``w_trace``.
    """

    def __init__(self, worker_id: str, queue_depth: int = 1024,
                 adaptation: AdaptationConfig | None = None,
                 registry: MetricsRegistry | None = None,
                 trace: DecisionTrace | None = None,
                 trace_capacity: int = 4096, soa: bool = True):
        self.worker_id = worker_id
        self.queue_depth = queue_depth
        self.soa = soa
        # Cluster-global task-id table, interned lazily by the coordinator
        # (``w_intern``). Lives on the *host*, not a shard, so it survives
        # shard migrations in and out of this worker.
        self.gid_names: list[str | None] = []
        # Per-shard gid -> SoA engine row cache (-1 = resolve by name).
        # Invalidated whenever the shard's service or task set changes;
        # stale-but-uninvalidated rows are safe because engine rows are
        # never reused (an evicted row stays inactive -> name fallback).
        self._gid_rows: dict[int, np.ndarray] = {}
        self.adaptation = adaptation or AdaptationConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace if trace is not None else DecisionTrace(
            trace_capacity)
        self.shards: dict[int, ShardWorker] = {}
        self._running = False
        self._started_monotonic = time.monotonic()
        self._interval_hist = self.registry.histogram(
            "volley_sampling_interval",
            "Sampling interval after each consumed update")
        self._queue_depth_family = self.registry.gauge(
            "volley_queue_depth", "Batches queued per shard",
            labels=("shard",))
        self.registry.gauge(
            "volley_worker_uptime_seconds",
            "Seconds since this worker host started",
            fn=lambda: time.monotonic() - self._started_monotonic)
        self._counter_families = [
            (self.registry.counter(name, help_text, labels=("shard",)), attr)
            for name, help_text, attr in _PER_SHARD_COUNTERS]
        # Trigger-channel accounting rides the fleet telemetry merge like
        # every other per-worker family.
        self.registry.counter(
            "volley_trigger_suspensions_total",
            "Consumed offers deferred by disarmed trigger guards",
            fn=lambda: float(sum(w.service.trigger_accounting()[0]
                                 for w in self.shards.values())))
        self.registry.gauge(
            "volley_trigger_probe_cost_saved",
            "Estimated probe collections avoided by trigger guards",
            fn=lambda: float(sum(w.service.trigger_accounting()[1]
                                 for w in self.shards.values())))

    # ------------------------------------------------------------------
    # Shard lifecycle

    def start(self) -> None:
        """Start the drain loops of every hosted shard (idempotent)."""
        self._running = True
        for worker in self.shards.values():
            worker.start()

    async def close(self, drain: bool = True) -> None:
        """Stop every hosted shard; with ``drain`` apply queued work first."""
        self._running = False
        for worker in self.shards.values():
            if drain:
                await worker.stop()
            else:
                await worker.abort()

    def _alert_hook(self, worker: ShardWorker):
        def hook(alert: Alert, _worker: ShardWorker = worker) -> None:
            _worker.alerts_fired += 1
        return hook

    def _install(self, shard_id: int, service: MonitoringService,
                 ) -> ShardWorker:
        self._gid_rows.pop(shard_id, None)
        worker = ShardWorker(shard_id, service, self.queue_depth)
        worker.interval_hist = (self._interval_hist
                                if self.registry.enabled else None)
        service.attach_telemetry(self.trace, shard_id)
        self.shards[shard_id] = worker
        for family, attr in self._counter_families:
            family.labels(shard_id,
                          fn=lambda w=worker, a=attr: float(getattr(w, a)))
        self._queue_depth_family.labels(
            shard_id, fn=lambda w=worker: float(w.depth))
        if self._running:
            worker.start()
        return worker

    async def _uninstall(self, shard_id: int, drain: bool) -> None:
        self._gid_rows.pop(shard_id, None)
        worker = self.shards.pop(shard_id)
        if drain:
            await worker.stop()
        else:
            await worker.abort()
        for family, _attr in self._counter_families:
            family.remove(shard_id)
        self._queue_depth_family.remove(shard_id)

    def _shard(self, shard_id: int) -> ShardWorker:
        worker = self.shards.get(shard_id)
        if worker is None:
            raise KeyError(f"worker {self.worker_id} does not host shard "
                           f"{shard_id}")
        return worker

    def _find_task(self, request: dict[str, Any]) -> tuple[ShardWorker, Any]:
        worker = self._shard(int(request.get("shard", -1)))
        return worker, worker.service._state(str(request.get("task", "")))

    # ------------------------------------------------------------------
    # Dispatch

    async def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Dispatch one worker-side request; always returns a reply dict."""
        op = request.get("op")
        handler = self._OPS.get(op) if isinstance(op, str) else None
        if handler is None:
            return _error(f"unknown worker op {op!r}", code="unknown-op")
        try:
            reply = handler(self, request)
            if hasattr(reply, "__await__"):
                reply = await reply
            return reply
        except KeyError as exc:
            return _error(str(exc.args[0]) if exc.args else str(exc),
                          code="unknown-shard")
        except ReproError as exc:
            return _error(str(exc))
        except (ValueError, TypeError) as exc:
            return _error(f"invalid request: {exc}")

    # ------------------------------------------------------------------
    # Ops — lifecycle / placement

    def _op_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        return {"ok": True, "worker_id": self.worker_id, "pid": os.getpid(),
                "shards": sorted(self.shards),
                "uptime_s": time.monotonic() - self._started_monotonic}

    def _op_add_shard(self, request: dict[str, Any]) -> dict[str, Any]:
        shard_id = int(request["shard"])
        if shard_id in self.shards:
            return _error(f"worker {self.worker_id} already hosts shard "
                          f"{shard_id}", code="shard-exists")
        adaptation = request.get("adaptation")
        if adaptation is not None:
            self.adaptation = AdaptationConfig(**adaptation)
        self._install(shard_id,
                      MonitoringService(self.adaptation, soa=self.soa))
        return {"ok": True, "shard": shard_id}

    async def _op_restore_shard(self, request: dict[str, Any],
                                ) -> dict[str, Any]:
        """Install a shard from a snapshot (migration target / recovery).

        Replies with the fingerprint of the *re-serialised* restored state
        so the coordinator can verify the transfer was bit-identical
        before cutting traffic over.
        """
        shard_id = int(request["shard"])
        adaptation = request.get("adaptation")
        if adaptation is not None:
            self.adaptation = AdaptationConfig(**adaptation)
        if shard_id in self.shards:
            await self._uninstall(shard_id, drain=False)
        snapshot = request.get("snapshot")
        if snapshot is None:
            worker = self._install(
                shard_id, MonitoringService(self.adaptation, soa=self.soa))
        else:
            # The alert callback must bump the ShardWorker's counter, but
            # the worker only exists after the service does — close over a
            # cell that is filled right after installation.
            cell: list[ShardWorker] = []

            def on_alert(_name: str, _alert: Alert) -> None:
                if cell:
                    cell[0].alerts_fired += 1

            service = MonitoringService.restore(dict(snapshot),
                                                on_alert=on_alert,
                                                soa=self.soa)
            worker = self._install(shard_id, service)
            cell.append(worker)
        counters = request.get("counters")
        if counters:
            restore_counters(worker, counters)
        check = worker.service.snapshot()
        return {"ok": True, "shard": shard_id,
                "fingerprint": state_fingerprint(check),
                "tasks": len(worker.service.task_names)}

    async def _op_snapshot_shard(self, request: dict[str, Any],
                                 ) -> dict[str, Any]:
        """Serialise one shard's full state (optionally after draining)."""
        shard_id = int(request["shard"])
        worker = self._shard(shard_id)
        if bool(request.get("drain", False)):
            await worker.drain()
        snapshot = worker.service.snapshot()
        return {"ok": True, "shard": shard_id, "snapshot": snapshot,
                "counters": worker.stats(),
                "fingerprint": state_fingerprint(snapshot)}

    async def _op_drop_shard(self, request: dict[str, Any]) -> dict[str, Any]:
        shard_id = int(request["shard"])
        self._shard(shard_id)  # raise unknown-shard before popping
        await self._uninstall(shard_id, drain=bool(request.get("drain",
                                                               False)))
        return {"ok": True, "shard": shard_id}

    async def _op_drain(self, request: dict[str, Any]) -> dict[str, Any]:
        shard = request.get("shard")
        workers = ([self._shard(int(shard))] if shard is not None
                   else list(self.shards.values()))
        for worker in workers:
            await worker.drain()
        return {"ok": True, "drained": [w.shard_id for w in workers]}

    # ------------------------------------------------------------------
    # Ops — data path

    def _op_offer(self, request: dict[str, Any]) -> dict[str, Any]:
        """Apply pre-routed sub-batches: ``{"b": [[shard, updates], ...]}``.

        The router already validated shapes and routed by task id; this
        side only enqueues. Sub-batches for shards this worker no longer
        hosts (a migration raced the forward) are *rejected*, not shed —
        the router counts them and the client sees them in ``rejected``.
        """
        accepted = shed = rejected = 0
        for shard_id, updates in request.get("b", ()):
            worker = self.shards.get(shard_id)
            if worker is None:
                rejected += len(updates)
                continue
            if worker.try_enqueue(updates):
                accepted += len(updates)
            else:
                shed += len(updates)
        return {"ok": True, "accepted": accepted, "shed": shed,
                "rejected": rejected}

    def _op_intern(self, request: dict[str, Any]) -> dict[str, Any]:
        """Extend the host's gid table: ``{"tasks": [[gid, name], ...]}``.

        The coordinator assigns gids densely and syncs lazily before the
        first columnar forward that references them, so this is called
        rarely (new tasks only) and may re-intern existing entries.
        """
        entries = request.get("tasks")
        if not isinstance(entries, list):
            return _error("w_intern needs a 'tasks' list")
        for entry in entries:
            if (not isinstance(entry, (list, tuple)) or len(entry) != 2
                    or isinstance(entry[0], bool)
                    or not isinstance(entry[0], int)
                    or not isinstance(entry[1], str)):
                return _error("each intern entry must be [gid, name]")
            gid = entry[0]
            if not 0 <= gid < _MAX_GID:
                return _error(f"gid {gid} out of range [0, {_MAX_GID})")
        for gid, name in entries:
            if gid >= len(self.gid_names):
                self.gid_names.extend(
                    [None] * (gid + 1 - len(self.gid_names)))
            self.gid_names[gid] = name
        # New names may resolve to rows the caches marked unknown.
        self._gid_rows.clear()
        return {"ok": True, "interned": len(entries),
                "table_size": len(self.gid_names)}

    def _rows_for(self, shard_id: int, worker: ShardWorker,
                  gids: np.ndarray) -> np.ndarray:
        """Resolve gids to SoA engine rows through the per-shard cache."""
        cache = self._gid_rows.get(shard_id)
        table = len(self.gid_names)
        if cache is None or len(cache) < table:
            fresh = np.full(table, -2, dtype=np.int64)
            if cache is not None:
                fresh[:len(cache)] = cache
            cache = self._gid_rows[shard_id] = fresh
        in_range = gids[(gids >= 0) & (gids < table)]
        for gid in np.unique(in_range[cache[in_range] == -2]).tolist():
            name = self.gid_names[gid]
            row = -1
            if name is not None:
                try:
                    row = worker.service.soa_row_for(name)
                except ConfigurationError:
                    row = -1
            cache[gid] = row
        rows = np.full(len(gids), -1, dtype=np.int64)
        mask = (gids >= 0) & (gids < table)
        rows[mask] = cache[gids[mask]]
        return rows

    def handle_shard_offer(
            self, segments: Sequence[tuple[int, Any]]) -> tuple[int, int, int]:
        """Enqueue pre-routed binary segments; returns (accepted, shed,
        rejected).

        Mirrors :meth:`_op_offer` for ``(shard, columns)`` segments from a
        decoded ``ShardOffer`` frame (or passed directly by the in-proc
        transport): unknown shards reject, full queues shed, everything
        else lands as one :class:`ColumnBatch` with gid-resolved engine
        rows and a lazy name view for the fallback path.
        """
        accepted = shed = rejected = 0
        for shard_id, cols in segments:
            worker = self.shards.get(int(shard_id))
            if worker is None:
                rejected += len(cols)
                continue
            gids = cols.task_idx.astype(np.int64)
            batch = ColumnBatch(
                rows=self._rows_for(int(shard_id), worker, gids),
                steps=cols.steps, values=cols.values,
                names=_GidNames(self.gid_names, gids))
            if worker.try_enqueue_columns(batch):
                accepted += len(cols)
            else:
                shed += len(cols)
        return accepted, shed, rejected

    # ------------------------------------------------------------------
    # Ops — task control / reads

    def _op_register_task(self, request: dict[str, Any]) -> dict[str, Any]:
        entry = request.get("task")
        if not isinstance(entry, dict):
            return _error("w_register_task needs a 'task' dict")
        worker = self._shard(int(request.get("shard", -1)))
        spec = register_task_from_config(
            worker.service, dict(entry),
            dict(request.get("defaults") or {}),
            on_alert=self._alert_hook(worker), config=self.adaptation)
        # The new task's name may already be cached as row -1.
        self._gid_rows.pop(worker.shard_id, None)
        return {"ok": True, "task": spec.name, "shard": worker.shard_id,
                "type": worker.service.task_type(spec.name)}

    def _op_remove_task(self, request: dict[str, Any]) -> dict[str, Any]:
        worker = self._shard(int(request.get("shard", -1)))
        name = str(request.get("task", ""))
        worker.service.remove_task(name)
        self._gid_rows.pop(worker.shard_id, None)
        return {"ok": True, "task": name}

    def _op_add_trigger(self, request: dict[str, Any]) -> dict[str, Any]:
        worker = self._shard(int(request.get("shard", -1)))
        worker.service.add_trigger(
            str(request.get("target", "")), str(request.get("trigger", "")),
            elevation_level=float(request.get("elevation_level", 0.0)),
            suspend_interval=int(request.get("suspend_interval", 10)))
        # Trigger involvement evicts both tasks' SoA rows.
        self._gid_rows.pop(worker.shard_id, None)
        return {"ok": True}

    def _op_trigger_install(self, request: dict[str, Any]) -> dict[str, Any]:
        """Install whichever halves of a trigger plan live on one shard."""
        worker = self._shard(int(request.get("shard", -1)))
        entry = request.get("plan")
        if not isinstance(entry, dict):
            return _error("w_trigger_install needs a 'plan' dict")
        worker.service.install_trigger_plan(TriggerPlan.from_dict(entry))
        # Channel involvement evicts the affected tasks' SoA rows.
        self._gid_rows.pop(worker.shard_id, None)
        return {"ok": True, "shard": worker.shard_id}

    def _op_trigger_set(self, request: dict[str, Any]) -> dict[str, Any]:
        """Flip a guarded task's armed flag (a routed channel edge)."""
        worker = self._shard(int(request.get("shard", -1)))
        name = str(request.get("task", ""))
        armed = bool(request.get("armed", True))
        was = worker.service.set_trigger_armed(name, armed)
        return {"ok": True, "task": name, "armed": armed, "was_armed": was}

    def _op_trigger_state(self, request: dict[str, Any]) -> dict[str, Any]:
        worker = self._shard(int(request.get("shard", -1)))
        name = str(request.get("task", ""))
        return {"ok": True, "task": name,
                "state": worker.service.trigger_status(name)}

    def _op_trigger_events(self, request: dict[str, Any]) -> dict[str, Any]:
        """Pop buffered watch edges from every hosted shard.

        Destructive by design: the coordinator is the only consumer, so
        a cursor would buy nothing — and edges buffered on a worker that
        dies before the next pump are lost along with its queues (the
        guarded targets simply stay at their last armed state, which the
        re-placement snapshot preserves).
        """
        events: list[dict[str, Any]] = []
        for sid in sorted(self.shards):
            for event in self.shards[sid].service.drain_trigger_events():
                event["shard"] = sid
                events.append(event)
        return {"ok": True, "worker_id": self.worker_id, "events": events}

    def _op_due(self, request: dict[str, Any]) -> dict[str, Any]:
        # Service accessors, not raw TaskState fields: engine-managed
        # tasks keep their live schedule in the SoA columns.
        worker = self._shard(int(request.get("shard", -1)))
        name = str(request.get("task", ""))
        step = int(request.get("step", 0))
        next_due = worker.service.next_due(name)
        return {"ok": True, "due": step >= next_due,
                "next_due": next_due, "shard": worker.shard_id}

    def _op_task_info(self, request: dict[str, Any]) -> dict[str, Any]:
        worker, state = self._find_task(request)
        service = worker.service
        name = str(request.get("task", ""))
        return {
            "ok": True,
            "task": name,
            "shard": worker.shard_id,
            "samples_taken": service.samples_taken(name),
            "alerts": len(state.alerts),
            "interval": service.interval(name),
            "next_due": service.next_due(name),
            "observations": service.observations(name),
            "type": service.task_type(name),
            "estimate": service.task_estimate(name),
        }

    def _op_alerts(self, request: dict[str, Any]) -> dict[str, Any]:
        _worker, state = self._find_task(request)
        return {"ok": True, "task": str(request.get("task", "")),
                "alerts": [[a.time_index, a.value, a.threshold]
                           for a in state.alerts]}

    def _op_stats(self, request: dict[str, Any]) -> dict[str, Any]:
        return {"ok": True, "worker_id": self.worker_id,
                "shards": [self.shards[sid].stats()
                           for sid in sorted(self.shards)]}

    def _op_telemetry(self, request: dict[str, Any]) -> dict[str, Any]:
        """Raw-sketch metrics snapshot for the coordinator-side merge."""
        return {"ok": True, "worker_id": self.worker_id,
                "metrics": self.registry.snapshot(raw=True)}

    def _op_trace(self, request: dict[str, Any]) -> dict[str, Any]:
        since = int(request.get("since", 0))
        return {"ok": True,
                "events": self.trace.drain(since=since),
                "next_seq": self.trace.next_seq,
                "dropped": self.trace.dropped}

    _OPS = {
        "w_ping": _op_ping,
        "w_add_shard": _op_add_shard,
        "w_restore_shard": _op_restore_shard,
        "w_snapshot_shard": _op_snapshot_shard,
        "w_drop_shard": _op_drop_shard,
        "w_drain": _op_drain,
        "w_offer": _op_offer,
        "w_intern": _op_intern,
        "w_register_task": _op_register_task,
        "w_remove_task": _op_remove_task,
        "w_add_trigger": _op_add_trigger,
        "w_trigger_install": _op_trigger_install,
        "w_trigger_set": _op_trigger_set,
        "w_trigger_state": _op_trigger_state,
        "w_trigger_events": _op_trigger_events,
        "w_due": _op_due,
        "w_task_info": _op_task_info,
        "w_alerts": _op_alerts,
        "w_stats": _op_stats,
        "w_telemetry": _op_telemetry,
        "w_trace": _op_trace,
    }
