"""Pure task→shard routing shared by the runtime server and the cluster.

One function, no state: :func:`route` maps a task id to a shard index
with CRC32 (not ``hash()``, which is salted per process by
``PYTHONHASHSEED``). Every layer that needs to know where a task lives —
the single-process :class:`~repro.runtime.server.RuntimeServer`, the
cluster routing tier, clients doing client-side partitioning — calls
this one function, so a task's shard is the same everywhere, across
restarts, and across independent processes.

The assignment is pinned by a golden test
(``tests/cluster/test_routing.py``): shard placement is persistent state
(checkpoints store a ``task_shard`` map, the cluster placement table
keys on shard ids), so an accidental change to this function would strand
every existing checkpoint. Treat the golden file as a compatibility
contract, not a regression snapshot.
"""

from __future__ import annotations

import zlib

__all__ = ["route"]


def route(task_id: str, n_shards: int) -> int:
    """Stable shard index in ``[0, n_shards)`` for a task id.

    Args:
        task_id: the task's name (any unicode string).
        n_shards: total number of shards (>= 1).
    """
    return zlib.crc32(task_id.encode("utf-8")) % n_shards
