"""The cluster routing tier: the client-facing front end.

:class:`ClusterServer` speaks the exact op surface of the single-process
:class:`~repro.runtime.server.RuntimeServer` — same op names, same reply
shapes, same validation and backpressure contract — so every existing
client (:mod:`repro.runtime.client`, the load generator, the scenario
replayer) points at a cluster without changes. Two cluster-only ops are
added: ``migrate`` (move a shard between workers live) and ``placement``
(the live placement table, with worker pids for supervision).

Unlike ``RuntimeServer.handle_request`` (synchronous by design, because
all its state is local), dispatch here is async: every data/control op
awaits worker round-trips through the
:class:`~repro.cluster.coordinator.Coordinator`. Per-connection ordering
is preserved — one frame is fully handled before the next is read — but
connections interleave at await points; all cross-connection coordination
(buffering, cutover, settled waits) lives in the coordinator.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import time
from typing import Any

import numpy as np

from repro.config import ClusterConfig
from repro.core.adaptation import AdaptationConfig
from repro.exceptions import (ConfigurationError, ProtocolError, ReproError)
from repro.runtime.protocol import (PROTOCOL_BINARY, PROTOCOL_JSON,
                                    PROTOCOL_VERSION, OfferColumns,
                                    encode_frame_parts, encode_offer_reply,
                                    read_frame)
from repro.telemetry.exposition import (CONTENT_TYPE_PROMETHEUS,
                                        TelemetryHTTPServer,
                                        render_prometheus)

from repro.cluster.coordinator import Coordinator

__all__ = ["ClusterServer"]

logger = logging.getLogger(__name__)

_MAX_INTERN = 1 << 20
"""Cap on interned task indexes per connection (same as the runtime)."""


def _error(message: str, code: str = "bad-request") -> dict[str, Any]:
    return {"ok": False, "error": message, "code": code}


class _ConnState:
    """Per-connection negotiation + intern state at the routing tier.

    ``shard`` caches each interned name's routing hash (stable for the
    cluster's lifetime); ``gid`` caches its cluster-global task id, which
    is only valid while the task is registered — ``epoch`` tracks the
    coordinator's task-table version so gid resolution refreshes lazily
    after any register/remove instead of per offer.
    """

    __slots__ = ("protocol", "names", "shard", "gid", "epoch")

    def __init__(self) -> None:
        self.protocol = PROTOCOL_JSON
        self.names: list[str | None] = []
        self.shard = np.empty(0, dtype=np.int64)
        self.gid = np.empty(0, dtype=np.int64)
        self.epoch = -1


class ClusterServer:
    """Routing tier bound to one :class:`Coordinator`."""

    def __init__(self, config: ClusterConfig,
                 adaptation: AdaptationConfig | None = None):
        self.config = config
        self.coordinator = Coordinator(config, adaptation=adaptation)
        self.registry = self.coordinator.registry
        self.trace = self.coordinator.trace
        self._servers: list[asyncio.AbstractServer] = []
        self._connections: set[asyncio.Task] = set()
        self._http: TelemetryHTTPServer | None = None
        self._tcp_port: int | None = None
        self._frames = 0
        self._shutdown_started = False
        self._done = asyncio.Event()
        self._started_monotonic = time.monotonic()
        self.registry.counter(
            "volley_frames_total", "Request frames handled by the router",
            fn=lambda: float(self._frames))
        self._offer_batch_size = self.registry.histogram(
            "volley_offer_batch_size", "Updates per offer_batch frame")
        self._offer_latency = self.registry.histogram(
            "volley_offer_latency_seconds",
            "Router-side offer_batch handling latency")

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> None:
        """Start workers and placement, then bind the listen sockets."""
        await self.coordinator.start()
        cfg = self.config
        server = await asyncio.start_server(
            self._on_connection, host=cfg.host, port=cfg.port)
        self._tcp_port = server.sockets[0].getsockname()[1]
        self._servers.append(server)
        if cfg.http_port is not None:
            self._http = TelemetryHTTPServer(
                self._http_routes(), host=cfg.host, port=cfg.http_port)
            await self._http.start()

    @property
    def tcp_port(self) -> int | None:
        """The bound TCP port (resolves ``port=0`` to the actual port)."""
        return self._tcp_port

    @property
    def http_port(self) -> int | None:
        return self._http.port if self._http is not None else None

    async def apply_config(self, config: dict[str, Any]) -> None:
        """Register defaults, tasks and triggers from a config dict."""
        self.coordinator.defaults = dict(config.get("defaults", {}))
        for entry in config.get("tasks", []):
            reply = await self.coordinator.register_task(dict(entry))
            if not reply.get("ok"):
                raise ConfigurationError(str(reply.get("error")))
        for trigger in config.get("triggers", []):
            reply = await self.coordinator.add_trigger(dict(trigger))
            if not reply.get("ok"):
                raise ConfigurationError(str(reply.get("error")))
        for entry in config.get("trigger_plans", []):
            # A checkpoint-restored plan wins over the config copy, so a
            # deliberately disarmed guard is not re-armed on restart.
            target = str(dict(entry).get("target", ""))
            if target in self.coordinator.trigger_plans:
                continue
            reply = await self.coordinator.install_trigger(
                {"plan": dict(entry)})
            if not reply.get("ok"):
                raise ConfigurationError(str(reply.get("error")))

    async def drain(self) -> None:
        """Wait until every live worker has applied its queued batches."""
        await self.coordinator.drain()

    async def shutdown(self) -> None:
        """Stop accepting, close connections, shut the cluster down."""
        if self._shutdown_started:
            await self._done.wait()
            return
        self._shutdown_started = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        for conn in list(self._connections):
            conn.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._http is not None:
            await self._http.stop()
        await self.coordinator.shutdown()
        self._done.set()

    async def serve_forever(self) -> None:
        """Run until :meth:`shutdown` (or SIGTERM/SIGINT) completes."""
        loop = asyncio.get_running_loop()

        def _request_shutdown() -> None:
            loop.create_task(self.shutdown())

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, _request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await self._done.wait()

    # ------------------------------------------------------------------
    # HTTP telemetry (serves the heartbeat-refreshed fleet cache: the
    # route handlers are synchronous, so they must not await workers)

    def _http_routes(self) -> dict[str, Any]:
        def metrics(params: dict[str, str]) -> tuple[int, str, str]:
            snapshot = (self.coordinator.fleet_snapshot
                        or self.registry.snapshot())
            return 200, CONTENT_TYPE_PROMETHEUS, render_prometheus(snapshot)

        def healthz(params: dict[str, str]) -> tuple[int, str, str]:
            placement = self.coordinator.placement()
            up = sum(1 for w in placement["workers"].values() if w["alive"])
            healthy = not self._shutdown_started and up > 0
            body = json.dumps({
                "ok": healthy,
                "workers": len(placement["workers"]),
                "workers_up": up,
                "shards": self.coordinator.n_shards,
                "tasks": len(self.coordinator.task_shard),
                "uptime_s": time.monotonic() - self._started_monotonic,
            })
            return (200 if healthy else 503), "application/json", body

        def trace_route(params: dict[str, str]) -> tuple[int, str, str]:
            try:
                since = int(params.get("since", "0"))
            except ValueError:
                return 400, "text/plain; charset=utf-8", "bad since\n"
            return (200, "application/x-ndjson",
                    self.trace.to_jsonl(since=since))

        return {"/metrics": metrics, "/healthz": healthz,
                "/trace": trace_route}

    # ------------------------------------------------------------------
    # Wire handling

    @property
    def max_protocol(self) -> int:
        """Highest protocol version this router offers clients."""
        return min(self.config.protocol, PROTOCOL_VERSION)

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        conn = _ConnState()
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    writer.writelines(encode_frame_parts(
                        _error(str(exc), code="protocol")))
                    await writer.drain()
                    break
                if request is None:
                    break
                self._frames += 1
                if isinstance(request, OfferColumns):
                    if conn.protocol < PROTOCOL_BINARY:
                        writer.writelines(encode_frame_parts(_error(
                            "binary frames require a negotiated protocol "
                            ">= 2 (send a 'hello' op first)",
                            code="protocol")))
                        await writer.drain()
                        break
                    writer.writelines(await self._offer_columns(conn,
                                                                request))
                    await writer.drain()
                    continue
                if not isinstance(request, dict):
                    writer.writelines(encode_frame_parts(_error(
                        "unexpected binary frame kind", code="protocol")))
                    await writer.drain()
                    break
                op = request.get("op")
                if op == "hello":
                    reply = self._op_hello(conn, request)
                elif op == "intern":
                    reply = self._op_intern(conn, request)
                else:
                    reply = await self.handle_request(request)
                writer.writelines(encode_frame_parts(reply))
                await writer.drain()
        except (asyncio.CancelledError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    # Connection-scoped ops (negotiation + interning)

    def _op_hello(self, conn: _ConnState,
                  request: dict[str, Any]) -> dict[str, Any]:
        try:
            peer_max = int(request.get("max_protocol", PROTOCOL_JSON))
        except (TypeError, ValueError):
            return _error("hello max_protocol must be an integer")
        conn.protocol = max(PROTOCOL_JSON, min(peer_max, self.max_protocol))
        return {"ok": True, "protocol": conn.protocol,
                "server_protocol": self.max_protocol,
                "max_batch": self.config.max_batch}

    def _op_intern(self, conn: _ConnState,
                   request: dict[str, Any]) -> dict[str, Any]:
        entries = request.get("tasks")
        if not isinstance(entries, list):
            return _error("intern needs a 'tasks' list")
        for entry in entries:
            if (not isinstance(entry, (list, tuple)) or len(entry) != 2
                    or isinstance(entry[0], bool)
                    or not isinstance(entry[0], int)
                    or not isinstance(entry[1], str)):
                return _error("each intern entry must be [index, name]")
            if not 0 <= entry[0] < _MAX_INTERN:
                return _error(
                    f"intern index {entry[0]} out of range "
                    f"[0, {_MAX_INTERN})")
        for idx, name in entries:
            if idx >= len(conn.names):
                conn.names.extend([None] * (idx + 1 - len(conn.names)))
            conn.names[idx] = name
        self._refresh_conn(conn, force=True)
        return {"ok": True, "interned": len(entries),
                "table_size": len(conn.names)}

    def _refresh_conn(self, conn: _ConnState, force: bool = False) -> None:
        """(Re)resolve interned names to routing shards and gids."""
        coord = self.coordinator
        if not force and conn.epoch == coord.task_epoch:
            return
        n = len(conn.names)
        shard = np.full(n, -1, dtype=np.int64)
        gid = np.full(n, -1, dtype=np.int64)
        task_shard = coord.task_shard
        gids = coord.gids
        for i, name in enumerate(conn.names):
            if name is None:
                continue
            sid = task_shard.get(name)
            if sid is None:
                continue
            shard[i] = sid
            gid[i] = gids.get(name, -1)
        conn.shard = shard
        conn.gid = gid
        conn.epoch = coord.task_epoch

    async def _offer_columns(self, conn: _ConnState,
                             cols: OfferColumns) -> tuple[bytes, bytes]:
        """Route one decoded binary batch; returns the reply frame parts."""
        instrumented = self.registry.enabled
        began = time.perf_counter() if instrumented else 0.0
        if len(cols) > self.config.max_batch:
            return encode_frame_parts(_error(
                f"batch of {len(cols)} exceeds max_batch="
                f"{self.config.max_batch}", code="batch-too-large"))
        self._refresh_conn(conn)
        idx = cols.task_idx.astype(np.int64)
        known = idx < len(conn.names)
        rejected = int(len(idx) - known.sum())
        idx = idx[known]
        steps = cols.steps[known]
        values = cols.values[known]
        gids = conn.gid[idx]
        shards = conn.shard[idx]
        registered = gids >= 0
        rejected += int(len(gids) - registered.sum())
        gids, shards = gids[registered], shards[registered]
        steps, values = steps[registered], values[registered]
        per_shard: dict[int, tuple[Any, Any, Any]] = {}
        for sid in np.unique(shards).tolist():
            sel = np.flatnonzero(shards == sid)
            per_shard[int(sid)] = (gids[sel], steps[sel], values[sel])
        accepted, shed, worker_rejected = \
            await self.coordinator.submit_columns(per_shard)
        rejected += worker_rejected
        if shed:
            self.trace.emit("shed", count=shed, batch=len(cols),
                            accepted=accepted)
        if instrumented:
            self._offer_batch_size.observe(len(cols))
            self._offer_latency.observe(time.perf_counter() - began)
        return encode_offer_reply(
            accepted, shed, rejected, backpressure=shed > 0,
            retry_after_ms=self.config.shed_retry_ms if shed else 0)

    async def handle_request(self, request: dict[str, Any],
                             ) -> dict[str, Any]:
        """Dispatch one decoded request frame to its op handler."""
        op = request.get("op")
        handler = self._OPS.get(op) if isinstance(op, str) else None
        if handler is None:
            return _error(f"unknown op {op!r}", code="unknown-op")
        try:
            return await handler(self, request)
        except ReproError as exc:
            return _error(str(exc))
        except (ValueError, TypeError, KeyError) as exc:
            return _error(f"invalid request: {exc}")

    # ------------------------------------------------------------------
    # Ops — runtime-compatible surface

    async def _op_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        return {"ok": True, "shards": self.coordinator.n_shards,
                "tasks": len(self.coordinator.task_shard),
                "workers": len(self.coordinator.transports),
                "protocol": self.max_protocol}

    async def _op_register_task(self, request: dict[str, Any],
                                ) -> dict[str, Any]:
        entry = request.get("task")
        if not isinstance(entry, dict):
            return _error("register_task needs a 'task' dict")
        return await self.coordinator.register_task(entry)

    async def _op_remove_task(self, request: dict[str, Any],
                              ) -> dict[str, Any]:
        return await self.coordinator.remove_task(
            str(request.get("task", "")))

    async def _op_add_trigger(self, request: dict[str, Any],
                              ) -> dict[str, Any]:
        return await self.coordinator.add_trigger(request)

    async def _op_trigger_install(self, request: dict[str, Any],
                                  ) -> dict[str, Any]:
        return await self.coordinator.install_trigger(request)

    async def _op_trigger_arm(self, request: dict[str, Any],
                              ) -> dict[str, Any]:
        return await self.coordinator.set_trigger_armed(
            str(request.get("task", "")), True)

    async def _op_trigger_disarm(self, request: dict[str, Any],
                                 ) -> dict[str, Any]:
        return await self.coordinator.set_trigger_armed(
            str(request.get("task", "")), False)

    async def _op_trigger_state(self, request: dict[str, Any],
                                ) -> dict[str, Any]:
        return await self.coordinator.forward_task_read(
            "w_trigger_state", str(request.get("task", "")))

    async def _op_trigger_plans(self, request: dict[str, Any],
                                ) -> dict[str, Any]:
        coord = self.coordinator
        await coord.pump_triggers()
        suspensions, saved = await coord.trigger_plan_stats()
        return {"ok": True,
                "plans": [coord.trigger_plans[t].to_dict()
                          for t in sorted(coord.trigger_plans)],
                "edges": dict(coord.trigger_edges),
                "suspensions": suspensions,
                "probe_cost_saved": saved}

    async def _op_offer_batch(self, request: dict[str, Any],
                              ) -> dict[str, Any]:
        instrumented = self.registry.enabled
        began = time.perf_counter() if instrumented else 0.0
        updates = request.get("updates")
        if not isinstance(updates, list):
            return _error("offer_batch needs an 'updates' list")
        if len(updates) > self.config.max_batch:
            return _error(
                f"batch of {len(updates)} exceeds max_batch="
                f"{self.config.max_batch}", code="batch-too-large")
        per_shard: dict[int, list[Any]] = {}
        rejected = 0
        task_shard = self.coordinator.task_shard
        for update in updates:
            if (not isinstance(update, (list, tuple)) or len(update) != 3):
                return _error("each update must be [task, step, value]")
            step, value = update[1], update[2]
            if (not isinstance(step, (int, float))
                    or not isinstance(value, (int, float))
                    or isinstance(step, bool) or isinstance(value, bool)):
                return _error(
                    f"update step and value must be numbers, got "
                    f"[{update[0]!r}, {step!r}, {value!r}]",
                    code="bad-update")
            shard = task_shard.get(str(update[0]))
            if shard is None:
                rejected += 1
                continue
            per_shard.setdefault(shard, []).append(update)
        accepted, shed, worker_rejected = await self.coordinator.submit(
            per_shard)
        rejected += worker_rejected
        reply: dict[str, Any] = {"ok": True, "accepted": accepted,
                                 "shed": shed, "rejected": rejected}
        if shed:
            reply["backpressure"] = True
            reply["retry_after_ms"] = self.config.shed_retry_ms
            self.trace.emit("shed", count=shed,
                            batch=len(updates), accepted=accepted)
        if instrumented:
            self._offer_batch_size.observe(len(updates))
            self._offer_latency.observe(time.perf_counter() - began)
        return reply

    async def _op_due(self, request: dict[str, Any]) -> dict[str, Any]:
        return await self.coordinator.forward_task_read(
            "w_due", str(request.get("task", "")),
            {"step": int(request.get("step", 0))})

    async def _op_task_info(self, request: dict[str, Any],
                            ) -> dict[str, Any]:
        return await self.coordinator.forward_task_read(
            "w_task_info", str(request.get("task", "")))

    async def _op_alerts(self, request: dict[str, Any]) -> dict[str, Any]:
        return await self.coordinator.forward_task_read(
            "w_alerts", str(request.get("task", "")))

    async def _op_stats(self, request: dict[str, Any]) -> dict[str, Any]:
        coord = self.coordinator
        shards: list[dict[str, Any]] = []
        for wid in sorted(coord.transports):
            if wid in coord._dead:
                continue
            try:
                reply = await coord._request(wid, {"op": "w_stats"})
            except ReproError:
                continue
            if reply.get("ok"):
                shards.extend(reply.get("shards", ()))
        shards.sort(key=lambda s: s.get("shard", 0))
        totals = {short: sum(s[canonical] for s in shards)
                  for short, canonical in
                  (("offered", "updates_offered"),
                   ("applied", "updates_applied"),
                   ("consumed", "updates_consumed"),
                   ("shed", "updates_shed"),
                   ("rejected", "updates_rejected"),
                   ("alerts", "alerts_fired"),
                   ("queue_depth", "queue_depth"))}
        # Shed at the routing tier (unreachable worker, migration-buffer
        # overflow) never reached a shard queue; fold it into the total
        # so offered/applied/shed accounting stays conservation-true.
        totals["shed"] += coord.router_shed
        totals["tasks"] = len(coord.task_shard)
        reply = {"ok": True, "shards": shards, "totals": totals,
                 "frames": self._frames, "protocol": self.max_protocol,
                 "uptime_s": time.monotonic() - self._started_monotonic,
                 "restored_tasks": coord.restored_tasks,
                 "cluster": {
                     "workers": len(coord.transports),
                     "workers_up": sum(
                         1 for wid in coord.transports
                         if wid not in coord._dead),
                     "router_shed": coord.router_shed,
                     "migrations": coord.migrations,
                     "replacements": coord.replacements,
                 }}
        if self.config.checkpoint_path is not None:
            last = coord._last_checkpoint_monotonic
            reply["checkpoint"] = {
                "failures": coord.checkpoint_failures,
                "last_age_s": (None if last is None
                               else time.monotonic() - last),
            }
        return reply

    async def _op_checkpoint(self, request: dict[str, Any],
                             ) -> dict[str, Any]:
        if self.config.checkpoint_path is None:
            return _error("no checkpoint_path configured")
        path = await self.coordinator.write_checkpoint()
        return {"ok": True, "path": str(path)}

    async def _op_telemetry(self, request: dict[str, Any],
                            ) -> dict[str, Any]:
        metrics = await self.coordinator.refresh_fleet()
        return {"ok": True, "metrics": metrics,
                "trace": {"next_seq": self.trace.next_seq,
                          "dropped": self.trace.dropped,
                          "retained": len(self.trace)}}

    async def _op_trace(self, request: dict[str, Any]) -> dict[str, Any]:
        await self.coordinator.pull_traces()
        since = int(request.get("since", 0))
        raw_limit = request.get("limit")
        limit = None if raw_limit is None else int(raw_limit)
        return {"ok": True,
                "events": self.trace.drain(since=since, limit=limit),
                "next_seq": self.trace.next_seq,
                "dropped": self.trace.dropped}

    # ------------------------------------------------------------------
    # Ops — cluster-only

    async def _op_migrate(self, request: dict[str, Any]) -> dict[str, Any]:
        return await self.coordinator.migrate(
            int(request.get("shard", -1)),
            str(request.get("worker", "")))

    async def _op_placement(self, request: dict[str, Any],
                            ) -> dict[str, Any]:
        return {"ok": True, **self.coordinator.placement()}

    _OPS = {
        "ping": _op_ping,
        "register_task": _op_register_task,
        "remove_task": _op_remove_task,
        "add_trigger": _op_add_trigger,
        "trigger_install": _op_trigger_install,
        "trigger_arm": _op_trigger_arm,
        "trigger_disarm": _op_trigger_disarm,
        "trigger_state": _op_trigger_state,
        "trigger_plans": _op_trigger_plans,
        "offer_batch": _op_offer_batch,
        "due": _op_due,
        "task_info": _op_task_info,
        "alerts": _op_alerts,
        "stats": _op_stats,
        "checkpoint": _op_checkpoint,
        "telemetry": _op_telemetry,
        "trace": _op_trace,
        "migrate": _op_migrate,
        "placement": _op_placement,
    }
