"""Shard-transport interface: how the routing tier reaches a shard.

The coordinator speaks to every worker through one small interface —
``start() / request(payload) / close() / alive`` — so where a shard
actually lives is a deployment decision, not an architectural one:

* :class:`InProcTransport` — the worker host runs inside the router
  process and ``request`` is a direct method call on decoded dicts
  (zero-copy; the single-process runtime's behaviour, useful for tests
  and as the degenerate one-worker cluster);
* :class:`SubprocessTransport` — one ``python -m repro.cluster.worker``
  process per worker, reached over a unix-domain socket (the production
  local backend: one event loop per core);
* :class:`TCPTransport` — an externally managed worker on a TCP
  endpoint (remote peers).

All wire transports frame requests with the runtime's length-prefixed
JSON protocol (:mod:`repro.runtime.protocol`) and hold a small connection
pool so offer forwarding and control ops never serialise behind each
other. Failures surface as :class:`~repro.exceptions.ClusterError`; the
coordinator turns data-path failures into shed counts and lets the
heartbeat loop confirm worker death.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import sys
from typing import Any, Protocol

from repro.exceptions import ClusterError, ProtocolError
from repro.runtime.protocol import (OfferColumns, OfferReply,
                                    encode_frame_parts, encode_shard_offer,
                                    read_frame)

from repro.cluster.hosting import WorkerHost

__all__ = ["InProcTransport", "ShardTransport", "SubprocessTransport",
           "TCPTransport"]

READY_TIMEOUT = 15.0
"""Seconds to wait for a spawned worker's ready file."""


class ShardTransport(Protocol):
    """What the coordinator needs from any worker backend."""

    worker_id: str

    async def start(self) -> None:
        """Bring the backend up (spawn/connect); idempotent."""

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request/one reply; raises ClusterError when unreachable."""

    async def request_columns(self, segments: list[Any],
                              ) -> tuple[int, int, int]:
        """Forward pre-routed ``(shard, task_idx, steps, values)``
        segments on the binary path; returns (accepted, shed, rejected)."""

    async def close(self) -> None:
        """Graceful teardown (drains hosted shards where applicable)."""

    @property
    def alive(self) -> bool:
        """Whether the backend is believed reachable."""


class InProcTransport:
    """Zero-copy transport to a :class:`WorkerHost` in this process."""

    def __init__(self, worker_id: str, host: WorkerHost):
        self.worker_id = worker_id
        self.host = host
        self._alive = False

    async def start(self) -> None:
        self.host.start()
        self._alive = True

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        if not self._alive:
            raise ClusterError(f"worker {self.worker_id} is down")
        return await self.host.handle(payload)

    async def request_columns(self, segments: list[Any],
                              ) -> tuple[int, int, int]:
        """Columnar fan-out without any wire encode: arrays pass through."""
        if not self._alive:
            raise ClusterError(f"worker {self.worker_id} is down")
        return self.host.handle_shard_offer(
            [(sid, OfferColumns(idx, steps, values))
             for sid, idx, steps, values in segments])

    async def close(self) -> None:
        if self._alive:
            self._alive = False
            await self.host.close(drain=True)

    async def kill(self) -> None:
        """Simulated crash: abandon queued batches, stop serving."""
        if self._alive:
            self._alive = False
            await self.host.close(drain=False)

    @property
    def alive(self) -> bool:
        return self._alive


class _PooledSocketTransport:
    """Connection-pooled framing over a stream endpoint (unix or TCP)."""

    def __init__(self, worker_id: str, connections: int = 2):
        self.worker_id = worker_id
        self._slots: asyncio.Queue[tuple[Any, Any] | None] = asyncio.Queue()
        for _ in range(max(1, connections)):
            self._slots.put_nowait(None)
        self._closed = False

    async def _open(self) -> tuple[asyncio.StreamReader,
                                   asyncio.StreamWriter]:
        raise NotImplementedError

    async def _roundtrip(self, parts: tuple[bytes, bytes],
                         what: str) -> Any:
        """One framed request/reply over a pooled connection."""
        conn = await self._slots.get()
        try:
            if conn is None:
                conn = await self._open()
            reader, writer = conn
            writer.writelines(parts)
            await writer.drain()
            reply = await read_frame(reader)
        except (OSError, ProtocolError, asyncio.IncompleteReadError) as exc:
            # Broken connection: hand the slot back empty so the next
            # request reopens it (the worker may just have restarted a
            # socket; actual death is the heartbeat's call).
            if conn is not None:
                conn[1].close()
            self._slots.put_nowait(None)
            raise ClusterError(
                f"worker {self.worker_id} unreachable during "
                f"{what}: {exc}") from None
        self._slots.put_nowait(conn)
        if reply is None:
            raise ClusterError(
                f"worker {self.worker_id} closed the connection during "
                f"{what}")
        return reply

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        if not self.alive:
            raise ClusterError(f"worker {self.worker_id} is down")
        reply = await self._roundtrip(encode_frame_parts(payload),
                                      repr(payload.get("op")))
        if not isinstance(reply, dict):
            raise ClusterError(
                f"worker {self.worker_id} sent a binary reply to "
                f"{payload.get('op')!r}")
        return reply

    async def request_columns(self, segments: list[Any],
                              ) -> tuple[int, int, int]:
        """Forward ``(shard, task_idx, steps, values)`` segments as one
        binary SHARD_OFFER frame; returns (accepted, shed, rejected)."""
        if not self.alive:
            raise ClusterError(f"worker {self.worker_id} is down")
        reply = await self._roundtrip(encode_shard_offer(segments),
                                      "shard_offer")
        if isinstance(reply, OfferReply):
            return reply.accepted, reply.shed, reply.rejected
        raise ClusterError(
            f"worker {self.worker_id} rejected a shard_offer frame: "
            f"{reply.get('error') if isinstance(reply, dict) else reply}")

    async def _close_pool(self) -> None:
        self._closed = True
        while not self._slots.empty():
            conn = self._slots.get_nowait()
            if conn is not None:
                conn[1].close()
                try:
                    await conn[1].wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass

    @property
    def alive(self) -> bool:
        return not self._closed


class TCPTransport(_PooledSocketTransport):
    """Transport to an externally started worker on ``host:port``."""

    def __init__(self, worker_id: str, host: str, port: int,
                 connections: int = 2):
        super().__init__(worker_id, connections)
        self.host = host
        self.port = port

    async def start(self) -> None:
        # Externally managed process; verify reachability with one ping.
        reply = await self.request({"op": "w_ping"})
        if not reply.get("ok"):
            raise ClusterError(
                f"worker {self.worker_id} at {self.host}:{self.port} "
                f"rejected ping: {reply}")

    async def _open(self) -> tuple[asyncio.StreamReader,
                                   asyncio.StreamWriter]:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            import socket as _socket
            sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
        return reader, writer

    async def close(self) -> None:
        await self._close_pool()


class SubprocessTransport(_PooledSocketTransport):
    """Spawns and owns one worker process over a unix-domain socket.

    The worker is ``python -m repro.cluster.worker`` with this package's
    source tree prepended to ``PYTHONPATH``, so the cluster works from a
    source checkout without installation. Readiness is signalled through
    a JSON ready file (the same handshake ``python -m repro.runtime``
    uses in CI).
    """

    def __init__(self, worker_id: str, runtime_dir: pathlib.Path,
                 queue_depth: int = 1024, connections: int = 2,
                 trace_capacity: int = 4096):
        super().__init__(worker_id, connections)
        self.runtime_dir = pathlib.Path(runtime_dir)
        self.queue_depth = queue_depth
        self.trace_capacity = trace_capacity
        self.socket_path = self.runtime_dir / f"{worker_id}.sock"
        self.ready_path = self.runtime_dir / f"{worker_id}.ready.json"
        self.proc: asyncio.subprocess.Process | None = None

    @property
    def pid(self) -> int | None:
        """The worker process id (None before start)."""
        return self.proc.pid if self.proc is not None else None

    async def start(self) -> None:
        if self.proc is not None:
            return
        self.runtime_dir.mkdir(parents=True, exist_ok=True)
        for stale in (self.socket_path, self.ready_path):
            if stale.exists():
                stale.unlink()
        import repro
        src_dir = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_dir if not existing
                             else src_dir + os.pathsep + existing)
        self.proc = await asyncio.create_subprocess_exec(
            sys.executable, "-m", "repro.cluster.worker",
            "--worker-id", self.worker_id,
            "--unix", str(self.socket_path),
            "--queue-depth", str(self.queue_depth),
            "--trace-capacity", str(self.trace_capacity),
            "--ready-file", str(self.ready_path),
            env=env)
        deadline = asyncio.get_running_loop().time() + READY_TIMEOUT
        while not self.ready_path.exists():
            if self.proc.returncode is not None:
                raise ClusterError(
                    f"worker {self.worker_id} exited with code "
                    f"{self.proc.returncode} before becoming ready")
            if asyncio.get_running_loop().time() > deadline:
                self.proc.kill()
                raise ClusterError(
                    f"worker {self.worker_id} not ready after "
                    f"{READY_TIMEOUT}s")
            await asyncio.sleep(0.02)
        ready = json.loads(self.ready_path.read_text(encoding="utf-8"))
        if ready.get("pid") != self.proc.pid:  # pragma: no cover
            raise ClusterError(
                f"worker {self.worker_id} ready file pid {ready.get('pid')} "
                f"does not match spawned pid {self.proc.pid}")

    async def _open(self) -> tuple[asyncio.StreamReader,
                                   asyncio.StreamWriter]:
        return await asyncio.open_unix_connection(str(self.socket_path))

    @property
    def alive(self) -> bool:
        return (not self._closed and self.proc is not None
                and self.proc.returncode is None)

    async def kill(self) -> None:
        """SIGKILL the worker (chaos testing / CI re-placement check)."""
        if self.proc is not None and self.proc.returncode is None:
            self.proc.kill()
            await self.proc.wait()

    async def close(self) -> None:
        if self.proc is not None and self.proc.returncode is None:
            try:
                await asyncio.wait_for(
                    self.request({"op": "w_shutdown"}), timeout=5.0)
            except (ClusterError, asyncio.TimeoutError):
                self.proc.terminate()
            try:
                await asyncio.wait_for(self.proc.wait(), timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover
                self.proc.kill()
                await self.proc.wait()
        await self._close_pool()
        for path in (self.socket_path, self.ready_path):
            if path.exists():
                path.unlink()
