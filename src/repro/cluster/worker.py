"""Cluster worker process: ``python -m repro.cluster.worker``.

One event loop hosting a :class:`~repro.cluster.hosting.WorkerHost`
behind the runtime's length-prefixed JSON framing, listening on a
unix-domain socket (the ``subprocess`` backend) and/or a TCP port (the
``tcp`` backend for remote peers). The coordinator is the only intended
client, but the protocol is the same one ``repro.runtime`` speaks, so a
worker is debuggable with the ordinary tooling.

Lifecycle: the worker writes a ``{pid, unix, port}`` ready file once
listening, then serves until it receives ``w_shutdown`` (graceful: every
hosted shard drains its queue first) or SIGTERM. SIGKILL is the chaos
path — queued batches die with the process and the coordinator recovers
the shards from the last cluster checkpoint, exactly the at-most-once
contract the single-process runtime documents.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import os
import pathlib
import signal
import sys
from typing import Any

from repro.cluster.hosting import WorkerHost
from repro.exceptions import ProtocolError, ReproError
from repro.runtime.protocol import (ShardOffer, encode_frame_parts,
                                    encode_offer_reply, read_frame)
from repro.telemetry.registry import instrument_samplers

__all__ = ["ClusterWorker", "main"]

logger = logging.getLogger(__name__)


class ClusterWorker:
    """The serving shell around one :class:`WorkerHost`."""

    def __init__(self, worker_id: str, queue_depth: int = 1024,
                 trace_capacity: int = 4096):
        self.host = WorkerHost(worker_id, queue_depth=queue_depth,
                               trace_capacity=trace_capacity)
        self._servers: list[asyncio.AbstractServer] = []
        self._shutdown = asyncio.Event()
        self._tcp_port: int | None = None

    @property
    def tcp_port(self) -> int | None:
        return self._tcp_port

    async def start(self, unix_socket: pathlib.Path | None,
                    host: str, port: int | None) -> None:
        instrument_samplers(self.host.registry)
        self.host.start()
        if unix_socket is not None:
            unix_socket.parent.mkdir(parents=True, exist_ok=True)
            if unix_socket.exists():
                unix_socket.unlink()
            self._servers.append(await asyncio.start_unix_server(
                self._on_connection, path=str(unix_socket)))
        if port is not None:
            server = await asyncio.start_server(
                self._on_connection, host=host, port=port)
            self._tcp_port = server.sockets[0].getsockname()[1]
            self._servers.append(server)

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    writer.writelines(encode_frame_parts(
                        {"ok": False, "error": str(exc), "code": "protocol"}))
                    await writer.drain()
                    break
                if request is None:
                    break
                if isinstance(request, ShardOffer):
                    # Pre-routed columnar fan-out from the coordinator.
                    # No negotiation dance worker-side: the coordinator
                    # only sends binary to workers it spawned/configured.
                    a, s, r = self.host.handle_shard_offer(request.segments)
                    writer.writelines(encode_offer_reply(
                        a, s, r, backpressure=s > 0, retry_after_ms=0))
                    await writer.drain()
                    continue
                if not isinstance(request, dict):
                    writer.writelines(encode_frame_parts(
                        {"ok": False, "error": "unexpected binary frame "
                         "kind", "code": "protocol"}))
                    await writer.drain()
                    break
                if request.get("op") == "w_shutdown":
                    # ACK first, then begin teardown: the coordinator's
                    # close() wants a reply before waiting on the process.
                    writer.writelines(encode_frame_parts(
                        {"ok": True, "shutdown": True}))
                    await writer.drain()
                    self._shutdown.set()
                    continue
                reply = await self.host.handle(request)
                writer.writelines(encode_frame_parts(reply))
                await writer.drain()
        except (asyncio.CancelledError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def run_until_shutdown(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._shutdown.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await self._shutdown.wait()
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        await self.host.close(drain=True)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="One cluster worker process hosting monitoring shards "
                    "for a repro.cluster coordinator.")
    parser.add_argument("--worker-id", required=True)
    parser.add_argument("--unix", type=pathlib.Path, default=None,
                        help="unix-domain socket to listen on")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="TCP port to listen on (0 = ephemeral)")
    parser.add_argument("--queue-depth", type=int, default=1024)
    parser.add_argument("--trace-capacity", type=int, default=4096)
    parser.add_argument("--ready-file", type=pathlib.Path, default=None,
                        help="write {pid, unix, port} JSON once listening")
    return parser


async def _run(args: argparse.Namespace) -> None:
    if args.unix is None and args.port is None:
        raise ReproError("worker needs --unix and/or --port to listen on")
    worker = ClusterWorker(args.worker_id, queue_depth=args.queue_depth,
                           trace_capacity=args.trace_capacity)
    await worker.start(args.unix, args.host, args.port)
    if args.ready_file is not None:
        ready: dict[str, Any] = {
            "pid": os.getpid(),
            "worker_id": args.worker_id,
            "unix": str(args.unix) if args.unix is not None else None,
            "port": worker.tcp_port,
        }
        tmp = args.ready_file.with_name(args.ready_file.name + ".tmp")
        tmp.write_text(json.dumps(ready), encoding="utf-8")
        os.replace(tmp, args.ready_file)
    await worker.run_until_shutdown()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.cluster.worker``)."""
    args = _build_parser().parse_args(argv)
    try:
        asyncio.run(_run(args))
    except ReproError as exc:
        print(f"[cluster-worker] error: {exc}", file=sys.stderr, flush=True)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
