"""Declarative task configuration for the monitoring service.

Deployments describe their monitoring tasks in config files, not code.
:func:`service_from_config` builds a fully wired
:class:`~repro.service.MonitoringService` from a plain dict (load it from
JSON/YAML/TOML with whatever the deployment uses)::

    {
      "defaults": {"error_allowance": 0.01, "max_interval": 10},
      "tasks": [
        {"name": "ddos", "threshold": 1000.0},
        {"name": "response", "threshold": 120.0},
        {"name": "cpu-1min", "threshold": 85.0,
         "window": 12, "aggregate": "mean"},
        {"name": "free-mem", "threshold": 512.0, "direction": "lower"}
      ],
      "triggers": [
        {"target": "ddos", "trigger": "response",
         "elevation_level": 60.0, "suspend_interval": 10}
      ]
    }

Unknown keys are rejected loudly — a typo in a monitoring config should
fail deployment, not silently monitor the wrong thing.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.adaptation import AdaptationConfig
from repro.core.substrates import (DEFAULT_ENTROPY_WINDOW,
                                   DEFAULT_SKETCH_WINDOW, TASK_TYPES)
from repro.core.task import TaskSpec
from repro.core.windowed import AggregateKind
from repro.exceptions import ConfigurationError
from repro.service import MonitoringService
from repro.telemetry.histogram import DEFAULT_RELATIVE_ERROR
from repro.types import ThresholdDirection

__all__ = ["ClusterConfig", "ExecutionConfig", "RuntimeConfig",
           "register_task_from_config", "service_from_config",
           "task_from_config"]


@dataclass(frozen=True, slots=True)
class ExecutionConfig:
    """Deployment-level execution knobs for the sweep harness.

    Attributes:
        workers: process-pool size for parameter sweeps; ``None`` means
            auto (``os.cpu_count()``).
        cache_dir: sweep result cache root; ``None`` means the default
            (XDG cache directory).
    """

    workers: int | None = None
    cache_dir: pathlib.Path | None = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}")

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None,
                 ) -> "ExecutionConfig":
        """Read ``REPRO_WORKERS`` / ``REPRO_CACHE_DIR`` (fail closed).

        Args:
            environ: environment mapping (default ``os.environ``).
        """
        env = os.environ if environ is None else environ
        workers: int | None = None
        raw = env.get("REPRO_WORKERS")
        if raw is not None and raw != "":
            try:
                workers = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"bad REPRO_WORKERS {raw!r}; expected a positive "
                    f"integer") from None
        raw_dir = env.get("REPRO_CACHE_DIR")
        cache_dir = pathlib.Path(raw_dir) if raw_dir else None
        return cls(workers=workers, cache_dir=cache_dir)

_RUNTIME_KEYS = {"shards", "queue_depth", "max_batch", "host", "port",
                 "unix_socket", "checkpoint_path", "checkpoint_interval",
                 "shed_retry_ms", "http_port", "trace_capacity",
                 "selfmon_interval", "protocol"}


@dataclass(frozen=True, slots=True)
class RuntimeConfig:
    """Deployment knobs for the live-ingestion runtime (``repro.runtime``).

    Attributes:
        shards: number of independent shard workers; tasks are routed to
            shards by a stable hash of the task name.
        queue_depth: bounded per-shard ingest queue, in batches. A full
            queue triggers backpressure: further batches for that shard are
            shed with an explicit reply, never queued unboundedly.
        max_batch: maximum updates accepted per ``offer_batch`` frame.
        host / port: TCP listen address (``port=0`` picks a free port).
        unix_socket: optional unix-domain socket path to (also) listen on.
        checkpoint_path: where periodic + shutdown snapshots are written;
            ``None`` disables checkpointing.
        checkpoint_interval: seconds between periodic checkpoints.
        shed_retry_ms: retry hint (milliseconds) returned to clients whose
            batches were shed under backpressure.
        http_port: telemetry HTTP endpoint (``/metrics`` + ``/healthz`` +
            ``/trace``); ``None`` (the default) disables it, ``0`` picks a
            free port. Binds on ``host``.
        trace_capacity: decision-trace ring buffer size in events.
        selfmon_interval: seconds between self-monitoring polls (the
            runtime's own gauges monitored as Volley tasks); ``None``
            (the default) disables self-monitoring.
        protocol: highest wire protocol version the server negotiates
            (``1`` = JSON only, ``2`` = JSON + binary offer frames; see
            :mod:`repro.runtime.protocol`). Lowering it to ``1`` pins a
            deployment to the pure-JSON wire format.
    """

    shards: int = 4
    queue_depth: int = 1024
    max_batch: int = 8192
    host: str = "127.0.0.1"
    port: int = 0
    unix_socket: pathlib.Path | None = None
    checkpoint_path: pathlib.Path | None = None
    checkpoint_interval: float = 30.0
    shed_retry_ms: int = 50
    http_port: int | None = None
    trace_capacity: int = 4096
    selfmon_interval: float | None = None
    protocol: int = 2

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {self.max_batch}")
        if self.checkpoint_interval <= 0:
            raise ConfigurationError(
                f"checkpoint_interval must be > 0, got "
                f"{self.checkpoint_interval}")
        if self.shed_retry_ms < 0:
            raise ConfigurationError(
                f"shed_retry_ms must be >= 0, got {self.shed_retry_ms}")
        if self.trace_capacity < 1:
            raise ConfigurationError(
                f"trace_capacity must be >= 1, got {self.trace_capacity}")
        if self.selfmon_interval is not None and self.selfmon_interval <= 0:
            raise ConfigurationError(
                f"selfmon_interval must be > 0, got {self.selfmon_interval}")
        if self.protocol not in (1, 2):
            raise ConfigurationError(
                f"protocol must be 1 (JSON) or 2 (binary), got "
                f"{self.protocol}")

    @classmethod
    def from_dict(cls, entry: Mapping[str, Any]) -> "RuntimeConfig":
        """Build from a config file's ``runtime`` section (fail closed)."""
        if not isinstance(entry, Mapping):
            raise ConfigurationError(
                f"runtime section must be a dict, got {entry!r}")
        _reject_unknown(dict(entry), _RUNTIME_KEYS, "runtime section")
        kwargs: dict[str, Any] = {}
        for key in ("shards", "queue_depth", "max_batch", "port",
                    "shed_retry_ms", "trace_capacity", "protocol"):
            if key in entry:
                kwargs[key] = int(entry[key])
        if "host" in entry:
            kwargs["host"] = str(entry["host"])
        if "checkpoint_interval" in entry:
            kwargs["checkpoint_interval"] = float(entry["checkpoint_interval"])
        if "http_port" in entry and entry["http_port"] is not None:
            kwargs["http_port"] = int(entry["http_port"])
        if "selfmon_interval" in entry and entry["selfmon_interval"] \
                is not None:
            kwargs["selfmon_interval"] = float(entry["selfmon_interval"])
        for key in ("unix_socket", "checkpoint_path"):
            if key in entry and entry[key] is not None:
                kwargs[key] = pathlib.Path(str(entry[key]))
        return cls(**kwargs)


_CLUSTER_KEYS = {"workers", "shards", "backend", "worker_endpoints",
                 "host", "port", "http_port", "queue_depth", "max_batch",
                 "buffer_depth", "heartbeat_interval", "heartbeat_misses",
                 "heartbeat_timeout", "connections_per_worker",
                 "checkpoint_path", "checkpoint_interval", "shed_retry_ms",
                 "trace_capacity", "runtime_dir", "protocol"}

_CLUSTER_BACKENDS = ("inproc", "subprocess", "tcp")


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Deployment knobs for the multi-process cluster (``repro.cluster``).

    Attributes:
        workers: worker processes (or in-proc hosts) the coordinator
            places shards on. For the ``tcp`` backend this is derived
            from ``worker_endpoints`` and must not disagree with it.
        shards: global shard count; defaults to ``max(4, 2 * workers)``
            so re-placement and migration always have somewhere to go.
            Placement starts round-robin (shard ``i`` on worker
            ``i % workers``) and then evolves through migrations.
        backend: ``inproc`` (hosts in the router process, zero-copy),
            ``subprocess`` (one process per worker over a unix socket),
            or ``tcp`` (externally started workers at
            ``worker_endpoints``).
        worker_endpoints: ``host:port`` strings for the ``tcp`` backend.
        host / port: the routing tier's TCP listen address
            (``port=0`` picks a free port).
        http_port: fleet telemetry HTTP endpoint (merged ``/metrics``,
            ``/healthz``, ``/trace``); ``None`` disables, ``0`` picks a
            free port.
        queue_depth: per-shard ingest queue depth on each worker.
        max_batch: maximum updates accepted per ``offer_batch`` frame at
            the router.
        buffer_depth: updates buffered per shard while it migrates;
            overflow is shed with the usual backpressure reply.
        heartbeat_interval: seconds between coordinator heartbeats.
        heartbeat_misses: consecutive missed heartbeats before a worker
            is declared dead and its shards re-placed.
        heartbeat_timeout: per-heartbeat reply timeout in seconds.
        connections_per_worker: transport connection-pool size; more than
            one keeps offers flowing while control ops are in flight.
        checkpoint_path: cluster checkpoint file (placement table + every
            shard snapshot, v2 CRC format); ``None`` disables.
        checkpoint_interval: seconds between periodic cluster checkpoints.
        shed_retry_ms: retry hint returned to clients on shed batches.
        trace_capacity: coordinator decision-trace ring size.
        runtime_dir: directory for worker unix sockets and ready files
            (``subprocess`` backend); ``None`` uses a fresh temp dir.
        protocol: highest wire protocol version the routing tier offers
            clients (1 = JSON only, 2 = negotiated binary columnar
            framing); the same framing rides the worker transports.
    """

    workers: int = 2
    shards: int | None = None
    backend: str = "subprocess"
    worker_endpoints: tuple[str, ...] = ()
    host: str = "127.0.0.1"
    port: int = 0
    http_port: int | None = None
    queue_depth: int = 1024
    max_batch: int = 8192
    buffer_depth: int = 65536
    heartbeat_interval: float = 0.5
    heartbeat_misses: int = 3
    heartbeat_timeout: float = 2.0
    connections_per_worker: int = 2
    checkpoint_path: pathlib.Path | None = None
    checkpoint_interval: float = 30.0
    shed_retry_ms: int = 50
    trace_capacity: int = 4096
    runtime_dir: pathlib.Path | None = None
    protocol: int = 2

    def __post_init__(self) -> None:
        if self.protocol not in (1, 2):
            raise ConfigurationError(
                f"protocol must be 1 (JSON) or 2 (binary), "
                f"got {self.protocol!r}")
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}")
        if self.backend not in _CLUSTER_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {list(_CLUSTER_BACKENDS)}, "
                f"got {self.backend!r}")
        if self.backend == "tcp":
            if not self.worker_endpoints:
                raise ConfigurationError(
                    "tcp backend needs worker_endpoints")
            if len(self.worker_endpoints) != self.workers:
                raise ConfigurationError(
                    f"{self.workers} workers but "
                    f"{len(self.worker_endpoints)} worker_endpoints")
        elif self.worker_endpoints:
            raise ConfigurationError(
                f"worker_endpoints only apply to the tcp backend, "
                f"not {self.backend!r}")
        if self.shards is not None and self.shards < self.workers:
            raise ConfigurationError(
                f"shards ({self.shards}) must be >= workers "
                f"({self.workers}); a worker with no shard serves nothing")
        for attr in ("queue_depth", "max_batch", "buffer_depth",
                     "heartbeat_misses", "connections_per_worker",
                     "trace_capacity"):
            if getattr(self, attr) < 1:
                raise ConfigurationError(
                    f"{attr} must be >= 1, got {getattr(self, attr)}")
        for attr in ("heartbeat_interval", "heartbeat_timeout",
                     "checkpoint_interval"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(
                    f"{attr} must be > 0, got {getattr(self, attr)}")
        if self.shed_retry_ms < 0:
            raise ConfigurationError(
                f"shed_retry_ms must be >= 0, got {self.shed_retry_ms}")

    @property
    def n_shards(self) -> int:
        """The resolved global shard count."""
        return self.shards if self.shards is not None \
            else max(4, 2 * self.workers)

    @classmethod
    def from_dict(cls, entry: Mapping[str, Any]) -> "ClusterConfig":
        """Build from a config file's ``cluster`` section (fail closed)."""
        if not isinstance(entry, Mapping):
            raise ConfigurationError(
                f"cluster section must be a dict, got {entry!r}")
        _reject_unknown(dict(entry), _CLUSTER_KEYS, "cluster section")
        kwargs: dict[str, Any] = {}
        for key in ("workers", "shards", "port", "queue_depth", "max_batch",
                    "buffer_depth", "heartbeat_misses",
                    "connections_per_worker", "shed_retry_ms",
                    "trace_capacity", "protocol"):
            if key in entry and entry[key] is not None:
                kwargs[key] = int(entry[key])
        for key in ("heartbeat_interval", "heartbeat_timeout",
                    "checkpoint_interval"):
            if key in entry:
                kwargs[key] = float(entry[key])
        for key in ("backend", "host"):
            if key in entry:
                kwargs[key] = str(entry[key])
        if "worker_endpoints" in entry:
            kwargs["worker_endpoints"] = tuple(
                str(e) for e in entry["worker_endpoints"])
        if "http_port" in entry and entry["http_port"] is not None:
            kwargs["http_port"] = int(entry["http_port"])
        for key in ("checkpoint_path", "runtime_dir"):
            if key in entry and entry[key] is not None:
                kwargs[key] = pathlib.Path(str(entry[key]))
        return cls(**kwargs)


_TASK_KEYS = {"name", "threshold", "error_allowance", "default_interval",
              "max_interval", "direction", "window", "aggregate",
              "type", "quantile", "sketch_window", "relative_error",
              "entropy_window", "bin_width"}
_QUANTILE_KEYS = {"quantile", "sketch_window", "relative_error"}
_ENTROPY_KEYS = {"entropy_window", "bin_width"}
_TRIGGER_KEYS = {"target", "trigger", "elevation_level",
                 "suspend_interval"}
_TOP_KEYS = {"defaults", "tasks", "triggers"}
_DEFAULT_KEYS = {"error_allowance", "default_interval", "max_interval",
                 "direction"}


def _reject_unknown(entry: dict[str, Any], allowed: set[str],
                    where: str) -> None:
    unknown = set(entry) - allowed
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {sorted(unknown)} in {where}; "
            f"allowed: {sorted(allowed)}")


def _direction(raw: str) -> ThresholdDirection:
    try:
        return ThresholdDirection(raw)
    except ValueError:
        raise ConfigurationError(
            f"direction must be 'upper' or 'lower', got {raw!r}") from None


def _aggregate(raw: str) -> AggregateKind:
    try:
        return AggregateKind(raw)
    except ValueError:
        raise ConfigurationError(
            f"aggregate must be one of "
            f"{[k.value for k in AggregateKind]}, got {raw!r}") from None


def _task_kind(entry: dict[str, Any]) -> str:
    """Validate and return a task entry's ``type`` with its key usage."""
    where = f"task {entry.get('name', '?')!r}"
    kind = str(entry.get("type", "value"))
    if kind not in TASK_TYPES:
        raise ConfigurationError(
            f"unknown task type {kind!r} in {where} "
            f"(expected one of {TASK_TYPES})")
    misplaced: set[str] = set()
    if kind != "quantile":
        misplaced |= _QUANTILE_KEYS & set(entry)
    if kind != "entropy":
        misplaced |= _ENTROPY_KEYS & set(entry)
    if misplaced:
        raise ConfigurationError(
            f"key(s) {sorted(misplaced)} in {where} do not apply to "
            f"type {kind!r}")
    if kind == "quantile" and "quantile" not in entry:
        raise ConfigurationError(f"quantile task {where} needs 'quantile'")
    if kind != "value" and ({"window", "aggregate"} & set(entry)):
        raise ConfigurationError(
            f"window/aggregate in {where} apply to value tasks only; "
            f"{kind} tasks window via "
            f"{'sketch_window' if kind == 'quantile' else 'entropy_window'}")
    return kind


def task_from_config(entry: dict[str, Any],
                     defaults: dict[str, Any] | None = None) -> TaskSpec:
    """Build one :class:`TaskSpec` from a config entry.

    For ``type: quantile`` / ``type: entropy`` entries the returned spec
    carries the entry's *raw* threshold and is metadata (routing, trace
    annotations); the service derives the sampler-facing spec at
    registration — use :func:`register_task_from_config` to actually
    register any entry type.

    Args:
        entry: task dict; requires ``name`` and ``threshold``; other keys
            fall back to ``defaults`` then the TaskSpec defaults.
        defaults: the config's ``defaults`` section.
    """
    if not isinstance(entry, dict):
        raise ConfigurationError(f"task entry must be a dict, got {entry!r}")
    _reject_unknown(entry, _TASK_KEYS, f"task {entry.get('name', '?')!r}")
    _task_kind(entry)
    defaults = defaults or {}
    for key in ("name", "threshold"):
        if key not in entry:
            raise ConfigurationError(f"task entry missing {key!r}: {entry}")

    def pick(key: str, fallback: Any) -> Any:
        return entry.get(key, defaults.get(key, fallback))

    return TaskSpec(
        threshold=float(entry["threshold"]),
        error_allowance=float(pick("error_allowance", 0.01)),
        default_interval=float(pick("default_interval", 1.0)),
        max_interval=int(pick("max_interval", 10)),
        direction=_direction(str(pick("direction", "upper"))),
        name=str(entry["name"]),
    )


def register_task_from_config(service: MonitoringService,
                              entry: dict[str, Any],
                              defaults: dict[str, Any] | None = None,
                              *, on_alert: Any = None,
                              config: AdaptationConfig | None = None,
                              ) -> TaskSpec:
    """Parse one task config entry and register it on ``service``.

    The single dispatch point for all task types — the in-process
    service builder, the runtime server's ``register_task`` op and the
    cluster shard host all register through here, so a config entry
    means the same thing on every deployment surface. Returns the
    (raw-threshold) spec, whose name/threshold the callers use for
    routing and trace annotations.

    Entropy entries that specify no ``direction`` (neither inline nor in
    ``defaults``) register as drop-below tasks — the natural polarity of
    an entropy-collapse predicate.
    """
    spec = task_from_config(entry, defaults)
    kind = _task_kind(entry)
    if kind == "value":
        window = int(entry.get("window", 1))
        aggregate = _aggregate(str(entry.get("aggregate", "mean")))
        service.add_task(spec.name, spec, on_alert=on_alert,
                         window=window, window_kind=aggregate,
                         config=config)
        return spec
    if kind == "quantile":
        service.add_quantile_task(
            spec.name, threshold=spec.threshold,
            quantile=float(entry["quantile"]),
            error_allowance=spec.error_allowance,
            default_interval=spec.default_interval,
            max_interval=spec.max_interval,
            direction=spec.direction,
            sketch_window=int(entry.get("sketch_window",
                                        DEFAULT_SKETCH_WINDOW)),
            relative_error=float(entry.get("relative_error",
                                           DEFAULT_RELATIVE_ERROR)),
            on_alert=on_alert, config=config)
        return spec
    direction = spec.direction
    if "direction" not in entry and "direction" not in (defaults or {}):
        direction = ThresholdDirection.LOWER
    service.add_entropy_task(
        spec.name, threshold=spec.threshold,
        error_allowance=spec.error_allowance,
        default_interval=spec.default_interval,
        max_interval=spec.max_interval,
        direction=direction,
        entropy_window=int(entry.get("entropy_window",
                                     DEFAULT_ENTROPY_WINDOW)),
        bin_width=float(entry.get("bin_width", 1.0)),
        on_alert=on_alert, config=config)
    return spec


def service_from_config(config: dict[str, Any],
                        adaptation: AdaptationConfig | None = None,
                        ) -> MonitoringService:
    """Build a wired :class:`MonitoringService` from a config dict.

    Raises :class:`~repro.exceptions.ConfigurationError` on any unknown
    key, missing field, duplicate task name, or dangling trigger
    reference — configs fail closed.
    """
    if not isinstance(config, dict):
        raise ConfigurationError(f"config must be a dict, got {config!r}")
    _reject_unknown(config, _TOP_KEYS, "config root")
    defaults = config.get("defaults", {})
    if not isinstance(defaults, dict):
        raise ConfigurationError("'defaults' must be a dict")
    _reject_unknown(defaults, _DEFAULT_KEYS, "defaults")
    tasks = config.get("tasks", [])
    if not tasks:
        raise ConfigurationError("config defines no tasks")

    service = MonitoringService(adaptation)
    for entry in tasks:
        register_task_from_config(service, entry, defaults)

    for trigger in config.get("triggers", []):
        if not isinstance(trigger, dict):
            raise ConfigurationError(
                f"trigger entry must be a dict, got {trigger!r}")
        _reject_unknown(trigger, _TRIGGER_KEYS, "trigger entry")
        for key in ("target", "trigger", "elevation_level"):
            if key not in trigger:
                raise ConfigurationError(
                    f"trigger entry missing {key!r}: {trigger}")
        service.add_trigger(
            str(trigger["target"]), str(trigger["trigger"]),
            float(trigger["elevation_level"]),
            suspend_interval=int(trigger.get("suspend_interval", 10)))
    return service
