"""Volley's core algorithms (paper SIII-SIV + multi-task correlation).

Everything in this package is pure computation over sampled values — no
simulation, workload, or I/O dependencies — so the same code drives both
the lightweight experiment runners and the discrete-event datacenter
testbed.
"""

from repro.core.accuracy import (RunAccuracy, alert_episodes,
                                 evaluate_sampling, truth_alert_indices)
from repro.core.adaptation import (AdaptationConfig, CoordinationStats,
                                   SamplingDecision,
                                   ViolationLikelihoodSampler)
from repro.core.coordination import (AdaptiveAllocation, AllocationPolicy,
                                     AllocationUpdate, EvenAllocation)
from repro.core.correlation import (CorrelationDetector, CorrelationEvidence,
                                    CorrelationPlanner, TaskProfile,
                                    TriggerRule, TriggeredSampler)
from repro.core.likelihood import (cantelli_upper_bound,
                                   gaussian_misdetection_estimate,
                                   gaussian_misdetection_estimate_fused,
                                   gaussian_step_violation_estimate,
                                   max_admissible_interval,
                                   misdetection_bound,
                                   misdetection_bound_fused,
                                   misdetection_bound_profile,
                                   step_violation_bound)
from repro.core.online_stats import OnlineStatistics, WindowedStatistics
from repro.core.sampler import SamplingScheme
from repro.core.soa import ColumnBatchResult, SoaSamplerEngine
from repro.core.substrates import (TASK_TYPES, EntropyEstimator,
                                   QuantileEstimator)
from repro.core.task import DistributedTaskSpec, TaskSpec
from repro.core.windowed import (AggregateKind, WindowedTaskSpec,
                                 aggregate_trace, run_windowed_adaptive)

__all__ = [
    "AdaptationConfig",
    "AggregateKind",
    "AdaptiveAllocation",
    "AllocationPolicy",
    "AllocationUpdate",
    "CoordinationStats",
    "CorrelationDetector",
    "CorrelationEvidence",
    "CorrelationPlanner",
    "DistributedTaskSpec",
    "EntropyEstimator",
    "EvenAllocation",
    "OnlineStatistics",
    "QuantileEstimator",
    "TASK_TYPES",
    "RunAccuracy",
    "SamplingDecision",
    "SamplingScheme",
    "ColumnBatchResult",
    "SoaSamplerEngine",
    "TaskProfile",
    "TaskSpec",
    "TriggerRule",
    "TriggeredSampler",
    "ViolationLikelihoodSampler",
    "WindowedStatistics",
    "WindowedTaskSpec",
    "aggregate_trace",
    "alert_episodes",
    "cantelli_upper_bound",
    "evaluate_sampling",
    "gaussian_misdetection_estimate",
    "gaussian_misdetection_estimate_fused",
    "gaussian_step_violation_estimate",
    "max_admissible_interval",
    "misdetection_bound",
    "misdetection_bound_fused",
    "misdetection_bound_profile",
    "run_windowed_adaptive",
    "step_violation_bound",
    "truth_alert_indices",
]
