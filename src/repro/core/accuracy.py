"""Accuracy accounting for sampling schemes (paper SIII-A, SV-B "Monitoring
Accuracy").

The paper evaluates a dynamic scheme against the ground truth defined by
periodic sampling at the default interval ``Id``: every grid point where the
monitored value violates the threshold is a *state alert* that periodic
sampling would raise. A dynamic scheme detects an alert only if it sampled
that grid point; the *mis-detection rate* is the fraction of alerts missed.

Besides the paper's point-level rate this module reports episode-level
statistics (consecutive violating points grouped into episodes) and
detection delay, which downstream users typically also care about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import TraceError
from repro.types import ThresholdDirection

__all__ = [
    "RunAccuracy",
    "truth_alert_indices",
    "alert_episodes",
    "evaluate_sampling",
]


@dataclass(frozen=True, slots=True)
class RunAccuracy:
    """Accuracy and cost summary of one sampling run over one trace.

    Attributes:
        total_steps: trace length in default-interval grid points.
        samples_taken: number of sampling operations performed.
        sampling_ratio: ``samples_taken / total_steps`` — the paper's cost
            metric (1.0 for periodic default sampling).
        truth_alerts: number of violating grid points (ground truth).
        detected_alerts: violating grid points that were sampled.
        misdetection_rate: ``1 - detected/truth`` (0.0 when there are no
            truth alerts).
        truth_episodes: number of maximal runs of consecutive violating
            points.
        detected_episodes: episodes with at least one sampled point.
        mean_detection_delay: mean grid distance from an episode's start to
            its first sampled violating point, over detected episodes (0.0
            when none).
    """

    total_steps: int
    samples_taken: int
    sampling_ratio: float
    truth_alerts: int
    detected_alerts: int
    misdetection_rate: float
    truth_episodes: int
    detected_episodes: int
    mean_detection_delay: float

    @property
    def cost_saving(self) -> float:
        """Fraction of sampling operations saved vs. periodic sampling."""
        return 1.0 - self.sampling_ratio


def truth_alert_indices(values: np.ndarray, threshold: float,
                        direction: ThresholdDirection = ThresholdDirection.UPPER,
                        ) -> np.ndarray:
    """Grid indices where the trace violates the threshold.

    Args:
        values: one value per default-interval grid point.
        threshold: the task threshold ``T``.
        direction: which side of ``T`` is a violation.

    Returns:
        Sorted array of violating indices.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise TraceError(f"expected a 1-d trace, got shape {arr.shape}")
    if arr.size == 0:
        raise TraceError("empty trace")
    if not np.isfinite(arr).all():
        raise TraceError("trace contains non-finite values")
    if direction is ThresholdDirection.UPPER:
        mask = arr > threshold
    else:
        mask = arr < threshold
    return np.flatnonzero(mask)


def alert_episodes(alert_indices: np.ndarray) -> list[tuple[int, int]]:
    """Group sorted alert indices into maximal consecutive episodes.

    Returns a list of ``(start, end)`` inclusive index pairs.
    """
    if len(alert_indices) == 0:
        return []
    episodes: list[tuple[int, int]] = []
    start = prev = int(alert_indices[0])
    for idx in alert_indices[1:]:
        idx = int(idx)
        if idx == prev + 1:
            prev = idx
            continue
        episodes.append((start, prev))
        start = prev = idx
    episodes.append((start, prev))
    return episodes


def evaluate_sampling(values: np.ndarray, threshold: float,
                      sampled_indices: np.ndarray | list[int],
                      direction: ThresholdDirection = ThresholdDirection.UPPER,
                      ) -> RunAccuracy:
    """Score a sampling schedule against the periodic-``Id`` ground truth.

    Args:
        values: the full-resolution trace (one value per grid point).
        threshold: the task threshold.
        sampled_indices: grid points at which the scheme sampled.
        direction: violation side.

    Returns:
        A :class:`RunAccuracy` summary.
    """
    arr = np.asarray(values, dtype=float)
    truth = truth_alert_indices(arr, threshold, direction)
    sampled = np.asarray(sampled_indices, dtype=int)
    # Schedules from the drivers arrive strictly increasing already; only
    # fall back to the sorting dedup for arbitrary caller input.
    if sampled.size > 1 and not np.all(sampled[1:] > sampled[:-1]):
        sampled = np.unique(sampled)
    if sampled.size and (sampled[0] < 0 or sampled[-1] >= arr.size):
        raise TraceError("sampled index out of trace bounds")

    # Detection: truth ∩ sampled. Both arrays are sorted and unique, so
    # binary-search probes of `sampled` at each truth point replace the
    # former Python-set membership scan (and np.isin's merge sort over
    # the concatenated arrays). A probe landing past the end clips to the
    # last element, which compares unequal by construction.
    if truth.size and sampled.size:
        pos = np.searchsorted(sampled, truth, side="left")
        detected = truth[
            sampled[np.minimum(pos, sampled.size - 1)] == truth]
    else:
        detected = truth[:0]

    # Episodes: maximal runs of consecutive truth indices, found from the
    # first-difference instead of a Python loop over alert_episodes().
    if truth.size:
        breaks = np.flatnonzero(np.diff(truth) > 1)
        starts = truth[np.concatenate(([0], breaks + 1))]
        ends = truth[np.concatenate((breaks, [truth.size - 1]))]
    else:
        starts = ends = truth
    n_episodes = int(starts.size)

    # Per-episode first detection: every index in [start, end] is a truth
    # point, so the episode's first sampled violating point is the first
    # element of `detected` at or past its start — one searchsorted over
    # all episodes instead of a per-episode range scan.
    if n_episodes and detected.size:
        pos = np.searchsorted(detected, starts, side="left")
        first = detected[np.minimum(pos, detected.size - 1)]
        hit = (pos < detected.size) & (first <= ends)
        delays = first[hit] - starts[hit]
        detected_eps = int(np.count_nonzero(hit))
        mean_delay = float(delays.mean()) if delays.size else 0.0
    else:
        detected_eps = 0
        mean_delay = 0.0

    n_truth = int(truth.size)
    n_detected = int(detected.size)
    misdetection = 0.0 if n_truth == 0 else 1.0 - n_detected / n_truth
    return RunAccuracy(
        total_steps=int(arr.size),
        samples_taken=int(sampled.size),
        sampling_ratio=float(sampled.size) / float(arr.size),
        truth_alerts=n_truth,
        detected_alerts=n_detected,
        misdetection_rate=misdetection,
        truth_episodes=n_episodes,
        detected_episodes=detected_eps,
        mean_detection_delay=mean_delay,
    )
