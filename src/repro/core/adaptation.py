"""Monitor-level violation-likelihood based sampling adaptation (paper SIII-B).

After every sampling operation the monitor:

1. updates the online statistics of the per-default-interval change
   ``delta`` using ``delta_hat = (v(t) - v(t - I)) / I``;
2. computes the mis-detection upper bound ``beta(I)`` for the current
   interval ``I`` (:func:`repro.core.likelihood.misdetection_bound`);
3. adapts the interval with an AIMD-like rule:

   * if ``beta(I) > err`` — switch back to the default interval
     immediately (multiplicative decrease), guarding against abrupt
     changes of the ``delta`` distribution;
   * if ``beta(I) <= (1 - gamma) * err`` for ``p`` consecutive samples —
     grow the interval by one default interval (additive increase), never
     exceeding ``Im``. The slack ratio ``gamma`` avoids growing when the
     bound sits exactly at the allowance.

The paper reports ``gamma = 0.2`` and ``p = 20`` as good practice; both are
defaults of :class:`AdaptationConfig`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.likelihood import (gaussian_misdetection_estimate,
                                   gaussian_misdetection_estimate_fused,
                                   misdetection_bound,
                                   misdetection_bound_fused)
from repro.core.online_stats import OnlineStatistics
from repro.core.task import TaskSpec
from repro.exceptions import ConfigurationError

_MIN_ERROR_NEEDED = 1e-12
"""Clamp for the geometric accumulation of e_i (beta can be exactly 0)."""


class _SamplerMetrics:
    """Process-wide fast-path counters (held by ``_SAMPLER_METRICS``).

    The live instance is installed by
    :func:`repro.telemetry.registry.instrument_samplers`; the module
    default is the null twin below, so un-instrumented runs pay one
    attribute check per :meth:`ViolationLikelihoodSampler.observe_fast`
    call (mirroring the chaos harness' ``NOOP_HOOK`` contract).

    The fields are plain ints incremented in place — the registry reads
    them through snapshot-time callbacks, so the hot path never pays for
    instrument-object method dispatch.
    """

    enabled = True
    __slots__ = ("observations", "grow_events", "reset_events",
                 "violations")

    def __init__(self) -> None:
        self.observations = 0
        self.grow_events = 0
        self.reset_events = 0
        self.violations = 0


class _NullSamplerMetrics:
    """Disabled twin: the ``enabled`` check is the entire cost."""

    enabled = False
    __slots__ = ()


_NULL_SAMPLER_METRICS = _NullSamplerMetrics()

_SAMPLER_METRICS: "_SamplerMetrics | _NullSamplerMetrics" = \
    _NULL_SAMPLER_METRICS
"""Swapped by ``repro.telemetry.registry.instrument_samplers``."""

__all__ = [
    "AdaptationConfig",
    "SamplingDecision",
    "CoordinationStats",
    "ViolationLikelihoodSampler",
]


@dataclass(frozen=True, slots=True)
class AdaptationConfig:
    """Tunables of the monitor-level adaptation algorithm.

    Attributes:
        slack_ratio: ``gamma`` — fraction of the error allowance kept as
            safety slack before growing the interval.
        patience: ``p`` — number of consecutive under-slack observations
            required before growing the interval.
        stats_restart: restart the delta statistics after this many
            updates (paper: 1000); ``None`` disables restarts.
        min_samples: observations of ``delta`` required before the bound is
            trusted; until then the sampler stays at the default interval.
        estimator: ``"chebyshev"`` (the paper's distribution-free bound)
            or ``"gaussian"`` (exact normal tail — tighter, but only an
            estimate; provided for the estimator ablation).
    """

    slack_ratio: float = 0.2
    patience: int = 20
    stats_restart: int | None = 1000
    min_samples: int = 10
    estimator: str = "chebyshev"

    def __post_init__(self) -> None:
        if not 0.0 <= self.slack_ratio < 1.0:
            raise ConfigurationError(
                f"slack_ratio must be in [0, 1), got {self.slack_ratio}")
        if self.patience < 1:
            raise ConfigurationError(
                f"patience must be >= 1, got {self.patience}")
        if self.min_samples < 2:
            raise ConfigurationError(
                f"min_samples must be >= 2, got {self.min_samples}")
        if self.estimator not in ("chebyshev", "gaussian"):
            raise ConfigurationError(
                "estimator must be 'chebyshev' or 'gaussian', got "
                f"{self.estimator!r}")


@dataclass(frozen=True, slots=True)
class SamplingDecision:
    """Outcome of one adaptation step.

    Attributes:
        next_interval: interval (in ``Id`` units) until the next sample.
        misdetection_bound: the ``beta(I)`` upper bound computed for the
            interval that was in force when the value arrived.
        grew: the interval was increased by this step.
        reset: the interval was reset to the default by this step.
        violation: the observed value itself violates the threshold.
    """

    next_interval: int
    misdetection_bound: float
    grew: bool = False
    reset: bool = False
    violation: bool = False


@dataclass(frozen=True, slots=True)
class CoordinationStats:
    """Updating-period averages a monitor reports to its coordinator.

    Attributes:
        avg_cost_reduction: average of ``r_i = 1/I_i - 1/(I_i + 1)`` — the
            marginal cost reduction available from growing the interval by
            one (zero while the monitor sits at the maximum interval).
        avg_error_needed: geometric mean of ``e_i = beta(I_i)/(1 - gamma)``
            — the typical error allowance that would let the monitor grow.
            Geometric, because instantaneous bounds span many orders of
            magnitude and an arithmetic mean is dominated by the rare
            near-1 spikes (DESIGN.md S4).
        observations: number of samples aggregated into the averages.
    """

    avg_cost_reduction: float
    avg_error_needed: float
    observations: int

    @property
    def yield_per_error(self) -> float:
        """Cost-reduction yield ``y_i = r_i / e_i`` (paper SIV-B).

        A degenerate ``e_i`` of zero means the monitor can grow essentially
        for free; returns infinity in that case.
        """
        if self.avg_error_needed <= 0.0:
            return float("inf")
        return self.avg_cost_reduction / self.avg_error_needed


class ViolationLikelihoodSampler:
    """Stateful per-monitor adaptive sampler.

    Drive it by calling :meth:`observe` with every sampled value (in grid
    units of the default interval); the returned decision carries the next
    sampling interval. The sampler starts at the default interval and is
    deliberately conservative: until ``min_samples`` observations of
    ``delta`` have been absorbed it reports ``beta = 1`` and stays at the
    default interval.

    The coordinator may change :attr:`error_allowance` at any time
    (distributed coordination reallocates allowance between monitors).

    Two equivalent drive surfaces exist (DESIGN.md S27): :meth:`observe`
    is the reference implementation (per-step likelihood kernels, a
    :class:`SamplingDecision` per call) and :meth:`observe_fast` is the
    allocation-light twin used by the fused experiment drivers and the
    runtime's hot ingest path. Both mutate the same state identically —
    the property-based equivalence suite and the core-hotpath CI job
    prove their decision streams bit-equal — so callers may use either
    (or mix them) freely.
    """

    __slots__ = ("_task", "_config", "_sign", "_threshold",
                 "_error_allowance", "_stats", "_estimate", "_estimate_fast",
                 "_interval", "_streak", "_last_value", "_last_time",
                 "_observations", "_grow_events", "_reset_events",
                 "_coord_sum_r", "_coord_sum_log_e", "_coord_n",
                 "_max_interval", "_patience", "_min_samples",
                 "_one_minus_slack", "_last_beta", "_last_flags")

    def __init__(self, task: TaskSpec,
                 config: AdaptationConfig | None = None,
                 stats: OnlineStatistics | None = None):
        self._task = task
        self._config = config or AdaptationConfig()
        self._sign, self._threshold = task.oriented()
        self._error_allowance = task.error_allowance
        self._stats = stats if stats is not None else OnlineStatistics(
            restart_after=self._config.stats_restart,
            min_fresh=self._config.min_samples,
        )
        chebyshev = self._config.estimator == "chebyshev"
        self._estimate = (misdetection_bound if chebyshev
                          else gaussian_misdetection_estimate)
        self._estimate_fast = (misdetection_bound_fused if chebyshev
                               else gaussian_misdetection_estimate_fused)
        self._interval = 1
        self._streak = 0
        self._last_value: float | None = None
        self._last_time: int | None = None
        # Counters for analysis and coordination reporting.
        self._observations = 0
        self._grow_events = 0
        self._reset_events = 0
        self._coord_sum_r = 0.0
        self._coord_sum_log_e = 0.0
        self._coord_n = 0
        # Hoisted invariants for the fast path (config and task are
        # immutable, so these can never drift from the reference reads).
        self._max_interval = task.max_interval
        self._patience = self._config.patience
        self._min_samples = self._config.min_samples
        self._one_minus_slack = 1.0 - self._config.slack_ratio
        # Outcome of the most recent observation (either drive surface).
        self._last_beta = 1.0
        self._last_flags = 0

    @property
    def task(self) -> TaskSpec:
        """The task specification this sampler enforces."""
        return self._task

    @property
    def config(self) -> AdaptationConfig:
        """The adaptation tunables in force."""
        return self._config

    @property
    def interval(self) -> int:
        """Current sampling interval in units of the default interval."""
        return self._interval

    @property
    def stats(self) -> OnlineStatistics:
        """The online statistics of ``delta`` (read-only use intended)."""
        return self._stats

    @property
    def error_allowance(self) -> float:
        """Local error allowance currently enforced."""
        return self._error_allowance

    @error_allowance.setter
    def error_allowance(self, err: float) -> None:
        if not 0.0 <= err <= 1.0:
            raise ConfigurationError(
                f"error allowance must be in [0, 1], got {err}")
        self._error_allowance = err

    @property
    def observations(self) -> int:
        """Total samples observed."""
        return self._observations

    @property
    def grow_events(self) -> int:
        """Number of interval increases performed."""
        return self._grow_events

    @property
    def reset_events(self) -> int:
        """Number of resets to the default interval performed."""
        return self._reset_events

    def resume_full_rate(self) -> None:
        """Drop back to the default interval without a new observation.

        The trigger channel calls this on a disarm->arm edge: a guard
        that slept at its suspend interval must resume probing at the
        full default rate, not at whatever interval the healthy stream
        had earned before the guard engaged — the arm edge itself is
        evidence the pre-suspension statistics are stale. Adaptation
        counters are untouched; this is an external scheduling decision,
        not an adaptation event, so both drive surfaces stay bit-equal.
        """
        self._interval = 1
        self._streak = 0

    def observe(self, value: float, time_index: int) -> SamplingDecision:
        """Absorb a sampled value and return the adaptation decision.

        Args:
            value: the monitored state value just sampled.
            time_index: grid position of the sample in units of the default
                interval; must be strictly increasing across calls.

        Returns:
            The :class:`SamplingDecision` whose ``next_interval`` tells the
            caller when to sample next.

        Raises:
            ValueError: if ``time_index`` does not advance.
        """
        v = self._sign * value
        violation = v > self._threshold
        self._observations += 1

        if self._last_time is not None:
            steps = time_index - self._last_time
            if steps <= 0:
                raise ValueError(
                    f"time_index must increase: {time_index} after "
                    f"{self._last_time}")
            # delta_hat = (v(t) - v(t - I)) / I  (paper SIII-B)
            self._stats.update((v - self._last_value) / steps)
        self._last_value = v
        self._last_time = time_index

        cfg = self._config
        err = self._error_allowance
        if self._stats.effective_count >= cfg.min_samples:
            beta = self._estimate(v, self._threshold, self._stats.mean,
                                  self._stats.std, self._interval)
        else:
            beta = 1.0

        grew = False
        reset = False
        if err <= 0.0:
            # A zero allowance degenerates to periodic default sampling.
            if self._interval != 1:
                self._interval = 1
                reset = True
            self._streak = 0
        elif beta > err:
            reset = self._interval != 1
            self._interval = 1
            self._streak = 0
            if reset:
                self._reset_events += 1
        elif beta <= (1.0 - cfg.slack_ratio) * err:
            self._streak += 1
            if self._streak >= cfg.patience:
                self._streak = 0
                if self._interval < self._task.max_interval:
                    self._interval += 1
                    grew = True
                    self._grow_events += 1
        else:
            self._streak = 0

        # Coordination statistics: updating-period averages of r_i and e_i.
        # r_i is the cost reduction available from growing the interval by
        # one (1/I - 1/(I+1), the marginal saving in samples per step);
        # a monitor already at the maximum interval cannot convert more
        # allowance into cost reduction, so its potential r_i is zero.
        # e_i = beta(I)/(1-gamma) is the allowance that would let it grow
        # (from the adaptation rule's growth condition); it is averaged
        # geometrically because instantaneous bounds span many orders of
        # magnitude and the *typical* requirement is what allowance buys.
        interval = self._interval
        if interval < self._task.max_interval:
            self._coord_sum_r += 1.0 / interval - 1.0 / (interval + 1.0)
        self._coord_sum_log_e += math.log(
            max(beta / (1.0 - cfg.slack_ratio), _MIN_ERROR_NEEDED))
        self._coord_n += 1

        self._last_beta = beta
        self._last_flags = ((1 if grew else 0) | (2 if reset else 0)
                            | (4 if violation else 0))
        return SamplingDecision(next_interval=self._interval,
                                misdetection_bound=beta,
                                grew=grew, reset=reset, violation=violation)

    def observe_fast(self, value: float, time_index: int) -> int:
        """Absorb a sampled value; return the next interval as a plain int.

        The allocation-light twin of :meth:`observe`: identical state
        transitions and identical raised errors, but no
        :class:`SamplingDecision` is constructed, the mis-detection bound
        is computed by the fused kernels
        (:func:`~repro.core.likelihood.misdetection_bound_fused` /
        :func:`~repro.core.likelihood.gaussian_misdetection_estimate_fused`,
        bit-equal to the reference), and the per-call invariants are read
        from hoisted slots. The full outcome of the step remains readable
        via :attr:`last_misdetection_bound`, :attr:`last_grew`,
        :attr:`last_reset` and :attr:`last_violation`.
        """
        v = self._sign * value
        flags = 4 if v > self._threshold else 0
        self._observations += 1

        last_time = self._last_time
        if last_time is not None:
            steps = time_index - last_time
            if steps <= 0:
                raise ValueError(
                    f"time_index must increase: {time_index} after "
                    f"{last_time}")
            # delta_hat = (v(t) - v(t - I)) / I  (paper SIII-B)
            self._stats.update((v - self._last_value) / steps)
        self._last_value = v
        self._last_time = time_index

        stats = self._stats
        err = self._error_allowance
        interval = self._interval
        if stats.effective_count >= self._min_samples:
            beta = self._estimate_fast(v, self._threshold, stats.mean,
                                       stats.std, interval)
        else:
            beta = 1.0

        if err <= 0.0:
            # A zero allowance degenerates to periodic default sampling.
            if interval != 1:
                self._interval = interval = 1
                flags |= 2
            self._streak = 0
        elif beta > err:
            if interval != 1:
                flags |= 2
                self._interval = interval = 1
                self._reset_events += 1
            self._streak = 0
        elif beta <= self._one_minus_slack * err:
            streak = self._streak + 1
            if streak >= self._patience:
                self._streak = 0
                if interval < self._max_interval:
                    self._interval = interval = interval + 1
                    flags |= 1
                    self._grow_events += 1
            else:
                self._streak = streak
        else:
            self._streak = 0

        # Coordination statistics — see observe() for the rationale.
        if interval < self._max_interval:
            self._coord_sum_r += 1.0 / interval - 1.0 / (interval + 1.0)
        self._coord_sum_log_e += math.log(
            max(beta / self._one_minus_slack, _MIN_ERROR_NEEDED))
        self._coord_n += 1

        self._last_beta = beta
        self._last_flags = flags

        metrics = _SAMPLER_METRICS
        if metrics.enabled:
            # Counters only — the fast path stays allocation-free and the
            # disabled case costs one global load plus one attribute check.
            metrics.observations += 1
            if flags:
                if flags & 1:
                    metrics.grow_events += 1
                if flags & 2:
                    metrics.reset_events += 1
                if flags & 4:
                    metrics.violations += 1
        return interval

    def run_trace(self, values: list[float], start: int = 0,
                  record_intervals: bool = True,
                  ) -> tuple[list[int], list[int]]:
        """Drive the sampler over a whole trace in one call (DESIGN.md S27).

        The batch twin of driving :meth:`observe_fast` step by step:
        samples grid index ``start``, advances by the decided interval,
        stops past the end of ``values``. The entire hot loop — Welford
        update with the restart/stale-serving scheme, likelihood kernel,
        AIMD rule, coordination accumulation — runs on local variables and
        is written back to the sampler (and its statistics object) when
        the loop finishes, so per-step attribute traffic and method-call
        dispatch disappear from the inner loop. State transitions, raised
        errors and the resulting ``(sampled, intervals)`` streams are
        identical to the step-by-step surfaces; the equivalence suite
        checks all three against :meth:`observe`.

        Falls back to a plain :meth:`observe_fast` loop when the sampler
        was built around a custom statistics object (the inlined Welford
        math is only valid for :class:`~repro.core.online_stats.OnlineStatistics`).

        Args:
            values: the trace as plain Python floats (``arr.tolist()``),
                one per default-interval grid point.
            start: grid index of the first sample.
            record_intervals: also record the interval trajectory.

        Returns:
            ``(sampled_indices, intervals)`` lists; ``intervals`` is empty
            when recording was disabled.
        """
        n = len(values)
        sampled: list[int] = []
        intervals: list[int] = []
        sampled_append = sampled.append
        intervals_append = intervals.append

        st = self._stats
        if type(st) is not OnlineStatistics:
            observe_fast = self.observe_fast
            t = start
            while t < n:
                sampled_append(t)
                step = observe_fast(values[t], t)
                if step < 1:
                    step = 1
                if record_intervals:
                    intervals_append(step)
                t += step
            return sampled, intervals

        # Hoisted invariants (immutable for the duration of the run).
        sign = self._sign
        threshold = self._threshold
        err = self._error_allowance
        use_cheb = self._estimate_fast is misdetection_bound_fused
        erfc = math.erfc
        sqrt2 = math.sqrt(2.0)  # the identical double to likelihood._SQRT2
        max_interval = self._max_interval
        patience = self._patience
        min_samples = self._min_samples
        one_minus_slack = self._one_minus_slack
        min_fresh = st._min_fresh
        restart_limit = st._restart_after
        if restart_limit is None:
            restart_limit = n + st._n + 1  # unreachable: restarts disabled
        isfinite = math.isfinite
        sqrt = math.sqrt
        log = math.log
        # err is fixed for the duration of the run (the coordinator can
        # only retune between calls), so the growth gate and the marginal
        # cost reduction r_i = 1/I - 1/(I+1) are loop constants — the
        # latter tabulated with the exact per-step expression.
        grow_gate = one_minus_slack * err
        coord_r = [0.0] + [1.0 / i - 1.0 / (i + 1.0)
                           for i in range(1, max_interval + 1)]

        # Mutable state, loaded into locals and written back in `finally`
        # (so an error mid-trace leaves the sampler exactly as the
        # step-by-step surfaces would have).
        interval = self._interval
        streak = self._streak
        last_value = self._last_value
        last_time = self._last_time
        observations = self._observations
        grow_events = self._grow_events
        reset_events = self._reset_events
        coord_sum_r = self._coord_sum_r
        coord_sum_log_e = self._coord_sum_log_e
        coord_n = self._coord_n
        beta_out = self._last_beta
        flags_out = self._last_flags
        n_acc = st._n
        mean_acc = st._mean
        var_acc = st._var
        stale_mean = st._stale_mean
        stale_var = st._stale_var
        stale_count = st._stale_count
        restarts = st._restarts
        total_count = st._total_count

        t = start
        try:
            while t < n:
                sampled_append(t)
                value = values[t]
                v = sign * value
                flags = 4 if v > threshold else 0
                observations += 1

                if last_time is not None:
                    steps = t - last_time
                    if steps <= 0:
                        raise ValueError(
                            f"time_index must increase: {t} after "
                            f"{last_time}")
                    # Inlined OnlineStatistics.update (Welford + restart).
                    x = (v - last_value) / steps
                    if not isfinite(x):
                        raise ValueError(f"non-finite observation: {x!r}")
                    n_acc += 1
                    total_count += 1
                    prev_mean = mean_acc
                    mean_acc = prev_mean + (x - prev_mean) / n_acc
                    var_acc = ((n_acc - 1) * var_acc
                               + (x - mean_acc) * (x - prev_mean)) / n_acc
                    if n_acc > restart_limit:
                        stale_mean = mean_acc
                        stale_var = var_acc
                        stale_count = n_acc
                        n_acc = 0
                        mean_acc = 0.0
                        var_acc = 0.0
                        restarts += 1
                last_value = v
                last_time = t

                # Inlined mean/std/effective_count with stale serving.
                if stale_mean is not None and n_acc < min_fresh:
                    eff = stale_count
                    mean_est = stale_mean
                    var_est = stale_var
                else:
                    eff = n_acc
                    mean_est = mean_acc
                    var_est = max(var_acc, 0.0)

                # Inlined likelihood kernel — the exact floating-point
                # operation sequence of misdetection_bound_fused /
                # gaussian_misdetection_estimate_fused (likelihood.py),
                # with the dominant interval == 1 case unrolled. The
                # survive-product double rounding (1 - (1 - x)) is kept
                # deliberately: simplifying it would break bit-equality
                # with the reference kernels.
                if eff >= min_samples:
                    std_est = sqrt(var_est)
                    gap0 = threshold - v
                    if std_est == 0.0:
                        worst = interval if mean_est >= 0.0 else 1
                        beta = (0.0 if gap0 - worst * mean_est > 0.0
                                else 1.0)
                    elif use_cheb:
                        if interval == 1:
                            gap = gap0 - mean_est
                            if gap <= 0.0:
                                beta = 1.0
                            else:
                                k = gap / std_est
                                beta = 1.0 - (1.0 - 1.0 / (1.0 + k * k))
                        else:
                            survive = 1.0
                            for i in range(1, interval + 1):
                                gap = gap0 - i * mean_est
                                if gap <= 0.0:
                                    beta = 1.0
                                    break
                                k = gap / (i * std_est)
                                survive *= 1.0 - 1.0 / (1.0 + k * k)
                            else:
                                beta = 1.0 - survive
                    elif interval == 1:
                        p = 0.5 * erfc((gap0 - mean_est) / std_est / sqrt2)
                        beta = 1.0 if p >= 1.0 else 1.0 - (1.0 - p)
                    else:
                        survive = 1.0
                        for i in range(1, interval + 1):
                            p = 0.5 * erfc(
                                (gap0 - i * mean_est) / (i * std_est)
                                / sqrt2)
                            if p >= 1.0:
                                beta = 1.0
                                break
                            survive *= 1.0 - p
                        else:
                            beta = 1.0 - survive
                else:
                    beta = 1.0

                if err <= 0.0:
                    if interval != 1:
                        interval = 1
                        flags |= 2
                    streak = 0
                elif beta > err:
                    if interval != 1:
                        flags |= 2
                        interval = 1
                        reset_events += 1
                    streak = 0
                elif beta <= grow_gate:
                    streak += 1
                    if streak >= patience:
                        streak = 0
                        if interval < max_interval:
                            interval += 1
                            flags |= 1
                            grow_events += 1
                else:
                    streak = 0

                if interval < max_interval:
                    coord_sum_r += coord_r[interval]
                coord_sum_log_e += log(
                    max(beta / one_minus_slack, _MIN_ERROR_NEEDED))
                coord_n += 1

                beta_out = beta
                flags_out = flags
                if record_intervals:
                    intervals_append(interval)
                t += interval
        finally:
            st._n = n_acc
            st._mean = mean_acc
            st._var = var_acc
            st._stale_mean = stale_mean
            st._stale_var = stale_var
            st._stale_count = stale_count
            st._restarts = restarts
            st._total_count = total_count
            self._interval = interval
            self._streak = streak
            self._last_value = last_value
            self._last_time = last_time
            self._observations = observations
            self._grow_events = grow_events
            self._reset_events = reset_events
            self._coord_sum_r = coord_sum_r
            self._coord_sum_log_e = coord_sum_log_e
            self._coord_n = coord_n
            self._last_beta = beta_out
            self._last_flags = flags_out
        return sampled, intervals

    @property
    def last_misdetection_bound(self) -> float:
        """``beta`` computed by the most recent observation (1.0 initially)."""
        return self._last_beta

    @property
    def last_grew(self) -> bool:
        """Whether the most recent observation grew the interval."""
        return bool(self._last_flags & 1)

    @property
    def last_reset(self) -> bool:
        """Whether the most recent observation reset the interval."""
        return bool(self._last_flags & 2)

    @property
    def last_violation(self) -> bool:
        """Whether the most recently observed value violated the threshold."""
        return bool(self._last_flags & 4)

    def state_dict(self) -> dict[str, object]:
        """Return the sampler's mutable state as a JSON-able dict.

        Together with the (immutable) :class:`~repro.core.task.TaskSpec` and
        :class:`AdaptationConfig` this is everything needed to resume the
        sampler exactly where it stopped: a restored sampler produces the
        same decision stream as one that was never interrupted. Used by the
        live-ingestion runtime's checkpoint/restore (``repro.runtime``).
        """
        return {
            "interval": self._interval,
            "streak": self._streak,
            "last_value": self._last_value,
            "last_time": self._last_time,
            "error_allowance": self._error_allowance,
            "observations": self._observations,
            "grow_events": self._grow_events,
            "reset_events": self._reset_events,
            "coord_sum_r": self._coord_sum_r,
            "coord_sum_log_e": self._coord_sum_log_e,
            "coord_n": self._coord_n,
            "stats": self._stats.state_dict(),
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore sampler state produced by :meth:`state_dict`.

        The sampler must have been constructed with the same task and
        configuration that produced the snapshot; only mutable state is
        restored.
        """
        self._interval = int(state["interval"])  # type: ignore[arg-type]
        self._streak = int(state["streak"])  # type: ignore[arg-type]
        last_value = state.get("last_value")
        last_time = state.get("last_time")
        self._last_value = None if last_value is None else float(last_value)  # type: ignore[arg-type]
        self._last_time = None if last_time is None else int(last_time)  # type: ignore[arg-type]
        self.error_allowance = float(state["error_allowance"])  # type: ignore[arg-type]
        self._observations = int(state.get("observations", 0))  # type: ignore[arg-type]
        self._grow_events = int(state.get("grow_events", 0))  # type: ignore[arg-type]
        self._reset_events = int(state.get("reset_events", 0))  # type: ignore[arg-type]
        self._coord_sum_r = float(state.get("coord_sum_r", 0.0))  # type: ignore[arg-type]
        self._coord_sum_log_e = float(state.get("coord_sum_log_e", 0.0))  # type: ignore[arg-type]
        self._coord_n = int(state.get("coord_n", 0))  # type: ignore[arg-type]
        self._stats.load_state_dict(state["stats"])  # type: ignore[arg-type]

    def drain_coordination_stats(self) -> CoordinationStats | None:
        """Return and reset the averages accumulated since the last drain.

        Returns ``None`` when no samples were observed during the period
        (the coordinator keeps that monitor's previous allocation).
        """
        if self._coord_n == 0:
            return None
        stats = CoordinationStats(
            avg_cost_reduction=self._coord_sum_r / self._coord_n,
            avg_error_needed=math.exp(self._coord_sum_log_e / self._coord_n),
            observations=self._coord_n,
        )
        self._coord_sum_r = 0.0
        self._coord_sum_log_e = 0.0
        self._coord_n = 0
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ViolationLikelihoodSampler(interval={self._interval}, "
                f"err={self._error_allowance:.4g}, "
                f"observations={self._observations})")
