"""Monitor-level violation-likelihood based sampling adaptation (paper SIII-B).

After every sampling operation the monitor:

1. updates the online statistics of the per-default-interval change
   ``delta`` using ``delta_hat = (v(t) - v(t - I)) / I``;
2. computes the mis-detection upper bound ``beta(I)`` for the current
   interval ``I`` (:func:`repro.core.likelihood.misdetection_bound`);
3. adapts the interval with an AIMD-like rule:

   * if ``beta(I) > err`` — switch back to the default interval
     immediately (multiplicative decrease), guarding against abrupt
     changes of the ``delta`` distribution;
   * if ``beta(I) <= (1 - gamma) * err`` for ``p`` consecutive samples —
     grow the interval by one default interval (additive increase), never
     exceeding ``Im``. The slack ratio ``gamma`` avoids growing when the
     bound sits exactly at the allowance.

The paper reports ``gamma = 0.2`` and ``p = 20`` as good practice; both are
defaults of :class:`AdaptationConfig`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.likelihood import (gaussian_misdetection_estimate,
                                   misdetection_bound)
from repro.core.online_stats import OnlineStatistics
from repro.core.task import TaskSpec
from repro.exceptions import ConfigurationError

_MIN_ERROR_NEEDED = 1e-12
"""Clamp for the geometric accumulation of e_i (beta can be exactly 0)."""

__all__ = [
    "AdaptationConfig",
    "SamplingDecision",
    "CoordinationStats",
    "ViolationLikelihoodSampler",
]


@dataclass(frozen=True, slots=True)
class AdaptationConfig:
    """Tunables of the monitor-level adaptation algorithm.

    Attributes:
        slack_ratio: ``gamma`` — fraction of the error allowance kept as
            safety slack before growing the interval.
        patience: ``p`` — number of consecutive under-slack observations
            required before growing the interval.
        stats_restart: restart the delta statistics after this many
            updates (paper: 1000); ``None`` disables restarts.
        min_samples: observations of ``delta`` required before the bound is
            trusted; until then the sampler stays at the default interval.
        estimator: ``"chebyshev"`` (the paper's distribution-free bound)
            or ``"gaussian"`` (exact normal tail — tighter, but only an
            estimate; provided for the estimator ablation).
    """

    slack_ratio: float = 0.2
    patience: int = 20
    stats_restart: int | None = 1000
    min_samples: int = 10
    estimator: str = "chebyshev"

    def __post_init__(self) -> None:
        if not 0.0 <= self.slack_ratio < 1.0:
            raise ConfigurationError(
                f"slack_ratio must be in [0, 1), got {self.slack_ratio}")
        if self.patience < 1:
            raise ConfigurationError(
                f"patience must be >= 1, got {self.patience}")
        if self.min_samples < 2:
            raise ConfigurationError(
                f"min_samples must be >= 2, got {self.min_samples}")
        if self.estimator not in ("chebyshev", "gaussian"):
            raise ConfigurationError(
                "estimator must be 'chebyshev' or 'gaussian', got "
                f"{self.estimator!r}")


@dataclass(frozen=True, slots=True)
class SamplingDecision:
    """Outcome of one adaptation step.

    Attributes:
        next_interval: interval (in ``Id`` units) until the next sample.
        misdetection_bound: the ``beta(I)`` upper bound computed for the
            interval that was in force when the value arrived.
        grew: the interval was increased by this step.
        reset: the interval was reset to the default by this step.
        violation: the observed value itself violates the threshold.
    """

    next_interval: int
    misdetection_bound: float
    grew: bool = False
    reset: bool = False
    violation: bool = False


@dataclass(frozen=True, slots=True)
class CoordinationStats:
    """Updating-period averages a monitor reports to its coordinator.

    Attributes:
        avg_cost_reduction: average of ``r_i = 1/I_i - 1/(I_i + 1)`` — the
            marginal cost reduction available from growing the interval by
            one (zero while the monitor sits at the maximum interval).
        avg_error_needed: geometric mean of ``e_i = beta(I_i)/(1 - gamma)``
            — the typical error allowance that would let the monitor grow.
            Geometric, because instantaneous bounds span many orders of
            magnitude and an arithmetic mean is dominated by the rare
            near-1 spikes (DESIGN.md S4).
        observations: number of samples aggregated into the averages.
    """

    avg_cost_reduction: float
    avg_error_needed: float
    observations: int

    @property
    def yield_per_error(self) -> float:
        """Cost-reduction yield ``y_i = r_i / e_i`` (paper SIV-B).

        A degenerate ``e_i`` of zero means the monitor can grow essentially
        for free; returns infinity in that case.
        """
        if self.avg_error_needed <= 0.0:
            return float("inf")
        return self.avg_cost_reduction / self.avg_error_needed


class ViolationLikelihoodSampler:
    """Stateful per-monitor adaptive sampler.

    Drive it by calling :meth:`observe` with every sampled value (in grid
    units of the default interval); the returned decision carries the next
    sampling interval. The sampler starts at the default interval and is
    deliberately conservative: until ``min_samples`` observations of
    ``delta`` have been absorbed it reports ``beta = 1`` and stays at the
    default interval.

    The coordinator may change :attr:`error_allowance` at any time
    (distributed coordination reallocates allowance between monitors).
    """

    def __init__(self, task: TaskSpec,
                 config: AdaptationConfig | None = None,
                 stats: OnlineStatistics | None = None):
        self._task = task
        self._config = config or AdaptationConfig()
        self._sign, self._threshold = task.oriented()
        self._error_allowance = task.error_allowance
        self._stats = stats if stats is not None else OnlineStatistics(
            restart_after=self._config.stats_restart,
            min_fresh=self._config.min_samples,
        )
        self._estimate = (misdetection_bound
                          if self._config.estimator == "chebyshev"
                          else gaussian_misdetection_estimate)
        self._interval = 1
        self._streak = 0
        self._last_value: float | None = None
        self._last_time: int | None = None
        # Counters for analysis and coordination reporting.
        self._observations = 0
        self._grow_events = 0
        self._reset_events = 0
        self._coord_sum_r = 0.0
        self._coord_sum_log_e = 0.0
        self._coord_n = 0

    @property
    def task(self) -> TaskSpec:
        """The task specification this sampler enforces."""
        return self._task

    @property
    def config(self) -> AdaptationConfig:
        """The adaptation tunables in force."""
        return self._config

    @property
    def interval(self) -> int:
        """Current sampling interval in units of the default interval."""
        return self._interval

    @property
    def stats(self) -> OnlineStatistics:
        """The online statistics of ``delta`` (read-only use intended)."""
        return self._stats

    @property
    def error_allowance(self) -> float:
        """Local error allowance currently enforced."""
        return self._error_allowance

    @error_allowance.setter
    def error_allowance(self, err: float) -> None:
        if not 0.0 <= err <= 1.0:
            raise ConfigurationError(
                f"error allowance must be in [0, 1], got {err}")
        self._error_allowance = err

    @property
    def observations(self) -> int:
        """Total samples observed."""
        return self._observations

    @property
    def grow_events(self) -> int:
        """Number of interval increases performed."""
        return self._grow_events

    @property
    def reset_events(self) -> int:
        """Number of resets to the default interval performed."""
        return self._reset_events

    def observe(self, value: float, time_index: int) -> SamplingDecision:
        """Absorb a sampled value and return the adaptation decision.

        Args:
            value: the monitored state value just sampled.
            time_index: grid position of the sample in units of the default
                interval; must be strictly increasing across calls.

        Returns:
            The :class:`SamplingDecision` whose ``next_interval`` tells the
            caller when to sample next.

        Raises:
            ValueError: if ``time_index`` does not advance.
        """
        v = self._sign * value
        violation = v > self._threshold
        self._observations += 1

        if self._last_time is not None:
            steps = time_index - self._last_time
            if steps <= 0:
                raise ValueError(
                    f"time_index must increase: {time_index} after "
                    f"{self._last_time}")
            # delta_hat = (v(t) - v(t - I)) / I  (paper SIII-B)
            self._stats.update((v - self._last_value) / steps)
        self._last_value = v
        self._last_time = time_index

        cfg = self._config
        err = self._error_allowance
        if self._stats.effective_count >= cfg.min_samples:
            beta = self._estimate(v, self._threshold, self._stats.mean,
                                  self._stats.std, self._interval)
        else:
            beta = 1.0

        grew = False
        reset = False
        if err <= 0.0:
            # A zero allowance degenerates to periodic default sampling.
            if self._interval != 1:
                self._interval = 1
                reset = True
            self._streak = 0
        elif beta > err:
            reset = self._interval != 1
            self._interval = 1
            self._streak = 0
            if reset:
                self._reset_events += 1
        elif beta <= (1.0 - cfg.slack_ratio) * err:
            self._streak += 1
            if self._streak >= cfg.patience:
                self._streak = 0
                if self._interval < self._task.max_interval:
                    self._interval += 1
                    grew = True
                    self._grow_events += 1
        else:
            self._streak = 0

        # Coordination statistics: updating-period averages of r_i and e_i.
        # r_i is the cost reduction available from growing the interval by
        # one (1/I - 1/(I+1), the marginal saving in samples per step);
        # a monitor already at the maximum interval cannot convert more
        # allowance into cost reduction, so its potential r_i is zero.
        # e_i = beta(I)/(1-gamma) is the allowance that would let it grow
        # (from the adaptation rule's growth condition); it is averaged
        # geometrically because instantaneous bounds span many orders of
        # magnitude and the *typical* requirement is what allowance buys.
        interval = self._interval
        if interval < self._task.max_interval:
            self._coord_sum_r += 1.0 / interval - 1.0 / (interval + 1.0)
        self._coord_sum_log_e += math.log(
            max(beta / (1.0 - cfg.slack_ratio), _MIN_ERROR_NEEDED))
        self._coord_n += 1

        return SamplingDecision(next_interval=self._interval,
                                misdetection_bound=beta,
                                grew=grew, reset=reset, violation=violation)

    def state_dict(self) -> dict[str, object]:
        """Return the sampler's mutable state as a JSON-able dict.

        Together with the (immutable) :class:`~repro.core.task.TaskSpec` and
        :class:`AdaptationConfig` this is everything needed to resume the
        sampler exactly where it stopped: a restored sampler produces the
        same decision stream as one that was never interrupted. Used by the
        live-ingestion runtime's checkpoint/restore (``repro.runtime``).
        """
        return {
            "interval": self._interval,
            "streak": self._streak,
            "last_value": self._last_value,
            "last_time": self._last_time,
            "error_allowance": self._error_allowance,
            "observations": self._observations,
            "grow_events": self._grow_events,
            "reset_events": self._reset_events,
            "coord_sum_r": self._coord_sum_r,
            "coord_sum_log_e": self._coord_sum_log_e,
            "coord_n": self._coord_n,
            "stats": self._stats.state_dict(),
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore sampler state produced by :meth:`state_dict`.

        The sampler must have been constructed with the same task and
        configuration that produced the snapshot; only mutable state is
        restored.
        """
        self._interval = int(state["interval"])  # type: ignore[arg-type]
        self._streak = int(state["streak"])  # type: ignore[arg-type]
        last_value = state.get("last_value")
        last_time = state.get("last_time")
        self._last_value = None if last_value is None else float(last_value)  # type: ignore[arg-type]
        self._last_time = None if last_time is None else int(last_time)  # type: ignore[arg-type]
        self.error_allowance = float(state["error_allowance"])  # type: ignore[arg-type]
        self._observations = int(state.get("observations", 0))  # type: ignore[arg-type]
        self._grow_events = int(state.get("grow_events", 0))  # type: ignore[arg-type]
        self._reset_events = int(state.get("reset_events", 0))  # type: ignore[arg-type]
        self._coord_sum_r = float(state.get("coord_sum_r", 0.0))  # type: ignore[arg-type]
        self._coord_sum_log_e = float(state.get("coord_sum_log_e", 0.0))  # type: ignore[arg-type]
        self._coord_n = int(state.get("coord_n", 0))  # type: ignore[arg-type]
        self._stats.load_state_dict(state["stats"])  # type: ignore[arg-type]

    def drain_coordination_stats(self) -> CoordinationStats | None:
        """Return and reset the averages accumulated since the last drain.

        Returns ``None`` when no samples were observed during the period
        (the coordinator keeps that monitor's previous allocation).
        """
        if self._coord_n == 0:
            return None
        stats = CoordinationStats(
            avg_cost_reduction=self._coord_sum_r / self._coord_n,
            avg_error_needed=math.exp(self._coord_sum_log_e / self._coord_n),
            observations=self._coord_n,
        )
        self._coord_sum_r = 0.0
        self._coord_sum_log_e = 0.0
        self._coord_n = 0
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ViolationLikelihoodSampler(interval={self._interval}, "
                f"err={self._error_allowance:.4g}, "
                f"observations={self._observations})")
