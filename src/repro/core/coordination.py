"""Distributed sampling coordination (paper SIV).

A distributed task runs one adaptive sampler per monitor. Because a missed
*local* violation can hide a *global* violation, the sum of the monitors'
mis-detection rates must stay below the task's error allowance:
``beta_c <= sum_i beta_i <= err``. The coordinator therefore owns the
global allowance and decides each monitor's share.

Two allocation policies are provided:

* :class:`EvenAllocation` — ``err / m`` for every monitor (the "even"
  baseline of Fig. 8);
* :class:`AdaptiveAllocation` — the paper's iterative scheme: every
  updating period (1000 default intervals) each monitor reports
  ``r_i = 1/I_i - 1/(I_i + 1)`` (marginal cost reduction available from
  growing its interval; zero at the cap) and ``e_i = beta(I_i)/(1-gamma)``
  (the typical allowance that would let it grow; geometric period mean);
  the coordinator computes the yield ``y_i = r_i / e_i`` and moves the
  assignment gradually toward ``err_i = err * y_i / sum_j y_j``, so
  allowance flows to monitors where it buys the most cost reduction. Two
  throttles avoid churn: allocations are floored at ``err/100``, and no
  reallocation happens while the yields are nearly uniform. DESIGN.md S4
  records the reconstruction choices behind these formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.adaptation import CoordinationStats
from repro.exceptions import CoordinationError, ConfigurationError

__all__ = [
    "AllocationPolicy",
    "EvenAllocation",
    "AdaptiveAllocation",
    "AllocationUpdate",
]


@dataclass(frozen=True, slots=True)
class AllocationUpdate:
    """Result of one allocation round.

    Attributes:
        allocations: per-monitor error allowances (sums to the global
            allowance up to floating point).
        reallocated: False when the policy decided to keep the previous
            allocation (throttled or insufficient reports).
    """

    allocations: tuple[float, ...]
    reallocated: bool


class AllocationPolicy:
    """Base class for error-allowance allocation policies."""

    _trace: Any = None
    _trace_task: str | None = None

    def attach_trace(self, trace: Any, task: str | None = None) -> None:
        """Attach a decision trace; reallocations emit
        ``allowance_reallocated`` events (``repro.telemetry.trace``).

        Passing ``None`` (or a disabled trace) detaches. The un-traced
        cost is one ``is None`` check per allocation round.
        """
        self._trace = (trace if trace is not None and trace.enabled
                       else None)
        self._trace_task = task

    def _emit_reallocated(self, update: "AllocationUpdate",
                          total_error: float) -> None:
        trace = self._trace
        if trace is not None and update.reallocated:
            trace.emit("allowance_reallocated", task=self._trace_task,
                       allocations=list(update.allocations),
                       total_error=total_error)

    def initial(self, num_monitors: int, total_error: float,
                ) -> tuple[float, ...]:
        """Initial allocation before any reports: an even split.

        The paper's coordinator "first divides err evenly across all
        monitors" regardless of policy.
        """
        if num_monitors < 1:
            raise ConfigurationError(
                f"num_monitors must be >= 1, got {num_monitors}")
        share = total_error / num_monitors
        return tuple(share for _ in range(num_monitors))

    def reallocate(self, current: tuple[float, ...],
                   reports: list[CoordinationStats | None],
                   total_error: float) -> AllocationUpdate:
        """Compute the next allocation from the period's monitor reports.

        Args:
            current: allocation in force during the period.
            reports: one :class:`CoordinationStats` per monitor (``None``
                when a monitor had no samples in the period).
            total_error: the task's global error allowance.
        """
        raise NotImplementedError


class EvenAllocation(AllocationPolicy):
    """Always split the allowance evenly (Fig. 8's "even" baseline)."""

    def reallocate(self, current: tuple[float, ...],
                   reports: list[CoordinationStats | None],
                   total_error: float) -> AllocationUpdate:
        """Return the even split regardless of the reports."""
        if len(current) != len(reports):
            raise CoordinationError(
                f"{len(reports)} reports for {len(current)} monitors")
        return AllocationUpdate(
            allocations=self.initial(len(current), total_error),
            reallocated=False,
        )


class AdaptiveAllocation(AllocationPolicy):
    """The paper's yield-driven iterative allocation (SIV-B).

    Allowance flows toward monitors with the highest cost-reduction yield
    ``y_i = r_i / e_i``, with two refinements that make the scheme
    well-behaved when yields span orders of magnitude (the instantaneous
    ``beta`` bounds do — see DESIGN.md S4):

    * the yield's denominator is floored at ``min_share_fraction`` of the
      global allowance: a monitor whose typical bound is already far below
      any allocation it could receive gains nothing from more allowance,
      so its yield must not diverge;
    * allocations are floored at ``total_error * min_share_fraction``
      (paper: 1/100) and reallocation is skipped while yields are nearly
      uniform (paper's throttle).

    With those two guards the paper's proportional rule
    ``err_i = err * y_i / sum_j y_j`` moves allowance toward monitors at
    small intervals whose typical bound sits near their allocation — the
    monitors that must "absorb frequent violations" in the paper's worked
    example — and away from both hopeless monitors (``e_i`` far above any
    feasible allocation) and already-satisfied ones.

    The scheme is *iterative and gradual* (SIV-B: "an iterative scheme
    that gradually tunes the assignment"): each round moves allocations a
    fraction ``step`` of the way toward the yield-proportional target.
    Gradual movement matters — a monitor whose allowance drops suddenly
    below what sustains its current interval suffers a burst of resets
    before the next round can correct course.

    Args:
        min_share_fraction: floor, as a fraction of the global allowance,
            applied to both allocations and yield denominators.
        uniform_spread: skip reallocation when the relative yield spread
            ``(max - min) / max`` is below this value.
        step: fraction of the distance to the proportional target moved
            per updating period (1.0 jumps straight to the target).
    """

    def __init__(self, min_share_fraction: float = 0.01,
                 uniform_spread: float = 0.1, step: float = 0.15):
        if not 0.0 < min_share_fraction < 1.0:
            raise ConfigurationError(
                "min_share_fraction must be in (0, 1), got "
                f"{min_share_fraction}")
        if uniform_spread < 0.0:
            raise ConfigurationError(
                f"uniform_spread must be >= 0, got {uniform_spread}")
        if not 0.0 < step <= 1.0:
            raise ConfigurationError(
                f"step must be in (0, 1], got {step}")
        self._min_share_fraction = min_share_fraction
        self._uniform_spread = uniform_spread
        self._step = step

    def reallocate(self, current: tuple[float, ...],
                   reports: list[CoordinationStats | None],
                   total_error: float) -> AllocationUpdate:
        """Yield-proportional reallocation with floor and spread throttles."""
        if len(current) != len(reports):
            raise CoordinationError(
                f"{len(reports)} reports for {len(current)} monitors")
        m = len(current)
        if m == 1:
            return AllocationUpdate(allocations=(total_error,),
                                    reallocated=False)
        if any(r is None for r in reports):
            # A silent monitor gives no yield signal; keep the allocation.
            return AllocationUpdate(allocations=current, reallocated=False)
        if total_error <= 0.0:
            return AllocationUpdate(allocations=tuple(0.0 for _ in current),
                                    reallocated=False)

        floor = total_error * self._min_share_fraction
        yields = []
        for r in reports:
            assert r is not None
            denominator = max(r.avg_error_needed, floor)
            yields.append(max(r.avg_cost_reduction, 0.0) / denominator)

        y_max = max(yields)
        if y_max <= 0.0:
            return AllocationUpdate(allocations=current, reallocated=False)
        spread = (y_max - min(yields)) / y_max
        if spread < self._uniform_spread:
            return AllocationUpdate(allocations=current, reallocated=False)
        if floor * m >= total_error:
            # Degenerate configuration: the floors exhaust the budget.
            return AllocationUpdate(
                allocations=self.initial(m, total_error),
                reallocated=False)

        # Proportional shares with the floor enforced to a fixed point:
        # flooring one monitor shrinks the mass available to the rest,
        # which can push further monitors under the floor, so iterate
        # until the floored set stabilises (at most m rounds).
        floored: set[int] = set()
        while True:
            free = [i for i in range(m) if i not in floored]
            remaining = total_error - floor * len(floored)
            free_yield = sum(yields[i] for i in free)
            raw = [floor] * m
            for i in free:
                if free_yield > 0.0:
                    # Ratio first: yields can be denormal, and
                    # ``remaining * y`` would underflow before the divide,
                    # breaking conservation of the total allowance.
                    raw[i] = remaining * (yields[i] / free_yield)
                else:
                    raw[i] = remaining / len(free)
            newly = {i for i in free if raw[i] < floor}
            if not newly:
                break
            floored |= newly
            if len(floored) == m:
                raw = list(self.initial(m, total_error))
                break
        # Gradual movement toward the target (see class docstring).
        step = self._step
        mixed = tuple((1.0 - step) * c + step * t
                      for c, t in zip(current, raw))
        update = AllocationUpdate(allocations=mixed, reallocated=True)
        self._emit_reallocated(update, total_error)
        return update
