"""Multi-task state correlation (paper SII-A "State Correlation", SI).

The paper's example: rising request response time is a *necessary
condition* of a successful DDoS attack, so the expensive DDoS task only
needs intensive sampling while the cheap response-time metric is elevated.
The full mechanism lives in an unavailable technical report; this module
implements the documented interpretation from DESIGN.md S5:

* :class:`CorrelationDetector` measures, from aligned metric histories, how
  reliably a candidate *trigger* metric is elevated whenever a *target*
  task violates (the necessary-condition score), plus the fraction of time
  the trigger is elevated (which determines the achievable saving).
* :class:`CorrelationPlanner` greedily assigns at most one trigger to each
  expensive target task, maximising expected sampling-cost saving subject
  to a per-task accuracy-loss budget.
* :class:`TriggeredSampler` wraps any sampling scheme: while the trigger
  metric is below its elevation level the wrapped task idles at the
  maximum interval; once the trigger is elevated the inner
  violation-likelihood adaptation takes over unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.adaptation import SamplingDecision
from repro.core.sampler import SamplingScheme
from repro.exceptions import ConfigurationError, CorrelationError
from repro.types import ThresholdDirection

__all__ = [
    "CorrelationEvidence",
    "CorrelationDetector",
    "TaskProfile",
    "TriggerRule",
    "CorrelationPlanner",
    "TriggeredSampler",
]


@dataclass(frozen=True, slots=True)
class CorrelationEvidence:
    """What the detector learned about a (trigger, target) pair.

    Attributes:
        pearson: Pearson correlation of the two aligned metric histories.
        necessary_condition_score: ``P(trigger elevated | target violates)``
            — 1.0 means the trigger was elevated at every target violation.
        elevation_level: the trigger value above which it counts as
            elevated (a quantile of its history).
        elevated_fraction: fraction of time the trigger was elevated; the
            complement is the fraction of time the target could idle.
        support: number of target violations backing the score.
    """

    pearson: float
    necessary_condition_score: float
    elevation_level: float
    elevated_fraction: float
    support: int


class CorrelationDetector:
    """Estimate necessary-condition correlation between two metric streams.

    Args:
        elevation_quantile: the trigger is "elevated" above this quantile
            of its history (default 0.8).
        min_support: minimum number of target violations required to trust
            a score; below it :meth:`analyze` raises
            :class:`~repro.exceptions.CorrelationError`.
        lag_window: the trigger counts as elevated for a violation at ``t``
            if it was elevated anywhere in ``[t - lag_window, t]`` —
            correlated effects need not be exactly simultaneous.
    """

    def __init__(self, elevation_quantile: float = 0.8,
                 min_support: int = 10, lag_window: int = 0):
        if not 0.0 < elevation_quantile < 1.0:
            raise ConfigurationError(
                "elevation_quantile must be in (0, 1), got "
                f"{elevation_quantile}")
        if min_support < 1:
            raise ConfigurationError(
                f"min_support must be >= 1, got {min_support}")
        if lag_window < 0:
            raise ConfigurationError(
                f"lag_window must be >= 0, got {lag_window}")
        self._quantile = elevation_quantile
        self._min_support = min_support
        self._lag_window = lag_window

    def analyze(self, trigger_values: np.ndarray, target_values: np.ndarray,
                target_threshold: float,
                direction: ThresholdDirection = ThresholdDirection.UPPER,
                ) -> CorrelationEvidence:
        """Score how well ``trigger_values`` predicts target violations.

        Args:
            trigger_values: candidate trigger metric, one value per grid
                point, aligned with ``target_values``.
            target_values: the target task's metric history.
            target_threshold: the target task's violation threshold.
            direction: the target task's violation side.

        Raises:
            CorrelationError: when histories are misaligned or the target
                violated fewer than ``min_support`` times.
        """
        trig = np.asarray(trigger_values, dtype=float)
        targ = np.asarray(target_values, dtype=float)
        if trig.shape != targ.shape or trig.ndim != 1:
            raise CorrelationError(
                f"misaligned histories: {trig.shape} vs {targ.shape}")
        if trig.size < 2:
            raise CorrelationError("histories too short to correlate")

        if direction is ThresholdDirection.UPPER:
            violations = np.flatnonzero(targ > target_threshold)
        else:
            violations = np.flatnonzero(targ < target_threshold)
        if violations.size < self._min_support:
            raise CorrelationError(
                f"only {violations.size} target violations; need "
                f">= {self._min_support}")

        level = float(np.quantile(trig, self._quantile))
        elevated = trig >= level
        elevated_fraction = float(np.mean(elevated))

        lag = self._lag_window
        if lag == 0:
            hits = int(np.count_nonzero(elevated[violations]))
        else:
            hits = 0
            for t in violations:
                lo = max(0, int(t) - lag)
                if elevated[lo:int(t) + 1].any():
                    hits += 1
        score = hits / violations.size

        # Pearson on the raw streams; degenerate (constant) streams give 0.
        std_t = float(np.std(trig))
        std_g = float(np.std(targ))
        if std_t == 0.0 or std_g == 0.0:
            pearson = 0.0
        else:
            pearson = float(np.corrcoef(trig, targ)[0, 1])
            if math.isnan(pearson):  # pragma: no cover - defensive
                pearson = 0.0

        return CorrelationEvidence(
            pearson=pearson,
            necessary_condition_score=score,
            elevation_level=level,
            elevated_fraction=elevated_fraction,
            support=int(violations.size),
        )


@dataclass(frozen=True, slots=True)
class TaskProfile:
    """What the planner needs to know about one monitoring task.

    Attributes:
        task_id: stable identifier.
        values: recent metric history (aligned across profiles).
        threshold: violation threshold.
        cost_per_sample: relative cost of one sampling operation (e.g. DPI
            traffic sampling is far costlier than reading a counter).
        direction: violation side.
    """

    task_id: str
    values: np.ndarray
    threshold: float
    cost_per_sample: float = 1.0
    direction: ThresholdDirection = ThresholdDirection.UPPER


@dataclass(frozen=True, slots=True)
class TriggerRule:
    """One planned guard: sample ``target`` lazily unless ``trigger`` is hot.

    Attributes:
        target_id / trigger_id: task identifiers.
        elevation_level: trigger value above which the target resumes full
            adaptive sampling.
        evidence: the detector output the rule is based on.
        expected_saving: estimated sampling-cost saving per grid point.
        estimated_loss: estimated extra mis-detection probability charged
            against the accuracy-loss budget (``1 - score``).
    """

    target_id: str
    trigger_id: str
    elevation_level: float
    evidence: CorrelationEvidence
    expected_saving: float
    estimated_loss: float


class CorrelationPlanner:
    """Greedy cost-aware trigger assignment across a set of tasks.

    Each target task may be guarded by at most one cheaper task. Targets
    are considered in descending cost order (guard the expensive tasks
    first); for each, the admissible trigger with the largest expected
    saving wins. A rule is admissible when its necessary-condition score is
    at least ``min_score`` and its estimated loss fits the per-task budget.

    Args:
        min_score: minimum necessary-condition score (default 0.95).
        loss_budget: maximum estimated extra mis-detection probability a
            rule may introduce for its target (default 0.05).
        suspend_interval: interval (in default intervals) used while a
            guarded target idles — determines the achievable saving.
        detector: the :class:`CorrelationDetector` to use (a default one is
            built when omitted).
    """

    def __init__(self, min_score: float = 0.95, loss_budget: float = 0.05,
                 suspend_interval: int = 10,
                 detector: CorrelationDetector | None = None):
        if not 0.0 < min_score <= 1.0:
            raise ConfigurationError(
                f"min_score must be in (0, 1], got {min_score}")
        if not 0.0 <= loss_budget <= 1.0:
            raise ConfigurationError(
                f"loss_budget must be in [0, 1], got {loss_budget}")
        if suspend_interval < 2:
            raise ConfigurationError(
                f"suspend_interval must be >= 2, got {suspend_interval}")
        self._min_score = min_score
        self._loss_budget = loss_budget
        self._suspend_interval = suspend_interval
        self._detector = detector or CorrelationDetector()

    def plan(self, tasks: list[TaskProfile]) -> list[TriggerRule]:
        """Return the chosen trigger rules (possibly empty).

        Tasks whose violations are too rare for the detector's support
        requirement are simply skipped, not failed: lack of evidence means
        no rule.
        """
        rules: list[TriggerRule] = []
        by_cost = sorted(tasks, key=lambda t: t.cost_per_sample,
                         reverse=True)
        for target in by_cost:
            best: TriggerRule | None = None
            for trigger in tasks:
                if trigger.task_id == target.task_id:
                    continue
                if trigger.cost_per_sample >= target.cost_per_sample:
                    continue  # guarding with a costlier task cannot pay off
                try:
                    ev = self._detector.analyze(
                        trigger.values, target.values, target.threshold,
                        target.direction)
                except CorrelationError:
                    continue
                if ev.necessary_condition_score < self._min_score:
                    continue
                loss = 1.0 - ev.necessary_condition_score
                if loss > self._loss_budget:
                    continue
                idle = 1.0 - ev.elevated_fraction
                saving = (target.cost_per_sample * idle
                          * (1.0 - 1.0 / self._suspend_interval))
                rule = TriggerRule(
                    target_id=target.task_id,
                    trigger_id=trigger.task_id,
                    elevation_level=ev.elevation_level,
                    evidence=ev,
                    expected_saving=saving,
                    estimated_loss=loss,
                )
                if best is None or rule.expected_saving > best.expected_saving:
                    best = rule
            if best is not None and best.expected_saving > 0.0:
                rules.append(best)
        return rules

    @property
    def suspend_interval(self) -> int:
        """Interval used while a guarded task idles."""
        return self._suspend_interval


class TriggeredSampler:
    """Wrap a sampling scheme with a correlation trigger.

    While the trigger metric stays below ``elevation_level`` the wrapped
    task samples only every ``suspend_interval`` grid points; the inner
    scheme still observes every value taken so its delta statistics stay
    warm for the moment the trigger fires.

    The sampler also carries an *armed* flag for deployments where the
    trigger metric lives on another shard or worker and arrives as
    arm/disarm edges instead of per-observation values (the
    :mod:`repro.triggers` channel): when no ``trigger_value`` accompanies
    an observation, a disarmed sampler idles exactly as a cold trigger
    would. The flag defaults to ``True`` (conservatively elevated), so
    callers that pass explicit trigger values see unchanged behaviour.

    Args:
        inner: the guarded task's own sampling scheme.
        elevation_level: trigger value at which full sampling resumes.
        suspend_interval: idle interval in default-interval units.
    """

    def __init__(self, inner: SamplingScheme, elevation_level: float,
                 suspend_interval: int = 10):
        if suspend_interval < 1:
            raise ConfigurationError(
                f"suspend_interval must be >= 1, got {suspend_interval}")
        self._inner = inner
        self._level = elevation_level
        self._suspend_interval = suspend_interval
        self._suspended_steps = 0
        self._armed = True
        # Resolved once: the inner scheme's fused drive surface, when it
        # has one (ViolationLikelihoodSampler does; generic schemes fall
        # back to observe() inside observe_fast).
        self._inner_fast = getattr(inner, "observe_fast", None)

    @property
    def interval(self) -> int:
        """Interval currently in force (inner's, or the idle interval)."""
        return max(self._inner.interval, 1)

    @property
    def suspended_steps(self) -> int:
        """How many observations happened while suspended."""
        return self._suspended_steps

    @property
    def armed(self) -> bool:
        """Whether a remote trigger currently holds the task armed."""
        return self._armed

    @property
    def elevation_level(self) -> float:
        """The trigger value above which the task samples at full rate."""
        return self._level

    def arm(self) -> None:
        """Resume full adaptive sampling (remote trigger went hot)."""
        self._armed = True

    def disarm(self) -> None:
        """Idle at the suspend interval until re-armed (trigger cold)."""
        self._armed = False

    def state_dict(self) -> dict[str, object]:
        """JSON-able snapshot: armed flag, trigger wiring, inner state."""
        return {
            "armed": self._armed,
            "elevation_level": self._level,
            "suspend_interval": self._suspend_interval,
            "suspended_steps": self._suspended_steps,
            "inner": self._inner.state_dict(),
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot bit-identically."""
        self._armed = bool(state["armed"])
        self._level = float(state["elevation_level"])  # type: ignore[arg-type]
        self._suspend_interval = int(state["suspend_interval"])  # type: ignore[arg-type]
        self._suspended_steps = int(state["suspended_steps"])  # type: ignore[arg-type]
        self._inner.load_state_dict(state["inner"])  # type: ignore[arg-type]

    def observe(self, value: float, time_index: int,
                trigger_value: float | None = None) -> SamplingDecision:
        """Observe a sample together with the current trigger value.

        Args:
            value: the guarded task's sampled value.
            time_index: grid position of the sample.
            trigger_value: the trigger metric at the same instant; ``None``
                (trigger unavailable) defers to the :attr:`armed` flag,
                which defaults to ``True`` — conservatively elevated.
        """
        decision = self._inner.observe(value, time_index)
        if (trigger_value < self._level if trigger_value is not None
                else not self._armed):
            self._suspended_steps += 1
            idle = max(decision.next_interval, self._suspend_interval)
            return SamplingDecision(
                next_interval=idle,
                misdetection_bound=decision.misdetection_bound,
                grew=decision.grew, reset=decision.reset,
                violation=decision.violation,
            )
        return decision

    def observe_fast(self, value: float, time_index: int,
                     trigger_value: float | None = None) -> int:
        """Allocation-light twin of :meth:`observe` (DESIGN.md S27).

        Returns the next interval as a plain int — the inner scheme's
        decision, floored at the suspend interval while the trigger is
        cold. State transitions (inner sampler state, the suspended-steps
        counter) are identical to :meth:`observe`.
        """
        fast = self._inner_fast
        if fast is not None:
            interval = fast(value, time_index)
        else:
            interval = int(self._inner.observe(value, time_index)
                           .next_interval)
        if (trigger_value < self._level if trigger_value is not None
                else not self._armed):
            self._suspended_steps += 1
            if interval < self._suspend_interval:
                interval = self._suspend_interval
        return interval
