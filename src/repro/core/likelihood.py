"""Violation-likelihood estimation (paper SIII-A, Definitions 1-2, Ineq. 1-3).

A monitoring task raises a state alert when the monitored value exceeds a
threshold ``T``. After observing ``v(t1)``, the value ``i`` default intervals
later is modelled as ``v(t1) + i * delta`` where ``delta`` is the (time
independent) per-default-interval change, with online-estimated mean ``mu``
and standard deviation ``sigma``.

The one-sided Chebyshev (Cantelli) inequality bounds the violation
likelihood at step ``i`` without any distributional assumption::

    P[v(t1) + i*delta > T] = P[delta > (T - v(t1)) / i]
                          <= 1 / (1 + k^2),   k = (T - v(t1) - i*mu) / (i*sigma)

valid for ``k > 0``; when ``k <= 0`` the bound is vacuous and we use 1.

The *mis-detection rate* of a sampling interval ``I`` (in units of the
default interval) is the probability that at least one of the ``I`` skipped
grid points violates::

    beta(I) <= 1 - prod_{i=1..I} (1 - bound_i)          (Inequality 3)

All functions here are pure and operate in the canonical upper-threshold
frame (see :meth:`repro.types.ThresholdDirection.orient` for lower
thresholds).
"""

from __future__ import annotations

import math

__all__ = [
    "cantelli_upper_bound",
    "step_violation_bound",
    "misdetection_bound",
    "misdetection_bound_profile",
    "gaussian_step_violation_estimate",
    "gaussian_misdetection_estimate",
]


def cantelli_upper_bound(k: float) -> float:
    """Upper bound of ``P(X - mu >= k * sigma)`` for any distribution.

    Returns ``1 / (1 + k^2)`` for ``k > 0`` and the trivial bound 1.0 for
    ``k <= 0`` (Cantelli's inequality is one-sided and uninformative there).
    """
    if k <= 0.0:
        return 1.0
    return 1.0 / (1.0 + k * k)


def step_violation_bound(value: float, threshold: float, mean: float,
                         std: float, steps: int) -> float:
    """Bound ``P[v + steps*delta > threshold]`` via Cantelli's inequality.

    Args:
        value: current sampled value ``v(t1)``.
        threshold: violation threshold ``T``.
        mean: estimated mean of ``delta``.
        std: estimated standard deviation of ``delta`` (>= 0).
        steps: how many default intervals ahead (``i >= 1``).

    Returns:
        An upper bound in [0, 1]. Degenerate cases: with ``std == 0`` the
        change is deterministic, so the bound is 0 when the extrapolated
        value stays at or below the threshold and 1 otherwise.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if std < 0.0:
        raise ValueError(f"std must be >= 0, got {std}")
    gap = threshold - value - steps * mean
    if std == 0.0:
        return 0.0 if gap > 0.0 else 1.0
    return cantelli_upper_bound(gap / (steps * std))


def misdetection_bound(value: float, threshold: float, mean: float,
                       std: float, interval: int) -> float:
    """Upper bound of the mis-detection rate ``beta(I)`` (Inequality 3).

    The probability that a violation occurs at any of the ``interval`` grid
    points skipped before the next sample, assuming per-step changes are
    independent draws of ``delta``.

    Args:
        value: current sampled value.
        threshold: violation threshold ``T``.
        mean: estimated mean of ``delta``.
        std: estimated standard deviation of ``delta``.
        interval: candidate sampling interval ``I`` in default-interval
            units (>= 1).

    Returns:
        An upper bound on the mis-detection rate, in [0, 1].
    """
    if interval < 1:
        raise ValueError(f"interval must be >= 1, got {interval}")
    survive = 1.0
    for i in range(1, interval + 1):
        bound = step_violation_bound(value, threshold, mean, std, i)
        if bound >= 1.0:
            return 1.0
        survive *= 1.0 - bound
    return 1.0 - survive


def gaussian_step_violation_estimate(value: float, threshold: float,
                                     mean: float, std: float,
                                     steps: int) -> float:
    """Estimate ``P[v + steps*delta > threshold]`` assuming Gaussian delta.

    The distribution-*dependent* counterpart of
    :func:`step_violation_bound`: exact if ``delta ~ N(mean, std^2)``,
    unsafe otherwise. Provided for the estimator ablation — it shows how
    much of the paper's conservatism comes from Chebyshev's looseness and
    what accuracy is risked by assuming normality (the paper deliberately
    "makes no such assumptions", SVI).
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if std < 0.0:
        raise ValueError(f"std must be >= 0, got {std}")
    gap = threshold - value - steps * mean
    if std == 0.0:
        return 0.0 if gap > 0.0 else 1.0
    z = gap / (steps * std)
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def gaussian_misdetection_estimate(value: float, threshold: float,
                                   mean: float, std: float,
                                   interval: int) -> float:
    """Gaussian counterpart of :func:`misdetection_bound`.

    Same independence structure as Inequality 3, with the Cantelli bound
    replaced by the exact normal tail.
    """
    if interval < 1:
        raise ValueError(f"interval must be >= 1, got {interval}")
    survive = 1.0
    for i in range(1, interval + 1):
        p = gaussian_step_violation_estimate(value, threshold, mean, std, i)
        if p >= 1.0:
            return 1.0
        survive *= 1.0 - p
    return 1.0 - survive


def misdetection_bound_profile(value: float, threshold: float, mean: float,
                               std: float, max_interval: int) -> list[float]:
    """Return ``[beta(1), beta(2), ..., beta(max_interval)]`` in one pass.

    Useful for analysis and for choosing the largest admissible interval
    directly; shares the survival product across successive intervals so the
    whole profile costs the same as one ``misdetection_bound`` call at
    ``max_interval``.
    """
    if max_interval < 1:
        raise ValueError(f"max_interval must be >= 1, got {max_interval}")
    profile: list[float] = []
    survive = 1.0
    for i in range(1, max_interval + 1):
        bound = step_violation_bound(value, threshold, mean, std, i)
        survive *= 1.0 - bound
        profile.append(1.0 - survive)
    return profile
