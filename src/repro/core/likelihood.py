"""Violation-likelihood estimation (paper SIII-A, Definitions 1-2, Ineq. 1-3).

A monitoring task raises a state alert when the monitored value exceeds a
threshold ``T``. After observing ``v(t1)``, the value ``i`` default intervals
later is modelled as ``v(t1) + i * delta`` where ``delta`` is the (time
independent) per-default-interval change, with online-estimated mean ``mu``
and standard deviation ``sigma``.

The one-sided Chebyshev (Cantelli) inequality bounds the violation
likelihood at step ``i`` without any distributional assumption::

    P[v(t1) + i*delta > T] = P[delta > (T - v(t1)) / i]
                          <= 1 / (1 + k^2),   k = (T - v(t1) - i*mu) / (i*sigma)

valid for ``k > 0``; when ``k <= 0`` the bound is vacuous and we use 1.

The *mis-detection rate* of a sampling interval ``I`` (in units of the
default interval) is the probability that at least one of the ``I`` skipped
grid points violates::

    beta(I) <= 1 - prod_{i=1..I} (1 - bound_i)          (Inequality 3)

All functions here are pure and operate in the canonical upper-threshold
frame (see :meth:`repro.types.ThresholdDirection.orient` for lower
thresholds).

Kernel layer (DESIGN.md S27): the per-step functions above are the
*reference oracle* — obviously-correct, validated once per call, and kept
unchanged. The ``*_fused`` twins compute bit-identical values with the
invariants hoisted out of the loop (``gap0 = T - v``, ``i * std`` only)
and the Cantelli/Gaussian term inlined, so one adaptation step costs one
function call instead of ``I`` of them. :func:`max_admissible_interval`
inverts Cantelli's inequality in closed form to cap the search for the
largest admissible interval, then verifies with one incremental fused
pass — never by re-probing ``beta(I)`` per candidate.
"""

from __future__ import annotations

import math

__all__ = [
    "cantelli_upper_bound",
    "step_violation_bound",
    "misdetection_bound",
    "misdetection_bound_fused",
    "misdetection_bound_profile",
    "max_admissible_interval",
    "gaussian_step_violation_estimate",
    "gaussian_misdetection_estimate",
    "gaussian_misdetection_estimate_fused",
]

_SQRT2 = math.sqrt(2.0)
"""Hoisted ``sqrt(2)`` for the fused Gaussian kernel (bit-identical to the
per-call ``math.sqrt(2.0)`` in the reference — same double constant)."""


def cantelli_upper_bound(k: float) -> float:
    """Upper bound of ``P(X - mu >= k * sigma)`` for any distribution.

    Returns ``1 / (1 + k^2)`` for ``k > 0`` and the trivial bound 1.0 for
    ``k <= 0`` (Cantelli's inequality is one-sided and uninformative there).
    """
    if k <= 0.0:
        return 1.0
    return 1.0 / (1.0 + k * k)


def step_violation_bound(value: float, threshold: float, mean: float,
                         std: float, steps: int) -> float:
    """Bound ``P[v + steps*delta > threshold]`` via Cantelli's inequality.

    Args:
        value: current sampled value ``v(t1)``.
        threshold: violation threshold ``T``.
        mean: estimated mean of ``delta``.
        std: estimated standard deviation of ``delta`` (>= 0).
        steps: how many default intervals ahead (``i >= 1``).

    Returns:
        An upper bound in [0, 1]. Degenerate cases: with ``std == 0`` the
        change is deterministic, so the bound is 0 when the extrapolated
        value stays at or below the threshold and 1 otherwise.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if std < 0.0:
        raise ValueError(f"std must be >= 0, got {std}")
    gap = threshold - value - steps * mean
    if std == 0.0:
        return 0.0 if gap > 0.0 else 1.0
    return cantelli_upper_bound(gap / (steps * std))


def misdetection_bound(value: float, threshold: float, mean: float,
                       std: float, interval: int) -> float:
    """Upper bound of the mis-detection rate ``beta(I)`` (Inequality 3).

    The probability that a violation occurs at any of the ``interval`` grid
    points skipped before the next sample, assuming per-step changes are
    independent draws of ``delta``.

    Args:
        value: current sampled value.
        threshold: violation threshold ``T``.
        mean: estimated mean of ``delta``.
        std: estimated standard deviation of ``delta``.
        interval: candidate sampling interval ``I`` in default-interval
            units (>= 1).

    Returns:
        An upper bound on the mis-detection rate, in [0, 1].
    """
    if interval < 1:
        raise ValueError(f"interval must be >= 1, got {interval}")
    survive = 1.0
    for i in range(1, interval + 1):
        bound = step_violation_bound(value, threshold, mean, std, i)
        if bound >= 1.0:
            return 1.0
        survive *= 1.0 - bound
    return 1.0 - survive


def misdetection_bound_fused(value: float, threshold: float, mean: float,
                             std: float, interval: int) -> float:
    """Fused twin of :func:`misdetection_bound` — bit-identical, one call.

    Hoists the loop invariants (``gap0 = threshold - value``), inlines the
    Cantelli term, and exits early the moment any skipped step's bound
    reaches 1 (``gap <= 0``). Every floating-point operation is performed
    in the same order and association as the reference, so the result is
    bit-for-bit equal — the equivalence suite and the core-hotpath CI job
    enforce this. Validation is hoisted to one check per *call* instead of
    one per step; argument errors raise exactly as the reference does.
    """
    if interval < 1:
        raise ValueError(f"interval must be >= 1, got {interval}")
    if std < 0.0:
        raise ValueError(f"std must be >= 0, got {std}")
    gap0 = threshold - value
    if std == 0.0:
        # Deterministic drift: the per-step bound is 0 while
        # ``gap0 - i*mean > 0`` and 1 otherwise. The binding step is the
        # last one for non-negative drift and the first one otherwise.
        worst = interval if mean >= 0.0 else 1
        return 0.0 if gap0 - worst * mean > 0.0 else 1.0
    survive = 1.0
    for i in range(1, interval + 1):
        gap = gap0 - i * mean
        if gap <= 0.0:
            return 1.0  # Cantelli is vacuous (bound 1) at this step
        k = gap / (i * std)
        survive *= 1.0 - 1.0 / (1.0 + k * k)
    return 1.0 - survive


def gaussian_step_violation_estimate(value: float, threshold: float,
                                     mean: float, std: float,
                                     steps: int) -> float:
    """Estimate ``P[v + steps*delta > threshold]`` assuming Gaussian delta.

    The distribution-*dependent* counterpart of
    :func:`step_violation_bound`: exact if ``delta ~ N(mean, std^2)``,
    unsafe otherwise. Provided for the estimator ablation — it shows how
    much of the paper's conservatism comes from Chebyshev's looseness and
    what accuracy is risked by assuming normality (the paper deliberately
    "makes no such assumptions", SVI).
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if std < 0.0:
        raise ValueError(f"std must be >= 0, got {std}")
    gap = threshold - value - steps * mean
    if std == 0.0:
        return 0.0 if gap > 0.0 else 1.0
    z = gap / (steps * std)
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def gaussian_misdetection_estimate(value: float, threshold: float,
                                   mean: float, std: float,
                                   interval: int) -> float:
    """Gaussian counterpart of :func:`misdetection_bound`.

    Same independence structure as Inequality 3, with the Cantelli bound
    replaced by the exact normal tail.
    """
    if interval < 1:
        raise ValueError(f"interval must be >= 1, got {interval}")
    survive = 1.0
    for i in range(1, interval + 1):
        p = gaussian_step_violation_estimate(value, threshold, mean, std, i)
        if p >= 1.0:
            return 1.0
        survive *= 1.0 - p
    return 1.0 - survive


def gaussian_misdetection_estimate_fused(value: float, threshold: float,
                                         mean: float, std: float,
                                         interval: int) -> float:
    """Fused twin of :func:`gaussian_misdetection_estimate` (bit-identical).

    Same fusion as :func:`misdetection_bound_fused`: invariants hoisted,
    normal tail inlined (with ``sqrt(2)`` precomputed — the identical
    double), identical operation order, validation once per call.
    """
    if interval < 1:
        raise ValueError(f"interval must be >= 1, got {interval}")
    if std < 0.0:
        raise ValueError(f"std must be >= 0, got {std}")
    gap0 = threshold - value
    if std == 0.0:
        worst = interval if mean >= 0.0 else 1
        return 0.0 if gap0 - worst * mean > 0.0 else 1.0
    survive = 1.0
    erfc = math.erfc
    for i in range(1, interval + 1):
        p = 0.5 * erfc((gap0 - i * mean) / (i * std) / _SQRT2)
        if p >= 1.0:
            return 1.0
        survive *= 1.0 - p
    return 1.0 - survive


def misdetection_bound_profile(value: float, threshold: float, mean: float,
                               std: float, max_interval: int) -> list[float]:
    """Return ``[beta(1), beta(2), ..., beta(max_interval)]`` in one pass.

    Useful for analysis and for choosing the largest admissible interval
    directly; shares the survival product across successive intervals so the
    whole profile costs the same as one ``misdetection_bound`` call at
    ``max_interval``.

    Matches :func:`misdetection_bound` point queries exactly, including the
    saturated regime: once any step's bound reaches 1 the profile pins to
    exactly 1.0 for that and every larger interval (the point query's early
    exit), and the survival product is clamped at 0 so accumulated float
    error can never push it negative and the profile above 1.
    """
    if max_interval < 1:
        raise ValueError(f"max_interval must be >= 1, got {max_interval}")
    profile: list[float] = []
    survive = 1.0
    for i in range(1, max_interval + 1):
        bound = step_violation_bound(value, threshold, mean, std, i)
        if bound >= 1.0:
            # beta is monotone in I: a saturated step keeps every longer
            # interval saturated. Pin instead of multiplying so the profile
            # agrees bit-for-bit with misdetection_bound's early exit.
            profile.extend([1.0] * (max_interval - i + 1))
            return profile
        survive *= 1.0 - bound
        if survive < 0.0:  # defensive: bound <= 1 makes this unreachable
            survive = 0.0
        profile.append(1.0 - survive)
    return profile


def max_admissible_interval(value: float, threshold: float, mean: float,
                            std: float, err: float,
                            max_interval: int | None = None) -> int:
    """Largest interval ``I`` with ``beta(I) <= err``, 0 when none is.

    Replaces per-candidate probing (``misdetection_bound(..., I)`` for each
    ``I``, O(I^2) step evaluations) with a closed-form Cantelli inversion
    plus one incremental fused pass:

    Since ``beta(I) >= bound_i`` for every step ``i <= I`` (the product
    form of Inequality 3), an interval is admissible only if *every* step
    bound is at most ``err``. Inverting Cantelli, for ``std > 0``::

        1 / (1 + k_i^2) <= err   <=>   k_i >= k_err = sqrt((1-err)/err)

    and with ``k_i = (gap0 - i*mean) / (i*std)`` (``gap0 = T - v``, both
    sides multiplied by ``i*std > 0``)::

        gap0 >= i * (mean + k_err * std)

    so whenever ``mean + k_err*std > 0`` no interval beyond
    ``gap0 / (mean + k_err*std)`` can be admissible. The verification pass
    shares its survival product across candidates (cost O(answer), not
    O(answer^2)) and evaluates ``beta`` with the same float operations as
    :func:`misdetection_bound_fused`, so the returned interval agrees
    exactly with what reference point queries would select.

    Args:
        value / threshold / mean / std: as :func:`misdetection_bound`.
        err: the error allowance in [0, 1].
        max_interval: cap on the answer (the task's ``Im``). ``None`` means
            uncapped — then a configuration with no finite answer
            (``std == 0`` with non-positive drift, ``err >= 1``, or drift
            negative enough that the Cantelli inversion yields no bound)
            raises :class:`ValueError`.

    Returns:
        The largest admissible interval, clamped to ``max_interval``;
        0 when even ``I = 1`` violates the allowance.
    """
    if std < 0.0:
        raise ValueError(f"std must be >= 0, got {std}")
    if not 0.0 <= err <= 1.0:
        raise ValueError(f"err must be in [0, 1], got {err}")
    if max_interval is not None and max_interval < 1:
        raise ValueError(f"max_interval must be >= 1, got {max_interval}")

    gap0 = threshold - value
    if err >= 1.0:
        # Everything is admissible; only a cap makes the answer finite.
        if max_interval is None:
            raise ValueError("err >= 1 admits every interval; "
                             "pass max_interval")
        return max_interval
    if gap0 - mean <= 0.0:
        # Step 1 is already vacuous (its Cantelli/Gaussian argument is
        # non-positive), and every beta(I) includes step 1 in its product:
        # beta(I) = 1 > err for all I. Note gap0 <= 0 alone is NOT enough —
        # negative drift (mean < 0) can keep every step's gap positive even
        # from at/above the threshold.
        return 0
    if std == 0.0:
        # Deterministic drift: beta(I) is 0 while gap0 - I*mean > 0
        # (non-negative drift binds at the last step) and jumps to 1 after.
        if mean <= 0.0:
            if max_interval is None:
                raise ValueError("deterministic non-violating trace admits "
                                 "every interval; pass max_interval")
            return max_interval
        # Largest I with gap0 - I*mean > 0, evaluated with the same float
        # arithmetic as the reference kernels; the closed form seeds the
        # answer and the float test nudges it across any rounding edge.
        ratio = gap0 / mean
        if not math.isfinite(ratio) or (max_interval is not None
                                        and ratio > 2.0 * max_interval):
            if max_interval is None:
                raise ValueError("deterministic crossing beyond any finite "
                                 "horizon; pass max_interval")
            return max_interval
        limit = max(math.ceil(ratio) - 1, 0)
        while limit > 0 and not gap0 - limit * mean > 0.0:
            limit -= 1
        while gap0 - (limit + 1) * mean > 0.0:
            limit += 1
        return limit if max_interval is None else min(limit, max_interval)
    # err <= 0 deliberately falls through to the verification pass: every
    # stochastic step's *exact* bound is strictly positive, but the
    # kernel's computed beta can round to exactly 0.0 (huge k underflows
    # the Cantelli term out of the survival product), and those intervals
    # ARE admissible by reference point queries.

    # Closed-form cap from the Cantelli inversion. The inversion is exact
    # in real arithmetic; the kernel's computed beta can sit below the
    # exact bound by the product chain's accumulated rounding, so the
    # allowance is padded by an absolute slack that dominates that error
    # for any realistic horizon (~1e6 steps), plus +1 on the division.
    # The verification pass below uses the exact kernel float sequence,
    # so the cap only needs to be an upper bound, never tight.
    err_eff = err + 1e-9
    cap = max_interval
    if err_eff < 1.0:
        k_err = math.sqrt((1.0 - err_eff) / err_eff)
        denom = mean + k_err * std
        if denom > 0.0:
            inverted = int(gap0 / denom) + 1
            cap = inverted if cap is None else min(cap, inverted)
    if cap is None:
        # Drift so negative that no step can exceed the allowance within
        # the inversion: the numeric answer is unbounded (the survival
        # product stalls at 1.0), so a finite horizon is required.
        raise ValueError("admissible intervals are unbounded under "
                         "dominant negative drift; pass max_interval")

    best = 0
    survive = 1.0
    for i in range(1, cap + 1):
        gap = gap0 - i * mean
        if gap <= 0.0:
            break
        k = gap / (i * std)
        survive *= 1.0 - 1.0 / (1.0 + k * k)
        if 1.0 - survive > err:
            break
        best = i
    return best
