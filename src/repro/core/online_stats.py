"""Online statistics over the inter-sample change ``delta`` (paper SIII-B).

The adaptation algorithm needs the mean and variance of the per-default-
interval change ``delta`` of the monitored value. The paper maintains both
with Knuth/Welford-style online updates so no history scan is required:

* ``mu_n   = mu_{n-1} + (x - mu_{n-1}) / n``
* ``var_n  = ((n-1) * var_{n-1} + (x - mu_n) * (x - mu_{n-1})) / n``

and *restarts* the statistics (``n = 0``) once ``n`` exceeds 1000 samples so
the estimates track the most recent distribution.

Faithfulness note: a literal restart throws away ``mu``/``sigma`` entirely,
which would leave the estimator with a degenerate ``sigma = 0`` for the next
couple of samples. :class:`OnlineStatistics` therefore keeps the pre-restart
values as a *stale estimate* that is served until ``min_fresh`` new samples
have accumulated; the restart semantics (``n`` reset, new data dominates) are
otherwise exactly the paper's.
"""

from __future__ import annotations

import math
from collections import deque

from repro.exceptions import ConfigurationError

__all__ = ["OnlineStatistics", "WindowedStatistics"]


class OnlineStatistics:
    """Welford online mean/variance with periodic restart.

    Args:
        restart_after: restart the accumulation once more than this many
            samples were absorbed (paper: 1000). ``None`` disables restarts.
        min_fresh: after a restart, keep serving the previous (stale)
            estimates until this many fresh samples arrived.

    The reported :attr:`variance` is the population variance, matching the
    paper's update rule (division by ``n``).
    """

    __slots__ = ("_restart_after", "_min_fresh", "_n", "_mean", "_var",
                 "_stale_mean", "_stale_var", "_stale_count", "_restarts",
                 "_total_count")

    def __init__(self, restart_after: int | None = 1000, min_fresh: int = 10):
        if restart_after is not None and restart_after < 2:
            raise ConfigurationError(
                f"restart_after must be >= 2 or None, got {restart_after}")
        if min_fresh < 1:
            raise ConfigurationError(f"min_fresh must be >= 1, got {min_fresh}")
        self._restart_after = restart_after
        self._min_fresh = min_fresh
        self._n = 0
        self._mean = 0.0
        self._var = 0.0
        self._stale_mean: float | None = None
        self._stale_var: float | None = None
        self._stale_count = 0
        self._restarts = 0
        self._total_count = 0

    def update(self, x: float) -> None:
        """Absorb one observation of ``delta``."""
        if not math.isfinite(x):
            raise ValueError(f"non-finite observation: {x!r}")
        self._n += 1
        self._total_count += 1
        n = self._n
        prev_mean = self._mean
        mean = prev_mean + (x - prev_mean) / n
        self._mean = mean
        self._var = ((n - 1) * self._var + (x - mean) * (x - prev_mean)) / n
        if self._restart_after is not None and n > self._restart_after:
            self._restart()

    def _restart(self) -> None:
        """Restart accumulation, keeping current estimates as stale values."""
        self._stale_mean = self._mean
        self._stale_var = self._var
        self._stale_count = self._n
        self._n = 0
        self._mean = 0.0
        self._var = 0.0
        self._restarts += 1

    def reset(self) -> None:
        """Drop all state including stale estimates."""
        self._n = 0
        self._mean = 0.0
        self._var = 0.0
        self._stale_mean = None
        self._stale_var = None
        self._stale_count = 0
        self._total_count = 0

    def state_dict(self) -> dict[str, object]:
        """Return the mutable accumulator state as a JSON-able dict.

        Constructor parameters (``restart_after``, ``min_fresh``) are *not*
        included — a restoring caller rebuilds the object from its own
        configuration and then loads this state, so checkpoints stay valid
        across tuning changes.
        """
        return {
            "n": self._n,
            "mean": self._mean,
            "var": self._var,
            "stale_mean": self._stale_mean,
            "stale_var": self._stale_var,
            "stale_count": self._stale_count,
            "restarts": self._restarts,
            "total_count": self._total_count,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore accumulator state produced by :meth:`state_dict`."""
        self._n = int(state["n"])  # type: ignore[arg-type]
        self._mean = float(state["mean"])  # type: ignore[arg-type]
        self._var = float(state["var"])  # type: ignore[arg-type]
        stale_mean = state.get("stale_mean")
        stale_var = state.get("stale_var")
        self._stale_mean = None if stale_mean is None else float(stale_mean)  # type: ignore[arg-type]
        self._stale_var = None if stale_var is None else float(stale_var)  # type: ignore[arg-type]
        self._stale_count = int(state.get("stale_count", 0))  # type: ignore[arg-type]
        self._restarts = int(state.get("restarts", 0))  # type: ignore[arg-type]
        self._total_count = int(state.get("total_count", 0))  # type: ignore[arg-type]

    @property
    def count(self) -> int:
        """Samples absorbed since the last restart."""
        return self._n

    @property
    def total_count(self) -> int:
        """Samples absorbed over the object's lifetime (across restarts)."""
        return self._total_count

    @property
    def restarts(self) -> int:
        """Number of restarts performed so far."""
        return self._restarts

    @property
    def effective_count(self) -> int:
        """Count backing the currently served estimates.

        Right after a restart this is the stale accumulation's count, so
        consumers gating on "enough samples" keep working across restarts.
        """
        if self._serving_stale():
            return self._stale_count
        return self._n

    def _serving_stale(self) -> bool:
        return (self._stale_mean is not None
                and self._n < self._min_fresh)

    @property
    def mean(self) -> float:
        """Current mean estimate of ``delta``."""
        if self._serving_stale():
            assert self._stale_mean is not None
            return self._stale_mean
        return self._mean

    @property
    def variance(self) -> float:
        """Current population-variance estimate of ``delta``."""
        if self._serving_stale():
            assert self._stale_var is not None
            return self._stale_var
        # Guard against tiny negative values from floating-point cancellation.
        return max(self._var, 0.0)

    @property
    def std(self) -> float:
        """Current standard-deviation estimate of ``delta``."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"OnlineStatistics(n={self._n}, mean={self.mean:.6g}, "
                f"std={self.std:.6g}, restarts={self._restarts})")


class WindowedStatistics:
    """Sliding-window mean/variance over the last ``window`` observations.

    An alternative estimator used by ablation benchmarks to contrast the
    paper's restart scheme with a plain rolling window. Maintains running
    sums; variance is the population variance of the window contents.
    """

    __slots__ = ("_window", "_buf", "_sum", "_sumsq")

    def __init__(self, window: int = 256):
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        self._window = window
        self._buf: deque[float] = deque()
        self._sum = 0.0
        self._sumsq = 0.0

    def update(self, x: float) -> None:
        """Absorb one observation, evicting the oldest when full."""
        if not math.isfinite(x):
            raise ValueError(f"non-finite observation: {x!r}")
        self._buf.append(x)
        self._sum += x
        self._sumsq += x * x
        if len(self._buf) > self._window:
            old = self._buf.popleft()
            self._sum -= old
            self._sumsq -= old * old

    def reset(self) -> None:
        """Drop all window contents."""
        self._buf.clear()
        self._sum = 0.0
        self._sumsq = 0.0

    @property
    def count(self) -> int:
        """Number of observations currently in the window."""
        return len(self._buf)

    # The alias lets WindowedStatistics plug into code written against
    # OnlineStatistics' gating interface.
    effective_count = count

    @property
    def mean(self) -> float:
        """Mean of the current window (0.0 when empty)."""
        n = len(self._buf)
        if n == 0:
            return 0.0
        return self._sum / n

    @property
    def variance(self) -> float:
        """Population variance of the current window (0.0 when empty)."""
        n = len(self._buf)
        if n == 0:
            return 0.0
        m = self._sum / n
        # Recompute from running sums; clamp fp cancellation noise.
        return max(self._sumsq / n - m * m, 0.0)

    @property
    def std(self) -> float:
        """Standard deviation of the current window."""
        return math.sqrt(self.variance)
