"""Sampling-scheme protocol shared by Volley and the baselines.

Any object exposing ``observe(value, time_index) -> SamplingDecision`` and an
``interval`` property can drive a monitor: the experiment runners and the
datacenter monitor daemons are written against this protocol, so adaptive
sampling (:class:`repro.core.adaptation.ViolationLikelihoodSampler`),
periodic sampling and the oracle baseline are interchangeable.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.adaptation import SamplingDecision

__all__ = ["SamplingScheme", "SamplingDecision"]


@runtime_checkable
class SamplingScheme(Protocol):
    """Structural interface of a sampling scheme."""

    @property
    def interval(self) -> int:
        """Current sampling interval in default-interval units."""
        ...

    def observe(self, value: float, time_index: int) -> SamplingDecision:
        """Absorb a sampled value; return the decision for the next sample."""
        ...
