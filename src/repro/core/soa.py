"""Structure-of-arrays sampler engine (DESIGN.md S31).

:class:`SoaSamplerEngine` advances *many* tasks' violation-likelihood
samplers as column vectors per tick — the multi-task analogue of
:meth:`~repro.core.adaptation.ViolationLikelihoodSampler.run_trace`,
which batches one task over many steps. A tick is a set of offers with at
most one offer per task; :meth:`run_columns` splits an arbitrary decoded
offer batch into such ticks (stable-sorted occurrence splitting) so every
task still sees its updates in arrival order.

Bit-equivalence contract
------------------------

Every row's state trajectory is bit-identical to driving a scalar
:class:`~repro.core.adaptation.ViolationLikelihoodSampler` through
:meth:`~repro.service.MonitoringService.offer_fast` with the same
(value, step) stream: the vectorised Welford / restart / stale-serving /
Cantelli / AIMD / coordination math performs the same floating-point
operations in the same order and association per element (numpy float64
arithmetic is IEEE-754 double, exactly CPython's float). Two operations
are *not* vectorised because their numpy kernels are not guaranteed
bit-identical to libm: ``log`` (coordination accumulator) and ``erfc``
(gaussian estimator) run element-wise through :mod:`math` over the — much
smaller — consumed subset. ``sqrt`` and the arithmetic primitives are
correctly rounded by IEEE and safe to vectorise.

State moves between the scalar and columnar representations through the
sampler ``state_dict`` format (:meth:`SoaSamplerEngine.row_state_dict` /
:meth:`SoaSamplerEngine.load_row_state`), so checkpoints, snapshot
fingerprints and live migration stay byte-compatible with scalar-only
peers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core import adaptation as _adaptation
from repro.core.adaptation import _MIN_ERROR_NEEDED, AdaptationConfig
from repro.core.task import TaskSpec
from repro.exceptions import ConfigurationError

__all__ = ["SoaSamplerEngine", "ColumnBatchResult"]

_SQRT2 = math.sqrt(2.0)  # the identical double to likelihood._SQRT2

# Stand-in for "restarts disabled": no real stream reaches 2**62 samples,
# so `n > limit` never fires (mirrors run_trace's unreachable bound).
_NO_RESTART = 2 ** 62

_EMPTY_I8 = np.empty(0, dtype=np.int64)
_EMPTY_F8 = np.empty(0, dtype=np.float64)


@dataclass
class ColumnBatchResult:
    """Outcome of one :meth:`SoaSamplerEngine.run_columns` call.

    ``fallback`` holds positions (into the input arrays) whose rows are no
    longer engine-managed — the caller re-drives those by name through the
    scalar path, which is always correct. The ``viol_*`` / ``adapt_*``
    arrays carry the rare alert/trace-worthy events for the service to
    materialise.
    """

    applied: int = 0
    consumed: int = 0
    rejected: int = 0
    consumed_intervals: np.ndarray = field(
        default_factory=lambda: _EMPTY_I8)
    fallback: np.ndarray = field(default_factory=lambda: _EMPTY_I8)
    viol_rows: np.ndarray = field(default_factory=lambda: _EMPTY_I8)
    viol_steps: np.ndarray = field(default_factory=lambda: _EMPTY_I8)
    viol_values: np.ndarray = field(default_factory=lambda: _EMPTY_F8)
    adapt_rows: np.ndarray = field(default_factory=lambda: _EMPTY_I8)
    adapt_steps: np.ndarray = field(default_factory=lambda: _EMPTY_I8)
    adapt_intervals: np.ndarray = field(default_factory=lambda: _EMPTY_I8)
    adapt_flags: np.ndarray = field(default_factory=lambda: _EMPTY_I8)
    adapt_betas: np.ndarray = field(default_factory=lambda: _EMPTY_F8)


class SoaSamplerEngine:
    """Columnar storage + vectorised stepping for many samplers.

    Rows are allocated by :meth:`add_task` and never reused: a removed or
    evicted task's row is deactivated, so stale row references held by
    long-lived connections degrade to an explicit fallback instead of
    silently hitting another task's state.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {capacity}")
        self._rows = 0
        self._alloc(capacity)

    def _alloc(self, capacity: int) -> None:
        i8 = lambda: np.zeros(capacity, dtype=np.int64)  # noqa: E731
        f8 = lambda: np.zeros(capacity, dtype=np.float64)  # noqa: E731
        b1 = lambda: np.zeros(capacity, dtype=bool)  # noqa: E731
        # Per-row invariants (from TaskSpec / AdaptationConfig).
        self.sign = f8()
        self.threshold = f8()          # oriented (upper-frame) threshold
        self.alert_threshold = f8()    # raw spec threshold, for Alert dicts
        self.err = f8()                # error allowance (coordinator-tunable)
        self.max_interval = i8()
        self.patience = i8()
        self.min_samples = i8()
        self.one_minus_slack = f8()
        self.use_cheb = b1()
        self.restart_limit = i8()
        self.min_fresh = i8()
        # Sampler mutable state (ViolationLikelihoodSampler slots).
        self.interval = i8()
        self.streak = i8()
        self.last_value = f8()
        self.has_last = b1()
        self.last_time = i8()
        self.observations = i8()
        self.grow_events = i8()
        self.reset_events = i8()
        self.coord_sum_r = f8()
        self.coord_sum_log_e = f8()
        self.coord_n = i8()
        self.last_beta = f8()
        self.last_flags = i8()
        # OnlineStatistics mutable state.
        self.stat_n = i8()
        self.mean = f8()
        self.var = f8()
        self.stale_mean = f8()
        self.stale_var = f8()
        self.has_stale = b1()
        self.stale_count = i8()
        self.restarts = i8()
        self.total_count = i8()
        # Service-level schedule state (MonitoringService.TaskState).
        self.next_due = i8()
        self.samples_taken = i8()
        self.last_offered = f8()
        self.has_offered = b1()
        self.active = b1()

    _COLUMNS = (
        "sign", "threshold", "alert_threshold", "err", "max_interval",
        "patience", "min_samples", "one_minus_slack", "use_cheb",
        "restart_limit", "min_fresh", "interval", "streak", "last_value",
        "has_last", "last_time", "observations", "grow_events",
        "reset_events", "coord_sum_r", "coord_sum_log_e", "coord_n",
        "last_beta", "last_flags", "stat_n", "mean", "var", "stale_mean",
        "stale_var", "has_stale", "stale_count", "restarts", "total_count",
        "next_due", "samples_taken", "last_offered", "has_offered",
        "active")

    def __len__(self) -> int:
        return self._rows

    def _grow(self) -> None:
        for name in self._COLUMNS:
            old = getattr(self, name)
            new = np.zeros(len(old) * 2, dtype=old.dtype)
            new[:len(old)] = old
            setattr(self, name, new)

    # ------------------------------------------------------------------
    # Row lifecycle

    def add_task(self, task: TaskSpec,
                 config: AdaptationConfig | None = None) -> int:
        """Allocate a row for ``task`` in its scalar-fresh initial state."""
        config = config or AdaptationConfig()
        if self._rows == len(self.sign):
            self._grow()
        row = self._rows
        self._rows += 1
        sign, threshold = task.oriented()
        self.sign[row] = sign
        self.threshold[row] = threshold
        self.alert_threshold[row] = task.threshold
        self.err[row] = task.error_allowance
        self.max_interval[row] = task.max_interval
        self.patience[row] = config.patience
        self.min_samples[row] = config.min_samples
        self.one_minus_slack[row] = 1.0 - config.slack_ratio
        self.use_cheb[row] = config.estimator == "chebyshev"
        self.restart_limit[row] = (_NO_RESTART if config.stats_restart
                                   is None else config.stats_restart)
        self.min_fresh[row] = config.min_samples
        self.interval[row] = 1
        self.streak[row] = 0
        self.has_last[row] = False
        self.last_beta[row] = 1.0
        self.last_flags[row] = 0
        self.next_due[row] = 0
        self.samples_taken[row] = 0
        self.has_offered[row] = False
        self.active[row] = True
        return row

    def deactivate(self, row: int) -> None:
        """Retire a row; offers routed to it fall back / reject."""
        self.active[row] = False

    # ------------------------------------------------------------------
    # state_dict round-trip (checkpoint v2 compatibility)

    def row_state_dict(self, row: int) -> dict[str, Any]:
        """The row's sampler state in the exact scalar ``state_dict`` shape.

        Every value is a plain Python type, so the dict feeds straight
        into :meth:`ViolationLikelihoodSampler.load_state_dict`, JSON
        canonicalisation and checkpoint fingerprints.
        """
        has_last = bool(self.has_last[row])
        has_stale = bool(self.has_stale[row])
        return {
            "interval": int(self.interval[row]),
            "streak": int(self.streak[row]),
            "last_value": float(self.last_value[row]) if has_last else None,
            "last_time": int(self.last_time[row]) if has_last else None,
            "error_allowance": float(self.err[row]),
            "observations": int(self.observations[row]),
            "grow_events": int(self.grow_events[row]),
            "reset_events": int(self.reset_events[row]),
            "coord_sum_r": float(self.coord_sum_r[row]),
            "coord_sum_log_e": float(self.coord_sum_log_e[row]),
            "coord_n": int(self.coord_n[row]),
            "stats": {
                "n": int(self.stat_n[row]),
                "mean": float(self.mean[row]),
                "var": float(self.var[row]),
                "stale_mean": (float(self.stale_mean[row])
                               if has_stale else None),
                "stale_var": (float(self.stale_var[row])
                              if has_stale else None),
                "stale_count": int(self.stale_count[row]),
                "restarts": int(self.restarts[row]),
                "total_count": int(self.total_count[row]),
            },
        }

    def load_row_state(self, row: int, state: dict[str, Any]) -> None:
        """Load a scalar sampler ``state_dict`` into the row."""
        self.interval[row] = int(state["interval"])
        self.streak[row] = int(state["streak"])
        last_value = state.get("last_value")
        last_time = state.get("last_time")
        self.has_last[row] = last_time is not None
        self.last_value[row] = (0.0 if last_value is None
                                else float(last_value))
        self.last_time[row] = 0 if last_time is None else int(last_time)
        err = float(state["error_allowance"])
        if not 0.0 <= err <= 1.0:
            raise ConfigurationError(
                f"error allowance must be in [0, 1], got {err}")
        self.err[row] = err
        self.observations[row] = int(state.get("observations", 0))
        self.grow_events[row] = int(state.get("grow_events", 0))
        self.reset_events[row] = int(state.get("reset_events", 0))
        self.coord_sum_r[row] = float(state.get("coord_sum_r", 0.0))
        self.coord_sum_log_e[row] = float(state.get("coord_sum_log_e", 0.0))
        self.coord_n[row] = int(state.get("coord_n", 0))
        stats = state["stats"]
        self.stat_n[row] = int(stats["n"])
        self.mean[row] = float(stats["mean"])
        self.var[row] = float(stats["var"])
        stale_mean = stats.get("stale_mean")
        stale_var = stats.get("stale_var")
        self.has_stale[row] = stale_mean is not None
        self.stale_mean[row] = (0.0 if stale_mean is None
                                else float(stale_mean))
        self.stale_var[row] = 0.0 if stale_var is None else float(stale_var)
        self.stale_count[row] = int(stats.get("stale_count", 0))
        self.restarts[row] = int(stats.get("restarts", 0))
        self.total_count[row] = int(stats.get("total_count", 0))

    # ------------------------------------------------------------------
    # Scalar drive surface (mixed JSON/binary traffic to the same task)

    def observe_one(self, row: int, value: float, step: int) -> int:
        """Advance one row by one offer; returns the next interval.

        The exact scalar-math mirror of
        :meth:`ViolationLikelihoodSampler.observe_fast` operating on
        column storage — the by-name JSON path and the columnar path may
        interleave freely on the same task without representation sync.
        """
        v = float(self.sign[row]) * value
        threshold = float(self.threshold[row])
        flags = 4 if v > threshold else 0
        self.observations[row] += 1

        if self.has_last[row]:
            steps = step - int(self.last_time[row])
            if steps <= 0:
                raise ValueError(
                    f"time_index must increase: {step} after "
                    f"{int(self.last_time[row])}")
            x = (v - float(self.last_value[row])) / steps
            if not math.isfinite(x):
                raise ValueError(f"non-finite observation: {x!r}")
            n_acc = int(self.stat_n[row]) + 1
            self.total_count[row] += 1
            prev_mean = float(self.mean[row])
            mean_acc = prev_mean + (x - prev_mean) / n_acc
            var_acc = ((n_acc - 1) * float(self.var[row])
                       + (x - mean_acc) * (x - prev_mean)) / n_acc
            if n_acc > int(self.restart_limit[row]):
                self.stale_mean[row] = mean_acc
                self.stale_var[row] = var_acc
                self.stale_count[row] = n_acc
                self.has_stale[row] = True
                self.restarts[row] += 1
                n_acc = 0
                mean_acc = 0.0
                var_acc = 0.0
            self.stat_n[row] = n_acc
            self.mean[row] = mean_acc
            self.var[row] = var_acc
        self.last_value[row] = v
        self.last_time[row] = step
        self.has_last[row] = True

        n_acc = int(self.stat_n[row])
        if self.has_stale[row] and n_acc < int(self.min_fresh[row]):
            eff = int(self.stale_count[row])
            mean_est = float(self.stale_mean[row])
            var_est = float(self.stale_var[row])
        else:
            eff = n_acc
            mean_est = float(self.mean[row])
            var_est = max(float(self.var[row]), 0.0)

        interval = int(self.interval[row])
        if eff >= int(self.min_samples[row]):
            std_est = math.sqrt(var_est)
            gap0 = threshold - v
            if std_est == 0.0:
                worst = interval if mean_est >= 0.0 else 1
                beta = 0.0 if gap0 - worst * mean_est > 0.0 else 1.0
            elif self.use_cheb[row]:
                survive = 1.0
                for i in range(1, interval + 1):
                    gap = gap0 - i * mean_est
                    if gap <= 0.0:
                        beta = 1.0
                        break
                    k = gap / (i * std_est)
                    survive *= 1.0 - 1.0 / (1.0 + k * k)
                else:
                    beta = 1.0 - survive
            else:
                survive = 1.0
                for i in range(1, interval + 1):
                    p = 0.5 * math.erfc(
                        (gap0 - i * mean_est) / (i * std_est) / _SQRT2)
                    if p >= 1.0:
                        beta = 1.0
                        break
                    survive *= 1.0 - p
                else:
                    beta = 1.0 - survive
        else:
            beta = 1.0

        err = float(self.err[row])
        one_minus_slack = float(self.one_minus_slack[row])
        streak = int(self.streak[row])
        if err <= 0.0:
            if interval != 1:
                interval = 1
                flags |= 2
            streak = 0
        elif beta > err:
            if interval != 1:
                flags |= 2
                interval = 1
                self.reset_events[row] += 1
            streak = 0
        elif beta <= one_minus_slack * err:
            streak += 1
            if streak >= int(self.patience[row]):
                streak = 0
                if interval < int(self.max_interval[row]):
                    interval += 1
                    flags |= 1
                    self.grow_events[row] += 1
        else:
            streak = 0

        if interval < int(self.max_interval[row]):
            self.coord_sum_r[row] += (1.0 / interval
                                      - 1.0 / (interval + 1.0))
        self.coord_sum_log_e[row] += math.log(
            max(beta / one_minus_slack, _MIN_ERROR_NEEDED))
        self.coord_n[row] += 1

        self.interval[row] = interval
        self.streak[row] = streak
        self.last_beta[row] = beta
        self.last_flags[row] = flags

        metrics = _adaptation._SAMPLER_METRICS
        if metrics.enabled:
            metrics.observations += 1
            if flags:
                if flags & 1:
                    metrics.grow_events += 1
                if flags & 2:
                    metrics.reset_events += 1
                if flags & 4:
                    metrics.violations += 1
        return interval

    # ------------------------------------------------------------------
    # Vectorised drive surface

    def run_columns(self, rows: np.ndarray, steps: np.ndarray,
                    values: np.ndarray) -> ColumnBatchResult:
        """Apply a decoded offer batch (may repeat rows) to the columns.

        Splits the batch into ticks — one occurrence per row, in arrival
        order — and advances each tick vectorised. Inactive rows are
        reported back as ``fallback`` positions instead of being applied.
        """
        result = ColumnBatchResult()
        if len(rows) == 0:
            return result
        act = self.active[rows]
        if not act.all():
            result.fallback = np.flatnonzero(~act)
            keep = np.flatnonzero(act)
            rows = rows[keep]
            steps = steps[keep]
            values = values[keep]
            if len(rows) == 0:
                return result

        # Occurrence splitting: a stable sort groups equal rows while
        # preserving their arrival order, so occurrence k of every row can
        # be processed in tick k.
        order = np.argsort(rows, kind="stable")
        sorted_rows = rows[order]
        new_group = np.empty(len(sorted_rows), dtype=bool)
        new_group[0] = True
        np.not_equal(sorted_rows[1:], sorted_rows[:-1], out=new_group[1:])
        group_starts = np.flatnonzero(new_group)
        group_ids = np.cumsum(new_group) - 1
        occurrence = np.arange(len(sorted_rows)) - group_starts[group_ids]
        max_occ = int(occurrence.max())

        viol_r: list[np.ndarray] = []
        viol_s: list[np.ndarray] = []
        viol_v: list[np.ndarray] = []
        adapt_r: list[np.ndarray] = []
        adapt_s: list[np.ndarray] = []
        adapt_i: list[np.ndarray] = []
        adapt_f: list[np.ndarray] = []
        adapt_b: list[np.ndarray] = []
        intervals: list[np.ndarray] = []

        for k in range(max_occ + 1):
            sel = order[occurrence == k]
            tick_rows = rows[sel]
            tick_steps = steps[sel]
            tick_values = values[sel]
            # The last-offered columns mirror offer_fast's unconditional
            # last-seen refresh (before the due check); per-tick scatter
            # keeps "latest occurrence wins" exact under duplicates.
            self.last_offered[tick_rows] = tick_values
            self.has_offered[tick_rows] = True
            due = tick_steps >= self.next_due[tick_rows]
            not_due = int(len(sel) - due.sum())
            result.applied += not_due
            if not due.all():
                d = np.flatnonzero(due)
                tick_rows = tick_rows[d]
                tick_steps = tick_steps[d]
                tick_values = tick_values[d]
            if len(tick_rows) == 0:
                continue
            tick = self._observe_tick(tick_rows, tick_values, tick_steps)
            (ok_rows, ok_steps, ok_values, iv_new, flags, beta,
             n_rejected) = tick
            result.rejected += n_rejected
            result.applied += len(ok_rows)
            result.consumed += len(ok_rows)
            if len(ok_rows) == 0:
                continue
            # Schedule advance (no triggers on engine rows by
            # construction, so the gate is just max(1, interval)).
            self.next_due[ok_rows] = ok_steps + np.maximum(iv_new, 1)
            self.samples_taken[ok_rows] += 1
            intervals.append(iv_new)
            viol = (flags & 4) != 0
            if viol.any():
                viol_r.append(ok_rows[viol])
                viol_s.append(ok_steps[viol])
                viol_v.append(ok_values[viol])
            adapted = (flags & 3) != 0
            if adapted.any():
                adapt_r.append(ok_rows[adapted])
                adapt_s.append(ok_steps[adapted])
                adapt_i.append(iv_new[adapted])
                adapt_f.append(flags[adapted])
                adapt_b.append(beta[adapted])

        if intervals:
            result.consumed_intervals = (intervals[0] if len(intervals) == 1
                                         else np.concatenate(intervals))
        if viol_r:
            result.viol_rows = np.concatenate(viol_r)
            result.viol_steps = np.concatenate(viol_s)
            result.viol_values = np.concatenate(viol_v)
        if adapt_r:
            result.adapt_rows = np.concatenate(adapt_r)
            result.adapt_steps = np.concatenate(adapt_s)
            result.adapt_intervals = np.concatenate(adapt_i)
            result.adapt_flags = np.concatenate(adapt_f)
            result.adapt_betas = np.concatenate(adapt_b)
        return result

    def _observe_tick(self, rows: np.ndarray, values: np.ndarray,
                      steps: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                                  np.ndarray, np.ndarray,
                                                  np.ndarray, np.ndarray,
                                                  int]:
        """Advance unique ``rows`` by one offer each (all due and active).

        Returns ``(rows, steps, raw_values, new_intervals, flags, beta,
        rejected)`` for the accepted subset. Matches the scalar error
        contract: a non-increasing step or non-finite delta rejects only
        that row's offer, after the observation counter bump, leaving all
        other state untouched.
        """
        v = self.sign[rows] * values
        viol = v > self.threshold[rows]
        self.observations[rows] += 1

        has = self.has_last[rows]
        dt = steps - self.last_time[rows]
        with np.errstate(all="ignore"):
            x = (v - self.last_value[rows]) / dt.astype(np.float64)
            bad = has & ((dt <= 0) | ~np.isfinite(x))
            if bad.any():
                ok = np.flatnonzero(~bad)
                rejected = int(bad.sum())
                rows = rows[ok]
                steps = steps[ok]
                values = values[ok]
                v = v[ok]
                viol = viol[ok]
                has = has[ok]
                dt = dt[ok]
                x = x[ok]
            else:
                rejected = 0
            if len(rows) == 0:
                return (rows, steps, values, _EMPTY_I8, _EMPTY_I8,
                        _EMPTY_F8, rejected)

            # Welford update with restart (OnlineStatistics.update).
            if has.any():
                ur = rows[has]
                ux = x[has]
                n_acc = self.stat_n[ur] + 1
                self.total_count[ur] += 1
                prev_mean = self.mean[ur]
                mean_acc = prev_mean + (ux - prev_mean) / n_acc
                var_acc = ((n_acc - 1) * self.var[ur]
                           + (ux - mean_acc) * (ux - prev_mean)) / n_acc
                restart = n_acc > self.restart_limit[ur]
                if restart.any():
                    rr = ur[restart]
                    self.stale_mean[rr] = mean_acc[restart]
                    self.stale_var[rr] = var_acc[restart]
                    self.stale_count[rr] = n_acc[restart]
                    self.has_stale[rr] = True
                    self.restarts[rr] += 1
                    n_acc = np.where(restart, 0, n_acc)
                    mean_acc = np.where(restart, 0.0, mean_acc)
                    var_acc = np.where(restart, 0.0, var_acc)
                self.stat_n[ur] = n_acc
                self.mean[ur] = mean_acc
                self.var[ur] = var_acc
            self.last_value[rows] = v
            self.last_time[rows] = steps
            self.has_last[rows] = True

            # Stale serving (OnlineStatistics mean/variance/effective_count).
            n_cur = self.stat_n[rows]
            serving = self.has_stale[rows] & (n_cur < self.min_fresh[rows])
            eff = np.where(serving, self.stale_count[rows], n_cur)
            mean_est = np.where(serving, self.stale_mean[rows],
                                self.mean[rows])
            var_est = np.where(serving, self.stale_var[rows],
                               np.maximum(self.var[rows], 0.0))

            interval = self.interval[rows]
            beta = np.ones(len(rows), dtype=np.float64)
            trusted = eff >= self.min_samples[rows]
            if trusted.any():
                ti = np.flatnonzero(trusted)
                beta[ti] = self._kernel(
                    v[ti], self.threshold[rows[ti]], mean_est[ti],
                    var_est[ti], interval[ti], self.use_cheb[rows[ti]])

            # AIMD interval adaptation.
            err = self.err[rows]
            one_minus_slack = self.one_minus_slack[rows]
            max_interval = self.max_interval[rows]
            flags = np.where(viol, 4, 0).astype(np.int64)
            zero_err = err <= 0.0
            reset_m = ~zero_err & (beta > err)
            grow_zone = (~zero_err & ~reset_m
                         & (beta <= one_minus_slack * err))
            to_one = zero_err | reset_m
            ne1 = interval != 1
            flags = np.where(to_one & ne1, flags | 2, flags)
            counted_reset = reset_m & ne1
            if counted_reset.any():
                self.reset_events[rows[counted_reset]] += 1
            streak = np.where(grow_zone, self.streak[rows] + 1, 0)
            fired = grow_zone & (streak >= self.patience[rows])
            streak = np.where(fired, 0, streak)
            grew = fired & (interval < max_interval)
            iv_new = np.where(to_one, 1, interval)
            iv_new = np.where(grew, interval + 1, iv_new)
            flags = np.where(grew, flags | 1, flags)
            if grew.any():
                self.grow_events[rows[grew]] += 1

            # Coordination statistics accumulation.
            can_grow = iv_new < max_interval
            if can_grow.any():
                gr = iv_new[can_grow]
                self.coord_sum_r[rows[can_grow]] += 1.0 / gr - 1.0 / (gr
                                                                      + 1.0)
            log_arg = np.maximum(beta / one_minus_slack, _MIN_ERROR_NEEDED)
        # math.log element-wise: numpy's log kernel is not guaranteed
        # bit-identical to libm's, and coord_sum_log_e is fingerprinted.
        # map() over a pre-converted list keeps the per-element call in C.
        args_list = log_arg.tolist()
        logs = np.fromiter(map(math.log, args_list),
                           dtype=np.float64, count=len(args_list))
        self.coord_sum_log_e[rows] += logs
        self.coord_n[rows] += 1

        self.interval[rows] = iv_new
        self.streak[rows] = streak
        self.last_beta[rows] = beta
        self.last_flags[rows] = flags

        metrics = _adaptation._SAMPLER_METRICS
        if metrics.enabled:
            metrics.observations += len(rows)
            if flags.any():
                metrics.grow_events += int(((flags & 1) != 0).sum())
                metrics.reset_events += int(((flags & 2) != 0).sum())
                metrics.violations += int(((flags & 4) != 0).sum())
        return rows, steps, values, iv_new, flags, beta, rejected

    @staticmethod
    def _kernel(v: np.ndarray, threshold: np.ndarray, mean_est: np.ndarray,
                var_est: np.ndarray, interval: np.ndarray,
                use_cheb: np.ndarray) -> np.ndarray:
        """Vectorised misdetection kernels (bit-equal to the fused pair).

        Element-wise the same operation sequence as
        ``misdetection_bound_fused`` / ``gaussian_misdetection_estimate_fused``
        — including the deliberate ``1 - (1 - x)`` double rounding through
        the survive product (``survive`` starts at exactly 1.0, and
        ``1.0 * y == y`` in IEEE, so the unrolled interval-1 case needs no
        special branch).
        """
        beta = np.empty(len(v), dtype=np.float64)
        std_est = np.sqrt(var_est)
        gap0 = threshold - v
        zero_std = std_est == 0.0
        if zero_std.any():
            zi = np.flatnonzero(zero_std)
            worst = np.where(mean_est[zi] >= 0.0, interval[zi], 1)
            beta[zi] = np.where(gap0[zi] - worst * mean_est[zi] > 0.0,
                                0.0, 1.0)
        erfc_ = math.erfc
        for cheb in (True, False):
            mask = ~zero_std & (use_cheb == cheb)
            if not mask.any():
                continue
            mi = np.flatnonzero(mask)
            g0 = gap0[mi]
            me = mean_est[mi]
            sd = std_est[mi]
            iv = interval[mi]
            survive = np.ones(len(mi), dtype=np.float64)
            b = np.empty(len(mi), dtype=np.float64)
            done = np.zeros(len(mi), dtype=bool)
            for i in range(1, int(iv.max()) + 1):
                alive = ~done & (iv >= i)
                if not alive.any():
                    break
                gap = g0 - i * me
                if cheb:
                    hit = alive & (gap <= 0.0)
                    if hit.any():
                        b[hit] = 1.0
                        done[hit] = True
                    rem = alive & ~hit
                    if rem.any():
                        k = gap[rem] / (i * sd[rem])
                        survive[rem] = survive[rem] * (
                            1.0 - 1.0 / (1.0 + k * k))
                else:
                    ai = np.flatnonzero(alive)
                    arg = (gap[ai] / (i * sd[ai]) / _SQRT2)
                    # math.erfc element-wise: same libm call as the scalar
                    # kernel, so the survive product stays bit-identical.
                    p = 0.5 * np.fromiter(
                        map(erfc_, arg.tolist()),
                        dtype=np.float64, count=len(ai))
                    hit = p >= 1.0
                    if hit.any():
                        b[ai[hit]] = 1.0
                        done[ai[hit]] = True
                    rem = ai[~hit]
                    if len(rem):
                        survive[rem] = survive[rem] * (1.0 - p[~hit])
            left = ~done
            b[left] = 1.0 - survive[left]
            beta[mi] = b
        return beta
