"""State substrates for sketch-backed task types (quantile, entropy).

The paper's adaptation theory (SIII) is stated for a scalar monitored
statistic: the sampler watches delta statistics of the stream it is
given and bounds the chance that a skipped step hid a threshold
crossing. Production monitoring tasks, though, are dominated by
distributional predicates — "p99 latency > T" and "flow entropy
collapsed" — whose state is not a scalar but a *sketch*. This module
supplies the two substrates that close that gap:

* :class:`QuantileEstimator` — a rotating pair of mergeable
  :class:`~repro.telemetry.histogram.LogHistogram` sketches estimating
  ``p_q(X)`` over a sliding window of recent observations. Its
  sampler-facing statistic is the *exceedance rate* ``P(X > T)``: the
  predicate ``p_q(X) > T`` holds exactly when the exceedance rate is
  above ``1 - q``, so the indicator ``1{x > T}`` is a Bernoulli stream
  whose windowed rate feeds the existing Cantelli/Gaussian
  violation-likelihood kernels unchanged, with the sketch providing the
  threshold-crossing tail mass in O(buckets).
* :class:`EntropyEstimator` — windowed empirical entropy (bits) over
  binned observations, the drop-below statistic of the distributed
  entropy-monitoring literature (SYN floods of near-identical packets
  collapse source entropy far below its healthy band).

Both substrates are deterministic, JSON-serialisable via
``state_dict``/``from_state_dict`` (checkpoint contract: a restored
substrate answers every future query bit-identically), and cheap enough
for the push ingest path — updates are O(1) dict/deque work.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable

from repro.exceptions import ConfigurationError
from repro.telemetry.histogram import (DEFAULT_RELATIVE_ERROR,
                                       LogHistogram)

__all__ = ["EntropyEstimator", "QuantileEstimator", "TASK_TYPES"]

TASK_TYPES = ("value", "quantile", "entropy")
"""Task types the service layer can register (``value`` = scalar)."""

DEFAULT_SKETCH_WINDOW = 128
"""Default observations per sketch epoch for quantile tasks."""

DEFAULT_ENTROPY_WINDOW = 64
"""Default sliding-window length for entropy tasks."""


class QuantileEstimator:
    """Sliding-window quantile/exceedance state over a rotating sketch pair.

    A single cumulative sketch converges and stops responding to regime
    changes, so recency comes from epoch rotation: observations land in
    ``_current``; every ``window`` updates the current sketch is sealed
    and a fresh one started. Queries always see ``sealed + current`` —
    between ``window`` and ``2 * window`` recent observations — which is
    O(1) amortised and, because :class:`LogHistogram` is a mergeable
    monoid over integer bucket counts, exactly reproducible from a
    checkpoint.

    Attributes:
        quantile: the tracked ``q`` in (0, 1).
        window: observations per epoch.
        relative_error: sketch accuracy ``alpha``.
        sketch_factory: constructor for new epoch sketches. A testkit
            seam — see :meth:`plant_sketch_factory` — not serialised;
            restored estimators always build plain ``LogHistogram``.
    """

    __slots__ = ("quantile", "window", "relative_error", "sketch_factory",
                 "_current", "_sealed", "_in_epoch")

    def __init__(self, quantile: float,
                 window: int = DEFAULT_SKETCH_WINDOW,
                 relative_error: float = DEFAULT_RELATIVE_ERROR,
                 sketch_factory: Callable[[], LogHistogram] | None = None):
        if not 0.0 < quantile < 1.0:
            raise ConfigurationError(
                f"quantile must be in (0, 1), got {quantile}")
        if window < 1:
            raise ConfigurationError(
                f"sketch window must be >= 1, got {window}")
        self.quantile = float(quantile)
        self.window = int(window)
        self.relative_error = float(relative_error)
        self.sketch_factory = sketch_factory or (
            lambda: LogHistogram(relative_error=self.relative_error))
        self._current = self.sketch_factory()
        self._sealed: LogHistogram | None = None
        self._in_epoch = 0

    @property
    def count(self) -> int:
        """Observations currently visible to queries."""
        sealed = 0 if self._sealed is None else self._sealed.count
        return self._current.count + sealed

    def update(self, value: float) -> None:
        """Absorb one observation; rotates epochs every ``window`` updates."""
        self._current.record(float(value))
        self._in_epoch += 1
        if self._in_epoch >= self.window:
            self._sealed = self._current
            self._current = self.sketch_factory()
            self._in_epoch = 0

    def exceedance(self, threshold: float) -> float:
        """Windowed ``P(X > threshold)`` — the sampler-facing statistic.

        Integer tail counts from both sketches are summed before a
        single division, so the result depends only on the sketch
        contents, never on update order or checkpoint boundaries.
        """
        total = self.count
        if total == 0:
            return 0.0
        tail = self._current.tail_count(threshold)
        if self._sealed is not None:
            tail += self._sealed.tail_count(threshold)
        return tail / total

    def quantile_value(self) -> float:
        """Windowed estimate of the tracked quantile (alert annotation).

        Materialises the sealed+current merge on demand; alerts are rare
        relative to updates, so the O(buckets) copy happens off the
        per-offer path.
        """
        if self._sealed is None:
            return self._current.quantile(self.quantile)
        merged = LogHistogram.from_dict(self._sealed.to_dict())
        merged.merge(self._current)
        return merged.quantile(self.quantile)

    def plant_sketch_factory(
            self, factory: Callable[[], LogHistogram]) -> None:
        """Testkit seam: swap the sketch constructor and reset the window.

        Used by the planted-mutant invariant check to run the full
        service path on a deliberately broken sketch (e.g. one that
        silently drops tail buckets) and prove the mis-detection
        invariant catches it.
        """
        self.sketch_factory = factory
        self._current = factory()
        self._sealed = None
        self._in_epoch = 0

    def state_dict(self) -> dict[str, Any]:
        """JSON-able state; restoring reproduces every query bit-for-bit."""
        return {
            "quantile": self.quantile,
            "window": self.window,
            "relative_error": self.relative_error,
            "in_epoch": self._in_epoch,
            "current": self._current.to_dict(),
            "sealed": (None if self._sealed is None
                       else self._sealed.to_dict()),
        }

    @classmethod
    def from_state_dict(cls, state: dict[str, Any]) -> "QuantileEstimator":
        est = cls(quantile=float(state["quantile"]),
                  window=int(state["window"]),
                  relative_error=float(state["relative_error"]))
        est._current = LogHistogram.from_dict(state["current"])
        if state.get("sealed") is not None:
            est._sealed = LogHistogram.from_dict(state["sealed"])
        est._in_epoch = int(state["in_epoch"])
        return est


class EntropyEstimator:
    """Sliding-window empirical entropy (bits) over binned observations.

    Observations are symbolised as ``floor(value / bin_width)``; the
    window keeps the last ``window`` symbols in a deque with a count
    table, so updates are O(1) and the entropy query is O(distinct
    symbols) <= O(window). The estimate uses
    ``H = log2(n) - (1/n) * sum_i c_i * log2(c_i)`` accumulated in
    sorted-symbol order — a fixed summation order that makes the float
    result independent of insertion history, which the bit-identical
    restore contract requires.
    """

    __slots__ = ("window", "bin_width", "_symbols", "_counts")

    def __init__(self, window: int = DEFAULT_ENTROPY_WINDOW,
                 bin_width: float = 1.0):
        if window < 2:
            raise ConfigurationError(
                f"entropy window must be >= 2, got {window}")
        if not bin_width > 0.0:
            raise ConfigurationError(
                f"bin_width must be > 0, got {bin_width}")
        self.window = int(window)
        self.bin_width = float(bin_width)
        self._symbols: deque[int] = deque()
        self._counts: dict[int, int] = {}

    @property
    def count(self) -> int:
        """Observations currently in the window."""
        return len(self._symbols)

    def update(self, value: float) -> None:
        """Absorb one observation, evicting the oldest beyond the window."""
        symbol = int(math.floor(float(value) / self.bin_width))
        self._symbols.append(symbol)
        self._counts[symbol] = self._counts.get(symbol, 0) + 1
        if len(self._symbols) > self.window:
            old = self._symbols.popleft()
            left = self._counts[old] - 1
            if left:
                self._counts[old] = left
            else:
                del self._counts[old]

    def entropy(self) -> float:
        """Empirical entropy of the window in bits (0.0 when empty)."""
        n = len(self._symbols)
        if n == 0:
            return 0.0
        acc = 0.0
        for symbol in sorted(self._counts):
            c = self._counts[symbol]
            acc += c * math.log2(c)
        return math.log2(n) - acc / n

    def state_dict(self) -> dict[str, Any]:
        """JSON-able state; the count table is derived, so only the
        symbol sequence is serialised."""
        return {
            "window": self.window,
            "bin_width": self.bin_width,
            "symbols": list(self._symbols),
        }

    @classmethod
    def from_state_dict(cls, state: dict[str, Any]) -> "EntropyEstimator":
        est = cls(window=int(state["window"]),
                  bin_width=float(state["bin_width"]))
        for symbol in state.get("symbols", []):
            est._symbols.append(int(symbol))
            est._counts[int(symbol)] = est._counts.get(int(symbol), 0) + 1
        return est
