"""State-monitoring task specifications (paper SII, SIII-A).

A task is defined by a violation threshold, a *default sampling interval*
``Id`` (the smallest interval necessary for the task — mis-detection is
negligible at ``Id``), an *error allowance* ``err`` (the acceptable
probability of missing violations relative to periodic-``Id`` sampling) and
a maximum interval ``Im`` the adaptive sampler may ever use.

Distributed tasks add a global threshold split into per-monitor local
thresholds with ``sum(T_i) = T`` so that "no local violation" implies "no
global violation" and monitors can run independently between local
violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.exceptions import ConfigurationError
from repro.types import ThresholdDirection

__all__ = ["TaskSpec", "DistributedTaskSpec"]


@dataclass(frozen=True, slots=True)
class TaskSpec:
    """Specification of a single-monitor state monitoring task.

    Attributes:
        threshold: violation threshold ``T``.
        error_allowance: ``err`` in [0, 1] — the acceptable fraction of
            violations (as seen by periodic-``Id`` sampling) that may be
            missed. 0 forces periodic sampling at ``Id``.
        default_interval: ``Id`` in seconds (only used to translate grid
            units to wall-clock; all algorithms work in grid units).
        max_interval: ``Im`` in units of ``Id``; the adaptive sampler never
            exceeds it.
        direction: which side of the threshold is a violation.
        name: optional human-readable identifier.
    """

    threshold: float
    error_allowance: float
    default_interval: float = 1.0
    max_interval: int = 10
    direction: ThresholdDirection = ThresholdDirection.UPPER
    name: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_allowance <= 1.0:
            raise ConfigurationError(
                f"error_allowance must be in [0, 1], got {self.error_allowance}")
        if self.default_interval <= 0:
            raise ConfigurationError(
                f"default_interval must be > 0, got {self.default_interval}")
        if self.max_interval < 1:
            raise ConfigurationError(
                f"max_interval must be >= 1, got {self.max_interval}")

    def violated(self, value: float) -> bool:
        """Whether ``value`` constitutes a state violation for this task."""
        return self.direction.violated(value, self.threshold)

    def oriented(self) -> tuple[float, float]:
        """Return ``(sign, threshold)`` mapping to the upper-threshold frame.

        Monitored values should be multiplied by ``sign`` and compared
        against the returned threshold with ``>``.
        """
        if self.direction is ThresholdDirection.UPPER:
            return 1.0, self.threshold
        return -1.0, -self.threshold

    def with_error_allowance(self, err: float) -> "TaskSpec":
        """A copy of this spec with a different error allowance."""
        return replace(self, error_allowance=err)


@dataclass(frozen=True, slots=True)
class DistributedTaskSpec:
    """Specification of a distributed state monitoring task.

    The global condition is ``sum_i v_i > T`` (upper direction). Each
    monitor ``i`` watches its local stream against a local threshold
    ``T_i``; the decomposition must satisfy ``sum(T_i) <= T`` so that local
    silence guarantees global silence (paper SII-A uses equality; the
    inequality is what safety actually needs and lets experiments skew the
    local thresholds).

    Attributes:
        global_threshold: the global threshold ``T``.
        local_thresholds: per-monitor thresholds, summing to ``T``.
        error_allowance: global error allowance ``err``; the coordinator
            splits it across monitors (``sum beta_i <= err``).
        default_interval: ``Id`` in seconds.
        max_interval: ``Im`` in units of ``Id``.
        name: optional identifier.
    """

    global_threshold: float
    local_thresholds: tuple[float, ...]
    error_allowance: float
    default_interval: float = 1.0
    max_interval: int = 10
    name: str = ""
    _rel_tol: float = field(default=1e-6, repr=False)

    def __post_init__(self) -> None:
        if not self.local_thresholds:
            raise ConfigurationError("need at least one local threshold")
        if not 0.0 <= self.error_allowance <= 1.0:
            raise ConfigurationError(
                f"error_allowance must be in [0, 1], got {self.error_allowance}")
        if self.max_interval < 1:
            raise ConfigurationError(
                f"max_interval must be >= 1, got {self.max_interval}")
        if self.default_interval <= 0:
            raise ConfigurationError(
                f"default_interval must be > 0, got {self.default_interval}")
        total = sum(self.local_thresholds)
        scale = max(abs(self.global_threshold), 1.0)
        # Safety requires sum(T_i) <= T: then "no local violation" implies
        # "no global violation". Equality maximises local slack; Fig. 8
        # deliberately skews local thresholds, so only the inequality is
        # enforced (with tolerance for floating point).
        if total - self.global_threshold > self._rel_tol * scale:
            raise ConfigurationError(
                "local thresholds must not sum above the global threshold: "
                f"sum={total!r} vs T={self.global_threshold!r}")

    @property
    def num_monitors(self) -> int:
        """Number of monitors participating in the task."""
        return len(self.local_thresholds)

    def local_spec(self, monitor_id: int, local_error: float) -> TaskSpec:
        """Build the local :class:`TaskSpec` for one monitor.

        Args:
            monitor_id: index into :attr:`local_thresholds`.
            local_error: the error-allowance share assigned to the monitor.
        """
        if not 0 <= monitor_id < self.num_monitors:
            raise ConfigurationError(
                f"monitor_id {monitor_id} out of range "
                f"[0, {self.num_monitors})")
        return TaskSpec(
            threshold=self.local_thresholds[monitor_id],
            error_allowance=local_error,
            default_interval=self.default_interval,
            max_interval=self.max_interval,
            name=f"{self.name or 'task'}/monitor{monitor_id}",
        )

    @staticmethod
    def with_even_thresholds(global_threshold: float, num_monitors: int,
                             error_allowance: float,
                             **kwargs: object) -> "DistributedTaskSpec":
        """Convenience constructor splitting ``T`` evenly across monitors."""
        if num_monitors < 1:
            raise ConfigurationError(
                f"num_monitors must be >= 1, got {num_monitors}")
        share = global_threshold / num_monitors
        return DistributedTaskSpec(
            global_threshold=global_threshold,
            local_thresholds=tuple(share for _ in range(num_monitors)),
            error_allowance=error_allowance,
            **kwargs,  # type: ignore[arg-type]
        )
