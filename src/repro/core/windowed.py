"""Aggregation-time-window tasks (paper SVII, listed as ongoing work).

The paper's conclusion names "advanced state monitoring forms (e.g. tasks
with aggregation time window)" as the next step: instead of alerting on an
instantaneous value, the task alerts when an *aggregate over the last w
default intervals* (mean, sum, max, min) crosses the threshold — e.g.
"average CPU over the last minute above 80%".

Sampling semantics: a sampling operation at grid step ``t`` collects the
raw data covering the window ``(t-w, t]`` (reading the access log since a
minute ago, replaying the captured packets of the window), so it observes
the *exact* aggregate. The violation-likelihood machinery then applies
unchanged to the aggregated stream — whose per-step change ``delta`` is
smoother than the raw stream's, which is exactly why windowed tasks adapt
*better* (quantified by ``benchmarks/test_windowed.py``).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.accuracy import RunAccuracy, evaluate_sampling
from repro.core.adaptation import (AdaptationConfig,
                                   ViolationLikelihoodSampler)
from repro.core.task import TaskSpec
from repro.exceptions import ConfigurationError, TraceError

__all__ = ["AggregateKind", "aggregate_trace", "WindowedTaskSpec",
           "run_windowed_adaptive"]


class AggregateKind(enum.Enum):
    """Aggregation applied over the task's time window."""

    MEAN = "mean"
    SUM = "sum"
    MAX = "max"
    MIN = "min"


def _sliding_extremum(values: np.ndarray, window: int,
                      take_max: bool) -> np.ndarray:
    """O(n) sliding max/min via a monotonic deque."""
    out = np.empty(values.size)
    dq: deque[int] = deque()
    for i in range(values.size):
        lo = i - window + 1
        while dq and dq[0] < lo:
            dq.popleft()
        while dq and ((values[dq[-1]] <= values[i]) if take_max
                      else (values[dq[-1]] >= values[i])):
            dq.pop()
        dq.append(i)
        out[i] = values[dq[0]]
    return out


def aggregate_trace(values: np.ndarray, window: int,
                    kind: AggregateKind = AggregateKind.MEAN) -> np.ndarray:
    """Aggregate a raw stream over a trailing window, per grid point.

    Index ``t`` aggregates ``values[max(0, t-window+1) : t+1]`` — the
    leading edge uses the partial window so the output aligns with the
    input (the first samples of a real task also only see partial
    history).

    Args:
        values: raw full-resolution stream.
        window: window length in default intervals (>= 1).
        kind: aggregation function.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise TraceError(f"expected a non-empty 1-d trace, got {arr.shape}")
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    if window == 1:
        return arr.copy()

    if kind in (AggregateKind.MEAN, AggregateKind.SUM):
        csum = np.concatenate([[0.0], np.cumsum(arr)])
        starts = np.maximum(np.arange(arr.size) - window + 1, 0)
        sums = csum[np.arange(1, arr.size + 1)] - csum[starts]
        if kind is AggregateKind.SUM:
            return sums
        lengths = np.arange(1, arr.size + 1) - starts
        return sums / lengths
    if kind is AggregateKind.MAX:
        return _sliding_extremum(arr, window, take_max=True)
    return _sliding_extremum(arr, window, take_max=False)


@dataclass(frozen=True, slots=True)
class WindowedTaskSpec:
    """A monitoring task over a windowed aggregate.

    Attributes:
        task: the threshold task applied to the *aggregated* stream.
        window: aggregation window in default intervals.
        kind: aggregation function.
    """

    task: TaskSpec
    window: int
    kind: AggregateKind = AggregateKind.MEAN

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError(
                f"window must be >= 1, got {self.window}")


@dataclass(frozen=True, slots=True)
class WindowedRunResult:
    """Outcome of a windowed-task run.

    Attributes:
        sampled_indices: grid steps at which sampling operations ran.
        accuracy: scored against the *aggregated* ground truth.
        aggregated: the aggregated stream the task monitored.
    """

    sampled_indices: np.ndarray
    accuracy: RunAccuracy
    aggregated: np.ndarray

    @property
    def sampling_ratio(self) -> float:
        """Cost relative to periodic default sampling."""
        return self.accuracy.sampling_ratio

    @property
    def misdetection_rate(self) -> float:
        """Fraction of windowed alerts missed."""
        return self.accuracy.misdetection_rate


def run_windowed_adaptive(values: np.ndarray, spec: WindowedTaskSpec,
                          config: AdaptationConfig | None = None,
                          ) -> WindowedRunResult:
    """Run violation-likelihood sampling on a windowed-aggregate task.

    Each sampling operation at step ``t`` observes the exact aggregate of
    the trailing window ending at ``t`` (the operation collects the
    window's raw data); adaptation runs on that aggregated stream.

    Args:
        values: the raw full-resolution stream.
        spec: windowed task (threshold task + window + aggregation kind).
        config: adaptation tunables.
    """
    aggregated = aggregate_trace(values, spec.window, spec.kind)
    sampler = ViolationLikelihoodSampler(spec.task, config)
    n = aggregated.size
    sampled: list[int] = []
    t = 0
    while t < n:
        sampled.append(t)
        decision = sampler.observe(float(aggregated[t]), t)
        t += max(1, decision.next_interval)
    accuracy = evaluate_sampling(aggregated, spec.task.threshold, sampled,
                                 spec.task.direction)
    return WindowedRunResult(
        sampled_indices=np.asarray(sampled, dtype=int),
        accuracy=accuracy,
        aggregated=aggregated,
    )
