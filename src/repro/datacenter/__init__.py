"""Virtualized datacenter testbed (DESIGN.md S9-S10).

Simulated counterpart of the paper's Emulab deployment: physical servers
with Dom0 CPU accounting, VMs with trace-serving agents, per-VM monitor
daemons, coordinators (one per group of servers), a virtual network for
coordination traffic, and the sampling cost models behind Fig. 6.
"""

from repro.datacenter.coordinator import CoordinatorNode
from repro.datacenter.cost import (FlatSamplingCostModel, MonetaryCostModel,
                                   NetworkSamplingCostModel)
from repro.datacenter.monitor import MonitorDaemon
from repro.datacenter.network import VirtualNetwork
from repro.datacenter.server import Dom0CpuAccount, PhysicalServer
from repro.datacenter.testbed import (PAPER_SCALE, Testbed, TestbedConfig,
                                      build_testbed)
from repro.datacenter.vm import TraceAgent, VirtualMachine

__all__ = [
    "CoordinatorNode",
    "Dom0CpuAccount",
    "FlatSamplingCostModel",
    "MonetaryCostModel",
    "MonitorDaemon",
    "NetworkSamplingCostModel",
    "PAPER_SCALE",
    "PhysicalServer",
    "Testbed",
    "TestbedConfig",
    "TraceAgent",
    "VirtualMachine",
    "VirtualNetwork",
    "build_testbed",
]
