"""Coordinator nodes (paper SII, SIV; testbed: one per 5 servers).

A coordinator owns one distributed task: it receives local-violation
reports from the task's monitors, performs global polls (collecting the
instantaneous value from every monitor, forcing samples on idle ones),
raises global alerts, and periodically reallocates the task's error
allowance across monitors according to its allocation policy.
"""

from __future__ import annotations

from repro.core.coordination import AllocationPolicy, EvenAllocation
from repro.core.task import DistributedTaskSpec
from repro.datacenter.monitor import MonitorDaemon
from repro.datacenter.network import VirtualNetwork
from repro.exceptions import CoordinationError
from repro.simulation.engine import SimulationEngine
from repro.types import Alert, GlobalPoll

__all__ = ["CoordinatorNode"]


class CoordinatorNode:
    """Coordinator of one distributed state monitoring task.

    Args:
        spec: the distributed task (global threshold, allowance, ...).
        engine: the simulation engine.
        network: message accounting.
        policy: error-allowance allocation policy (default: even).
        update_period_steps: allocation updating period in default
            intervals (paper: 1000).
    """

    def __init__(self, spec: DistributedTaskSpec, engine: SimulationEngine,
                 network: VirtualNetwork,
                 policy: AllocationPolicy | None = None,
                 update_period_steps: int = 1000):
        if update_period_steps < 1:
            raise CoordinationError(
                f"update_period_steps must be >= 1, got "
                f"{update_period_steps}")
        self._spec = spec
        self._engine = engine
        self._network = network
        self._policy = policy if policy is not None else EvenAllocation()
        self._update_period = update_period_steps
        self._monitors: list[MonitorDaemon] = []
        self._allocations = self._policy.initial(spec.num_monitors,
                                                 spec.error_allowance)
        self._last_poll_step = -1
        self._polls: list[GlobalPoll] = []
        self._alerts: list[Alert] = []
        self._reallocations = 0
        self._started = False

    @property
    def spec(self) -> DistributedTaskSpec:
        """The coordinated task."""
        return self._spec

    @property
    def monitors(self) -> tuple[MonitorDaemon, ...]:
        """Monitors registered to the task."""
        return tuple(self._monitors)

    @property
    def polls(self) -> tuple[GlobalPoll, ...]:
        """Global polls performed, chronological."""
        return tuple(self._polls)

    @property
    def alerts(self) -> tuple[Alert, ...]:
        """Global alerts raised, chronological."""
        return tuple(self._alerts)

    @property
    def allocations(self) -> tuple[float, ...]:
        """Current per-monitor error allowances."""
        return self._allocations

    @property
    def reallocations(self) -> int:
        """Allocation rounds that moved allowance."""
        return self._reallocations

    def register(self, monitor: MonitorDaemon) -> None:
        """Attach a monitor; ordering must follow the spec's thresholds."""
        if self._started:
            raise CoordinationError("cannot register after start")
        if len(self._monitors) >= self._spec.num_monitors:
            raise CoordinationError(
                f"task has only {self._spec.num_monitors} monitor slots")
        self._monitors.append(monitor)

    def start(self) -> None:
        """Push initial allowances and begin periodic allocation updates."""
        if len(self._monitors) != self._spec.num_monitors:
            raise CoordinationError(
                f"registered {len(self._monitors)} monitors for a task "
                f"with {self._spec.num_monitors}")
        self._started = True
        for monitor, err in zip(self._monitors, self._allocations):
            monitor.sampler.error_allowance = err
        period_seconds = self._update_period * self._spec.default_interval
        self._engine.schedule_every(period_seconds, self._update_allocation)

    def on_local_violation(self, monitor: MonitorDaemon, step: int) -> None:
        """Handle a local-violation report: run one global poll per step.

        Re-entrant calls for the same step (forced samples during the poll
        can themselves cross local thresholds) are absorbed by the
        per-step dedupe. The report itself travels over the virtual
        network — on a lossy network a dropped report means no poll (and
        possibly a missed global alert), which is exactly the failure
        mode the reliability experiments measure.
        """
        if not self._network.deliver("violation-report"):
            return
        if step == self._last_poll_step:
            return
        self._last_poll_step = step

        values = []
        for peer in self._monitors:
            self._network.send("poll-request")
            values.append(peer.poll(step))
            self._network.send("poll-response")
        total = float(sum(values))
        violated = total > self._spec.global_threshold
        self._polls.append(GlobalPoll(time_index=step, values=tuple(values),
                                      total=total, violated=violated))
        if violated:
            self._alerts.append(Alert(time_index=step, value=total,
                                      threshold=self._spec.global_threshold))

    def _update_allocation(self) -> None:
        reports = [m.sampler.drain_coordination_stats()
                   for m in self._monitors]
        update = self._policy.reallocate(self._allocations, reports,
                                         self._spec.error_allowance)
        if update.reallocated:
            self._reallocations += 1
            self._network.send("allowance-update",
                               count=len(self._monitors))
        self._allocations = update.allocations
        for monitor, err in zip(self._monitors, self._allocations):
            monitor.sampler.error_allowance = err
