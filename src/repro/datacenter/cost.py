"""Sampling cost models (DESIGN.md S10, paper SII-A and Fig. 6).

Two costs matter in the paper:

* **Dom0 CPU** — network sampling captures and deep-packet-inspects every
  packet of a VM for a window (tcpdump + DPI). With 40 VMs per server this
  consumed 20-34% of Dom0's CPU under periodic sampling.
  :class:`NetworkSamplingCostModel` charges a fixed per-operation setup
  cost plus a per-packet inspection cost, calibrated to that band.
* **Monetary** — monitoring services charge per sample (CloudWatch-style
  pay-as-you-go; the paper cites monitoring at up to 18% of operation
  cost). :class:`MonetaryCostModel` prices samples and coordinator
  messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["NetworkSamplingCostModel", "FlatSamplingCostModel",
           "MonetaryCostModel"]


@dataclass(frozen=True, slots=True)
class NetworkSamplingCostModel:
    """CPU cost of capturing + inspecting one VM's traffic for one window.

    ``cpu_seconds = fixed_seconds + per_packet_seconds * packets``.

    Defaults are calibrated so that periodically sampling 40 VMs with
    peak-hour traffic keeps Dom0 at roughly the paper's 20-34% band and
    off-peak traffic near its lower edge (utilisation varies with traffic,
    as Fig. 6's whiskers show).

    Attributes:
        fixed_seconds: per-operation setup/scheduling/persistence cost.
        per_packet_seconds: deep-packet-inspection cost per packet.
    """

    fixed_seconds: float = 0.04
    per_packet_seconds: float = 3.0e-6

    def __post_init__(self) -> None:
        if self.fixed_seconds < 0 or self.per_packet_seconds < 0:
            raise ConfigurationError(
                f"costs must be >= 0, got {self.fixed_seconds}, "
                f"{self.per_packet_seconds}")

    def cpu_seconds(self, packets: int) -> float:
        """CPU time consumed by one sampling operation over ``packets``."""
        if packets < 0:
            raise ConfigurationError(f"packets must be >= 0, got {packets}")
        return self.fixed_seconds + self.per_packet_seconds * packets


@dataclass(frozen=True, slots=True)
class FlatSamplingCostModel:
    """Constant CPU cost per sampling operation.

    System- and application-level sampling (reading a counter, scanning the
    recent access log) is far cheaper than packet inspection and does not
    scale with traffic; a flat per-operation cost models it.
    """

    seconds_per_sample: float = 0.002

    def __post_init__(self) -> None:
        if self.seconds_per_sample < 0:
            raise ConfigurationError(
                f"cost must be >= 0, got {self.seconds_per_sample}")

    def cpu_seconds(self, packets: int = 0) -> float:
        """CPU time of one sampling operation (``packets`` ignored)."""
        return self.seconds_per_sample


class MonetaryCostModel:
    """Pay-as-you-go accounting of sampling and coordination.

    Args:
        price_per_sample: currency units per sampling operation.
        price_per_message: currency units per coordinator<->monitor
            message (local-violation reports, poll requests/responses).
    """

    def __init__(self, price_per_sample: float = 1.0e-5,
                 price_per_message: float = 1.0e-6):
        if price_per_sample < 0 or price_per_message < 0:
            raise ConfigurationError("prices must be >= 0")
        self._price_per_sample = price_per_sample
        self._price_per_message = price_per_message
        self._samples = 0
        self._messages = 0

    @property
    def samples(self) -> int:
        """Sampling operations billed so far."""
        return self._samples

    @property
    def messages(self) -> int:
        """Messages billed so far."""
        return self._messages

    def charge_sample(self, count: int = 1) -> None:
        """Bill ``count`` sampling operations."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        self._samples += count

    def charge_message(self, count: int = 1) -> None:
        """Bill ``count`` messages."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        self._messages += count

    @property
    def total_cost(self) -> float:
        """Accumulated monetary cost."""
        return (self._samples * self._price_per_sample
                + self._messages * self._price_per_message)
