"""Per-VM monitor daemons (paper SV-A).

A monitor lives in Dom0, one per VM (per task): it performs the sampling
operations, runs the violation-likelihood adaptation locally, charges the
sampling cost to its server's Dom0 account, and reports local violations
to its coordinator. Sampling is self-scheduling on the simulation engine:
each operation schedules the next one according to the adapted interval.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.adaptation import (AdaptationConfig,
                                   ViolationLikelihoodSampler)
from repro.core.task import TaskSpec
from repro.datacenter.server import Dom0CpuAccount
from repro.datacenter.vm import VirtualMachine
from repro.exceptions import SimulationError
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event

__all__ = ["MonitorDaemon", "CostModel"]


class CostModel(Protocol):
    """Anything that prices one sampling operation in CPU seconds."""

    def cpu_seconds(self, packets: int) -> float:
        """CPU time of a sampling operation inspecting ``packets``."""
        ...


class MonitorDaemon:
    """Self-scheduling sampling process for one VM's monitoring task.

    Args:
        monitor_id: index of this monitor within its task.
        vm: the monitored VM (provides the agent and server placement).
        task: the local task spec (threshold, allowance, intervals).
        engine: the simulation engine driving the testbed.
        cost_model: prices each sampling operation.
        dom0: CPU account of the hosting server's Dom0.
        horizon_steps: number of default-interval steps to monitor.
        config: adaptation tunables.
        coordinator: optional sink for local-violation reports (an object
            with ``on_local_violation(monitor, step)``).
    """

    def __init__(self, monitor_id: int, vm: VirtualMachine, task: TaskSpec,
                 engine: SimulationEngine, cost_model: CostModel,
                 dom0: Dom0CpuAccount, horizon_steps: int,
                 config: AdaptationConfig | None = None,
                 coordinator: object | None = None):
        if horizon_steps < 1:
            raise SimulationError(
                f"horizon_steps must be >= 1, got {horizon_steps}")
        if horizon_steps > vm.agent.horizon:
            raise SimulationError(
                f"horizon {horizon_steps} exceeds agent data "
                f"({vm.agent.horizon})")
        self._monitor_id = monitor_id
        self._vm = vm
        self._task = task
        self._engine = engine
        self._cost_model = cost_model
        self._dom0 = dom0
        self._horizon = horizon_steps
        self._coordinator = coordinator
        self.sampler = ViolationLikelihoodSampler(task, config)
        self._interval_seconds = task.default_interval
        self._sampled_steps: list[int] = []
        self._last_step = -1
        self._pending: Event | None = None
        self._started = False

    @property
    def monitor_id(self) -> int:
        """Index of this monitor within its task."""
        return self._monitor_id

    @property
    def vm(self) -> VirtualMachine:
        """The monitored VM."""
        return self._vm

    @property
    def task(self) -> TaskSpec:
        """The local task spec."""
        return self._task

    @property
    def sampled_steps(self) -> list[int]:
        """Grid steps at which this monitor sampled (chronological)."""
        return self._sampled_steps

    @property
    def samples_taken(self) -> int:
        """Number of sampling operations performed."""
        return len(self._sampled_steps)

    def start(self) -> None:
        """Schedule the first sampling operation at t=0."""
        if self._started:
            raise SimulationError("monitor already started")
        self._started = True
        self._pending = self._engine.schedule_at(0.0, self._fire)

    def _fire(self) -> None:
        self._pending = None
        step = int(round(self._engine.now / self._interval_seconds))
        self._sample_at(step)

    def _sample_at(self, step: int) -> None:
        """Perform one sampling operation at ``step`` and self-reschedule."""
        if step >= self._horizon:
            return
        agent = self._vm.agent
        value = agent.value_at(step)
        self._dom0.charge(step, self._cost_model.cpu_seconds(
            agent.packets_at(step)))
        decision = self.sampler.observe(value, step)
        self._sampled_steps.append(step)
        self._last_step = step

        if decision.violation and self._coordinator is not None:
            # Report to the coordinator; it may force polls on peers
            # (including this monitor — guarded by _last_step).
            self._coordinator.on_local_violation(self, step)

        self._schedule_next(step + max(1, decision.next_interval))

    def _schedule_next(self, next_step: int) -> None:
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        if next_step >= self._horizon:
            return
        self._pending = self._engine.schedule_at(
            next_step * self._interval_seconds, self._fire)

    def poll(self, step: int) -> float:
        """Coordinator-forced sample: return the value at ``step``.

        If the monitor already sampled this step the cached stream value
        is returned at no extra cost; otherwise a full sampling operation
        runs (cost charged, statistics updated, schedule rebuilt).
        """
        if step >= self._horizon:
            raise SimulationError(
                f"poll at step {step} beyond horizon {self._horizon}")
        if step == self._last_step:
            return self._vm.agent.value_at(step)
        if step < self._last_step:
            raise SimulationError(
                f"poll at past step {step} (< {self._last_step})")
        self._sample_at(step)
        return self._vm.agent.value_at(step)
