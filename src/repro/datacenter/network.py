"""Virtual network between monitors and coordinators.

The testbed's coordination traffic (local-violation reports, global-poll
requests/responses, allowance updates) flows through a
:class:`VirtualNetwork` that counts messages and bytes. The paper's
coordination messages are tiny compared to sampling cost, but the counters
let experiments verify that claim rather than assume it.

The network can also *drop* messages: the paper assumes reliable
messaging (its companion work, "Reliable state monitoring in cloud
datacenters", studies the unreliable case), and the ``loss_rate`` knob
plus :meth:`deliver` let experiments measure how much accuracy Volley's
coordination loses when violation reports go missing.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["VirtualNetwork"]


class VirtualNetwork:
    """Message accounting (and optional loss) for coordination traffic.

    Args:
        bytes_per_message: modelled payload of one control message
            (value reports are a handful of numbers).
        loss_rate: probability that a message is dropped in transit
            (0 = the paper's reliable-messaging assumption).
        rng: randomness source for loss draws (required when
            ``loss_rate > 0``).
    """

    def __init__(self, bytes_per_message: int = 64,
                 loss_rate: float = 0.0,
                 rng: np.random.Generator | None = None):
        if bytes_per_message < 1:
            raise ConfigurationError(
                f"bytes_per_message must be >= 1, got {bytes_per_message}")
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {loss_rate}")
        if loss_rate > 0.0 and rng is None:
            raise ConfigurationError(
                "a rng is required when loss_rate > 0")
        self._bytes_per_message = bytes_per_message
        self._loss_rate = loss_rate
        self._rng = rng
        self._messages_by_kind: Counter[str] = Counter()
        self._dropped_by_kind: Counter[str] = Counter()

    @property
    def loss_rate(self) -> float:
        """Configured message-loss probability."""
        return self._loss_rate

    def send(self, kind: str, count: int = 1) -> None:
        """Record ``count`` messages of a given kind.

        Kinds used by the testbed: ``"violation-report"``,
        ``"poll-request"``, ``"poll-response"``, ``"allowance-update"``.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        self._messages_by_kind[kind] += count

    def deliver(self, kind: str) -> bool:
        """Send one message and report whether it survived transit.

        Senders that care about loss use this instead of :meth:`send`;
        the message is counted either way, and drops are tallied
        separately.
        """
        self.send(kind)
        if self._loss_rate > 0.0:
            assert self._rng is not None
            if self._rng.random() < self._loss_rate:
                self._dropped_by_kind[kind] += 1
                return False
        return True

    @property
    def total_dropped(self) -> int:
        """Messages lost in transit, all kinds."""
        return sum(self._dropped_by_kind.values())

    def dropped_of(self, kind: str) -> int:
        """Messages of one kind lost in transit."""
        return self._dropped_by_kind.get(kind, 0)

    @property
    def total_messages(self) -> int:
        """Messages sent so far, all kinds."""
        return sum(self._messages_by_kind.values())

    @property
    def total_bytes(self) -> int:
        """Bytes sent so far, all kinds."""
        return self.total_messages * self._bytes_per_message

    def messages_of(self, kind: str) -> int:
        """Messages of one kind."""
        return self._messages_by_kind.get(kind, 0)

    def breakdown(self) -> dict[str, int]:
        """Message counts by kind."""
        return dict(self._messages_by_kind)
