"""Physical servers and the Dom0 CPU account (paper SV-A, Fig. 6).

Each physical server runs a privileged Domain-0 that performs all
monitoring work for the VMs it hosts (only Dom0 sees inter-VM traffic).
:class:`Dom0CpuAccount` accumulates the CPU seconds every sampling
operation costs and reports per-window utilisation — the quantity Fig. 6's
box plots are drawn from.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError

__all__ = ["Dom0CpuAccount", "PhysicalServer"]


class Dom0CpuAccount:
    """Per-window CPU accounting for one server's Domain-0.

    Args:
        window_seconds: accounting window length (the network tasks'
            default interval, 15 s, in the paper's setup).
        num_windows: horizon of the accounting array.
    """

    def __init__(self, window_seconds: float, num_windows: int):
        if window_seconds <= 0:
            raise ConfigurationError(
                f"window_seconds must be > 0, got {window_seconds}")
        if num_windows < 1:
            raise ConfigurationError(
                f"num_windows must be >= 1, got {num_windows}")
        self._window_seconds = window_seconds
        self._busy = np.zeros(num_windows)

    @property
    def num_windows(self) -> int:
        """Accounting horizon in windows."""
        return int(self._busy.size)

    def charge(self, window: int, cpu_seconds: float) -> None:
        """Add CPU time spent in a window.

        Raises:
            SimulationError: if the window index is out of the horizon —
                a monitor sampling outside the simulated period indicates
                a scheduling bug.
        """
        if not 0 <= window < self._busy.size:
            raise SimulationError(
                f"window {window} outside horizon [0, {self._busy.size})")
        if cpu_seconds < 0:
            raise SimulationError(
                f"cpu_seconds must be >= 0, got {cpu_seconds}")
        self._busy[window] += cpu_seconds

    def utilization(self) -> np.ndarray:
        """Per-window CPU utilisation in percent (may exceed 100 when
        oversubscribed — Fig. 6's err=0 case saturates Dom0)."""
        return 100.0 * self._busy / self._window_seconds

    def utilization_stats(self) -> dict[str, float]:
        """Box-plot statistics of the utilisation distribution.

        Returns the quantities Fig. 6 draws: quartiles, median, and
        whisker extents (min/max of the data, as the paper describes).
        """
        util = self.utilization()
        return {
            "min": float(util.min()),
            "q25": float(np.percentile(util, 25)),
            "median": float(np.percentile(util, 50)),
            "q75": float(np.percentile(util, 75)),
            "max": float(util.max()),
            "mean": float(util.mean()),
        }


class PhysicalServer:
    """One physical host: an id, a set of VM ids, and a Dom0 account."""

    def __init__(self, server_id: int, window_seconds: float,
                 num_windows: int):
        if server_id < 0:
            raise ConfigurationError(
                f"server_id must be >= 0, got {server_id}")
        self._server_id = server_id
        self._vm_ids: list[int] = []
        self.dom0 = Dom0CpuAccount(window_seconds, num_windows)

    @property
    def server_id(self) -> int:
        """The server's index in the testbed."""
        return self._server_id

    @property
    def vm_ids(self) -> tuple[int, ...]:
        """VMs hosted by this server."""
        return tuple(self._vm_ids)

    def attach_vm(self, vm_id: int) -> None:
        """Place a VM on this server."""
        if vm_id in self._vm_ids:
            raise ConfigurationError(
                f"vm {vm_id} already on server {self._server_id}")
        self._vm_ids.append(vm_id)
