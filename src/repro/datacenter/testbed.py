"""Virtualized datacenter testbed builder (paper SV-A, Fig. 4).

The paper's testbed: 20 physical servers x 40 VMs = 800 VMs, one monitor
per VM in Dom0, one coordinator per 5 physical servers. The builder
recreates that topology at any scale, wires per-VM traffic streams
(traffic-difference metric + raw packet volumes), and runs either

* **per-VM tasks** — every VM monitored against its own threshold
  (Figs. 5(a) and 6), or
* **distributed tasks** — one task per coordinator group whose global
  state is the sum of its VMs' metrics (SIV, Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar


import numpy as np

from repro.core.accuracy import RunAccuracy, evaluate_sampling
from repro.core.adaptation import AdaptationConfig
from repro.core.coordination import AllocationPolicy
from repro.core.task import DistributedTaskSpec, TaskSpec
from repro.datacenter.coordinator import CoordinatorNode
from repro.datacenter.cost import (MonetaryCostModel,
                                   NetworkSamplingCostModel)
from repro.datacenter.monitor import MonitorDaemon
from repro.datacenter.network import VirtualNetwork
from repro.datacenter.server import PhysicalServer
from repro.datacenter.vm import TraceAgent, VirtualMachine
from repro.exceptions import ConfigurationError
from repro.simulation.engine import SimulationEngine
from repro.simulation.randomness import RandomStreams
from repro.workloads.thresholds import threshold_for_selectivity
from repro.workloads.traffic import (NETWORK_DEFAULT_INTERVAL,
                                     TrafficDifferenceGenerator)

__all__ = ["TestbedConfig", "Testbed", "build_testbed", "TraceHook"]

TraceHook = Callable[[int, "np.ndarray", "np.ndarray"],
                     tuple["np.ndarray", "np.ndarray"]]
"""Per-VM stream transform: ``(vm_id, rho, packets) -> (rho, packets)``."""

PAPER_SCALE = dict(num_servers=20, vms_per_server=40)
"""The paper's full testbed scale (800 VMs)."""


@dataclass(frozen=True, slots=True)
class TestbedConfig:
    """Shape and task parameters of a testbed run.

    Attributes:
        num_servers: physical servers.
        vms_per_server: VMs per server (paper: 40).
        servers_per_coordinator: coordinator span (paper: 5).
        horizon_steps: monitored duration in default intervals.
        default_interval: ``Id`` seconds (network tasks: 15 s).
        error_allowance: per-task error allowance.
        selectivity_percent: alert selectivity ``k`` for thresholds.
        max_interval: ``Im`` in default intervals.
        distributed: build one distributed task per coordinator group
            instead of per-VM tasks.
        message_loss_rate: probability that a coordination message is
            dropped in transit (0 = the paper's reliable-messaging
            assumption; used by the reliability experiments).
        seed: master seed for all randomness.
    """

    # Not a test case despite the Test* name (pytest collection opt-out).
    __test__: ClassVar[bool] = False

    num_servers: int = 2
    vms_per_server: int = 8
    servers_per_coordinator: int = 5
    horizon_steps: int = 2000
    default_interval: float = NETWORK_DEFAULT_INTERVAL
    error_allowance: float = 0.01
    selectivity_percent: float = 0.4
    max_interval: int = 10
    distributed: bool = False
    message_loss_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_servers < 1 or self.vms_per_server < 1:
            raise ConfigurationError(
                f"need >= 1 servers and VMs, got {self.num_servers}, "
                f"{self.vms_per_server}")
        if self.servers_per_coordinator < 1:
            raise ConfigurationError(
                "servers_per_coordinator must be >= 1, got "
                f"{self.servers_per_coordinator}")
        if self.horizon_steps < 10:
            raise ConfigurationError(
                f"horizon_steps must be >= 10, got {self.horizon_steps}")
        if not 0.0 <= self.message_loss_rate < 1.0:
            raise ConfigurationError(
                "message_loss_rate must be in [0, 1), got "
                f"{self.message_loss_rate}")

    @property
    def num_vms(self) -> int:
        """Total VMs in the testbed."""
        return self.num_servers * self.vms_per_server

    @property
    def num_coordinators(self) -> int:
        """Coordinators (one per ``servers_per_coordinator`` servers)."""
        return -(-self.num_servers // self.servers_per_coordinator)


class Testbed:
    """A built testbed, ready to run.

    Use :func:`build_testbed` to construct one; then :meth:`run` executes
    the full horizon and the summary accessors report cost and accuracy.
    """

    # Not a test case despite the Test* name (pytest collection opt-out).
    __test__ = False

    def __init__(self, config: TestbedConfig, engine: SimulationEngine,
                 servers: list[PhysicalServer], vms: list[VirtualMachine],
                 monitors: list[MonitorDaemon],
                 coordinators: list[CoordinatorNode],
                 network: VirtualNetwork):
        self.config = config
        self.engine = engine
        self.servers = servers
        self.vms = vms
        self.monitors = monitors
        self.coordinators = coordinators
        self.network = network
        self._ran = False

    def run(self) -> None:
        """Start every monitor/coordinator and run the whole horizon."""
        if self._ran:
            raise ConfigurationError("testbed already ran")
        self._ran = True
        for coordinator in self.coordinators:
            coordinator.start()
        for monitor in self.monitors:
            monitor.start()
        end = self.config.horizon_steps * self.config.default_interval
        self.engine.run_until(end)

    @property
    def total_samples(self) -> int:
        """Sampling operations across all monitors."""
        return sum(m.samples_taken for m in self.monitors)

    @property
    def sampling_ratio(self) -> float:
        """Cost relative to periodic default sampling of every VM."""
        denominator = len(self.monitors) * self.config.horizon_steps
        return self.total_samples / float(denominator)

    def dom0_utilization_stats(self) -> list[dict[str, float]]:
        """Per-server Dom0 utilisation box-plot statistics (Fig. 6)."""
        return [s.dom0.utilization_stats() for s in self.servers]

    def monitor_accuracy(self) -> list[RunAccuracy]:
        """Per-monitor accuracy vs. periodic ground truth (per-VM tasks)."""
        results = []
        for monitor in self.monitors:
            truth = monitor.vm.agent.values[:self.config.horizon_steps]
            results.append(evaluate_sampling(
                truth, monitor.task.threshold, monitor.sampled_steps,
                monitor.task.direction))
        return results

    def monetary_bill(self, price_per_sample: float = 1.0e-4,
                      price_per_message: float = 1.0e-6,
                      ) -> MonetaryCostModel:
        """Price the run's sampling and coordination traffic.

        Returns a :class:`MonetaryCostModel` charged with every sampling
        operation and coordination message of the run (pay-as-you-go,
        paper SI).
        """
        bill = MonetaryCostModel(price_per_sample=price_per_sample,
                                 price_per_message=price_per_message)
        bill.charge_sample(self.total_samples)
        bill.charge_message(self.network.total_messages)
        return bill


def build_testbed(config: TestbedConfig | None = None,
                  adaptation: AdaptationConfig | None = None,
                  policy: AllocationPolicy | None = None,
                  cost_model: NetworkSamplingCostModel | None = None,
                  trace_hook: "TraceHook | None" = None) -> Testbed:
    """Construct a network-monitoring testbed per the configuration.

    Every VM gets an independent traffic stream (diurnal phase drawn per
    VM so servers see unsynchronised load) and a threshold at the
    ``(100 - k)``-th percentile of its own stream. In distributed mode the
    VMs under one coordinator form a single task whose global threshold is
    the sum of the local ones.

    Args:
        config: testbed shape and task parameters.
        adaptation: monitor-level adaptation tunables.
        policy: allocation policy for distributed mode.
        cost_model: Dom0 CPU cost model.
        trace_hook: optional ``(vm_id, rho, packets) -> (rho, packets)``
            transform applied to each VM's generated stream before the
            agent is built — the injection point for attacks and fault
            scenarios. Thresholds are calibrated on the *clean* stream
            (as an operator would, from historical data), so injected
            anomalies register as violations rather than raising the bar.
    """
    config = config or TestbedConfig()
    streams = RandomStreams(config.seed)
    engine = SimulationEngine()
    network = VirtualNetwork(
        loss_rate=config.message_loss_rate,
        rng=(streams.stream("network-loss")
             if config.message_loss_rate > 0.0 else None))
    cost = cost_model or NetworkSamplingCostModel()

    servers = [PhysicalServer(s, config.default_interval,
                              config.horizon_steps)
               for s in range(config.num_servers)]

    vms: list[VirtualMachine] = []
    thresholds: list[float] = []
    for vm_id in range(config.num_vms):
        server_id = vm_id // config.vms_per_server
        rng = streams.stream("vm-traffic", vm_id)
        generator = TrafficDifferenceGenerator(
            phase=float(rng.uniform(0.0, 1.0)))
        rho, packets = generator.generate_with_volume(config.horizon_steps,
                                                      rng)
        thresholds.append(threshold_for_selectivity(
            rho, config.selectivity_percent))
        if trace_hook is not None:
            rho, packets = trace_hook(vm_id, rho, packets)
        agent = TraceAgent(values=rho, packets=packets)
        vm = VirtualMachine(vm_id, server_id, agent)
        servers[server_id].attach_vm(vm_id)
        vms.append(vm)

    monitors: list[MonitorDaemon] = []
    coordinators: list[CoordinatorNode] = []

    if not config.distributed:
        for vm, threshold in zip(vms, thresholds):
            task = TaskSpec(threshold=threshold,
                            error_allowance=config.error_allowance,
                            default_interval=config.default_interval,
                            max_interval=config.max_interval,
                            name=f"net/vm-{vm.vm_id}")
            monitors.append(MonitorDaemon(
                monitor_id=vm.vm_id, vm=vm, task=task, engine=engine,
                cost_model=cost, dom0=servers[vm.server_id].dom0,
                horizon_steps=config.horizon_steps, config=adaptation))
        return Testbed(config, engine, servers, vms, monitors, [], network)

    # Distributed mode: one task per coordinator group.
    for group_start in range(0, config.num_servers,
                             config.servers_per_coordinator):
        group_servers = range(
            group_start,
            min(group_start + config.servers_per_coordinator,
                config.num_servers))
        group_vms = [vm for vm in vms if vm.server_id in group_servers]
        local_thresholds = tuple(thresholds[vm.vm_id] for vm in group_vms)
        spec = DistributedTaskSpec(
            global_threshold=float(sum(local_thresholds)),
            local_thresholds=local_thresholds,
            error_allowance=config.error_allowance,
            default_interval=config.default_interval,
            max_interval=config.max_interval,
            name=f"net/group-{group_start // config.servers_per_coordinator}")
        coordinator = CoordinatorNode(spec, engine, network, policy=policy)
        for slot, vm in enumerate(group_vms):
            task = spec.local_spec(
                slot, config.error_allowance / spec.num_monitors)
            monitor = MonitorDaemon(
                monitor_id=slot, vm=vm, task=task, engine=engine,
                cost_model=cost, dom0=servers[vm.server_id].dom0,
                horizon_steps=config.horizon_steps, config=adaptation,
                coordinator=coordinator)
            coordinator.register(monitor)
            monitors.append(monitor)
        coordinators.append(coordinator)
    return Testbed(config, engine, servers, vms, monitors, coordinators,
                   network)
