"""Virtual machines and their monitoring agents (paper SV-A).

In the paper an *agent* runs inside every VM and produces the monitoring
data — replaying network traces, performance datasets, or web access logs.
Here :class:`TraceAgent` serves precomputed full-resolution streams: the
monitored metric value and, for network tasks, the raw packet volume the
sampling operation must inspect (which drives the Dom0 CPU cost).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError

__all__ = ["TraceAgent", "VirtualMachine"]


class TraceAgent:
    """Agent serving a precomputed metric stream for one VM.

    Args:
        values: metric value per default-interval grid step.
        packets: packets to inspect per grid step (``None`` for metrics
            whose sampling cost does not scale with data volume).
    """

    def __init__(self, values: np.ndarray, packets: np.ndarray | None = None):
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ConfigurationError(
                f"agent values must be non-empty 1-d, got {arr.shape}")
        self._values = arr
        if packets is None:
            self._packets = None
        else:
            pk = np.asarray(packets, dtype=np.int64)
            if pk.shape != arr.shape:
                raise ConfigurationError(
                    f"packets misaligned: {pk.shape} vs {arr.shape}")
            if (pk < 0).any():
                raise ConfigurationError("packet counts must be >= 0")
            self._packets = pk

    @property
    def horizon(self) -> int:
        """Number of grid steps the agent can serve."""
        return int(self._values.size)

    def value_at(self, step: int) -> float:
        """The monitored value at a grid step."""
        if not 0 <= step < self._values.size:
            raise SimulationError(
                f"step {step} outside agent horizon [0, {self._values.size})")
        return float(self._values[step])

    def packets_at(self, step: int) -> int:
        """Packets a sampling operation at ``step`` must inspect (0 when
        the stream carries no volume information)."""
        if self._packets is None:
            return 0
        if not 0 <= step < self._packets.size:
            raise SimulationError(
                f"step {step} outside agent horizon "
                f"[0, {self._packets.size})")
        return int(self._packets[step])

    @property
    def values(self) -> np.ndarray:
        """The full underlying stream (read-only use intended); ground
        truth for accuracy scoring."""
        return self._values


class VirtualMachine:
    """One VM: identity, placement, and its agent."""

    def __init__(self, vm_id: int, server_id: int, agent: TraceAgent):
        if vm_id < 0 or server_id < 0:
            raise ConfigurationError(
                f"ids must be >= 0, got vm={vm_id}, server={server_id}")
        self._vm_id = vm_id
        self._server_id = server_id
        self._agent = agent

    @property
    def vm_id(self) -> int:
        """The VM's index in the testbed."""
        return self._vm_id

    @property
    def server_id(self) -> int:
        """Index of the hosting physical server."""
        return self._server_id

    @property
    def agent(self) -> TraceAgent:
        """The monitoring agent running inside the VM."""
        return self._agent
