"""Exception hierarchy for the Volley reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A task, adaptation, or testbed configuration is invalid.

    Raised eagerly at construction time so that misconfiguration is caught
    before a long simulation starts.
    """


class TraceError(ReproError):
    """A metric trace is malformed (empty, NaN, wrong shape, ...)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class CoordinationError(ReproError):
    """Distributed coordination received inconsistent monitor reports."""


class CorrelationError(ReproError):
    """State-correlation detection/planning failed (e.g. no overlap)."""


class ProtocolError(ReproError):
    """A runtime wire-protocol frame is malformed or oversized.

    Raised by :mod:`repro.runtime.protocol` on truncated frames, frames
    above the size limit, bodies that are not valid JSON objects, and
    replies that report a server-side error.
    """


class CheckpointError(ReproError):
    """A runtime checkpoint file is unreadable or incompatible."""


class ClusterError(ReproError):
    """A cluster operation failed (worker unreachable, migration aborted,
    placement inconsistency).

    Raised by :mod:`repro.cluster` transports when a worker process cannot
    be reached and by the coordinator when a control operation (migration,
    re-placement) cannot complete safely. Data-path callers treat it as
    shed-with-count, never as a crash.
    """
