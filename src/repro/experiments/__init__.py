"""Experiment harness: runners, figure drivers and text reporting.

* :mod:`repro.experiments.runner` — single-monitor runs (Figs. 5, 7).
* :mod:`repro.experiments.distributed` — distributed-task runs (Fig. 8).
* :mod:`repro.experiments.figures` — one driver per evaluation figure.
* :mod:`repro.experiments.parallel` — parallel sweep execution with
  deterministic seeding and on-disk result caching (DESIGN.md S25).
* :mod:`repro.experiments.reporting` — paper-style text tables.
"""

from repro.experiments.distributed import (DistributedRunResult,
                                           run_distributed_task)
from repro.experiments.delay import DelayResult, detection_delay_experiment
from repro.experiments.monetary import MonetaryReport, monetary_analysis
from repro.experiments.multitask import MultiTaskResult, multitask_experiment
from repro.experiments.parallel import (SweepCache, SweepJob, SweepStats,
                                        default_cache_dir, job_key,
                                        job_streams, resolve_workers,
                                        run_sweep)
from repro.experiments.reliability import (ReliabilityResult,
                                           reliability_experiment)
from repro.experiments.runner import (RunResult, run_adaptive, run_periodic,
                                      run_sampler_on_trace, run_triggered)

__all__ = [
    "DelayResult",
    "DistributedRunResult",
    "MultiTaskResult",
    "MonetaryReport",
    "ReliabilityResult",
    "SweepCache",
    "SweepJob",
    "SweepStats",
    "default_cache_dir",
    "detection_delay_experiment",
    "job_key",
    "job_streams",
    "monetary_analysis",
    "multitask_experiment",
    "reliability_experiment",
    "resolve_workers",
    "run_sweep",
    "RunResult",
    "run_adaptive",
    "run_distributed_task",
    "run_periodic",
    "run_sampler_on_trace",
    "run_triggered",
]
