"""Command-line driver: ``python -m repro.experiments <figure> [...]``.

Regenerates the paper's evaluation figures as text tables::

    python -m repro.experiments fig5a
    python -m repro.experiments fig6
    python -m repro.experiments all
    python -m repro.experiments all --csv results/   # also dump CSVs

Extension experiments (not paper figures) are available by name::

    python -m repro.experiments monetary
    python -m repro.experiments delay
    python -m repro.experiments multitask
    python -m repro.experiments reliability

Scale with ``REPRO_SCALE=4 python -m repro.experiments fig5a`` to approach
the paper's testbed size.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.experiments.delay import detection_delay_experiment
from repro.experiments.figures import (fig5, fig6, fig7, fig7_report, fig8,
                                       scale_factor)
from repro.experiments.monetary import monetary_analysis
from repro.experiments.multitask import multitask_experiment
from repro.experiments.reliability import reliability_experiment
from repro.experiments.reporting import to_csv

FIGURES = ("fig5a", "fig5b", "fig5c", "fig6", "fig7", "fig8")
EXTENSIONS = ("monetary", "delay", "multitask", "reliability")


def run_figure(name: str, seed: int) -> tuple[str, object]:
    """Run one driver; returns ``(text report, result object)``."""
    if name == "fig5a":
        result = fig5("network", seed=seed)
        return result.report(), result
    if name == "fig5b":
        result = fig5("system", seed=seed)
        return result.report(), result
    if name == "fig5c":
        result = fig5("application", seed=seed)
        return result.report(), result
    if name == "fig6":
        result = fig6(seed=seed)
        return result.report(), result
    if name == "fig7":
        result = fig7(seed=seed)
        return fig7_report(result), result
    if name == "fig8":
        result = fig8(seed=seed)
        return result.report(), result
    if name == "monetary":
        result = monetary_analysis(seed=seed)
        return result.report(), result
    if name == "delay":
        result = detection_delay_experiment(seed=seed)
        return result.report(), result
    if name == "multitask":
        result = multitask_experiment(seed=seed)
        return result.report(), result
    if name == "reliability":
        result = reliability_experiment(seed=seed)
        return result.report(), result
    raise ValueError(f"unknown figure {name!r}")


def write_csv(directory: pathlib.Path, name: str, result: object) -> None:
    """Dump a figure result's rows as ``<name>.csv`` under ``directory``."""
    to_rows = getattr(result, "to_rows", None)
    if to_rows is None:
        return
    headers, rows = to_rows()
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{name}.csv").write_text(to_csv(headers, rows))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the Volley paper's evaluation figures "
                    "and the extension experiments.")
    parser.add_argument("figure", choices=FIGURES + EXTENSIONS + ("all",),
                        help="which figure/experiment to regenerate "
                             "('all' = the paper's six figures)")
    parser.add_argument("--seed", type=int, default=0,
                        help="master random seed (default 0)")
    parser.add_argument("--csv", type=pathlib.Path, default=None,
                        metavar="DIR",
                        help="also write each figure's data as CSV into "
                             "this directory (figures only)")
    args = parser.parse_args(argv)

    names = FIGURES if args.figure == "all" else (args.figure,)
    print(f"[repro] scale factor: {scale_factor():g} "
          f"(set REPRO_SCALE to change)")
    for name in names:
        text, result = run_figure(name, args.seed)
        print()
        print(text)
        if args.csv is not None:
            write_csv(args.csv, name, result)
            if (args.csv / f"{name}.csv").exists():
                print(f"[repro] wrote {args.csv / (name + '.csv')}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
