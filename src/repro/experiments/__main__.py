"""Command-line driver: ``python -m repro.experiments <figure> [...]``.

Regenerates the paper's evaluation figures as text tables::

    python -m repro.experiments fig5a
    python -m repro.experiments fig6
    python -m repro.experiments all
    python -m repro.experiments all --csv results/   # also dump CSVs

Extension experiments (not paper figures) are available by name::

    python -m repro.experiments monetary
    python -m repro.experiments delay
    python -m repro.experiments multitask
    python -m repro.experiments reliability

Scale with ``REPRO_SCALE=4 python -m repro.experiments fig5a`` to approach
the paper's testbed size. Figure sweeps fan out over a process pool
(``--workers`` / ``REPRO_WORKERS``; results are bit-for-bit identical at
any worker count) and cache completed cells on disk, so a re-run only
recomputes cells whose parameters changed; disable with ``--no-cache``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.experiments.delay import detection_delay_experiment
from repro.experiments.figures import (fig5, fig6, fig7, fig7_report, fig8,
                                       scale_factor)
from repro.experiments.monetary import monetary_analysis
from repro.experiments.multitask import multitask_experiment
from repro.experiments.parallel import SweepCache, default_cache_dir
from repro.experiments.reliability import reliability_experiment
from repro.experiments.reporting import to_csv

FIGURES = ("fig5a", "fig5b", "fig5c", "fig6", "fig7", "fig8")
EXTENSIONS = ("monetary", "delay", "multitask", "reliability")
#: convenience spellings accepted by the CLI
ALIASES = {"fig5": "fig5a"}


def run_figure(name: str, seed: int, *, workers: int | None = None,
               cache: SweepCache | None = None, streams: int | None = None,
               horizon: int | None = None) -> tuple[str, object]:
    """Run one driver; returns ``(text report, result object)``.

    ``streams`` / ``horizon`` override the scale-derived sweep sizes
    where the figure has such axes (streams also maps to fig8's monitor
    count); extension experiments take only the seed.
    """
    name = ALIASES.get(name, name)
    if name == "fig5a":
        result = fig5("network", num_streams=streams, horizon=horizon,
                      seed=seed, workers=workers, cache=cache)
        return result.report(), result
    if name == "fig5b":
        result = fig5("system", num_streams=streams, horizon=horizon,
                      seed=seed, workers=workers, cache=cache)
        return result.report(), result
    if name == "fig5c":
        result = fig5("application", num_streams=streams, horizon=horizon,
                      seed=seed, workers=workers, cache=cache)
        return result.report(), result
    if name == "fig6":
        result = fig6(horizon=horizon, seed=seed, workers=workers,
                      cache=cache)
        return result.report(), result
    if name == "fig7":
        result = fig7(num_streams=streams, horizon=horizon, seed=seed,
                      workers=workers, cache=cache)
        return fig7_report(result), result
    if name == "fig8":
        result = fig8(num_monitors=streams, horizon=horizon, seed=seed,
                      workers=workers, cache=cache)
        return result.report(), result
    if name == "monetary":
        result = monetary_analysis(seed=seed)
        return result.report(), result
    if name == "delay":
        result = detection_delay_experiment(seed=seed)
        return result.report(), result
    if name == "multitask":
        result = multitask_experiment(seed=seed)
        return result.report(), result
    if name == "reliability":
        result = reliability_experiment(seed=seed)
        return result.report(), result
    raise ValueError(f"unknown figure {name!r}")


def write_csv(directory: pathlib.Path, name: str, result: object) -> None:
    """Dump a figure result's rows as ``<name>.csv`` under ``directory``."""
    to_rows = getattr(result, "to_rows", None)
    if to_rows is None:
        return
    headers, rows = to_rows()
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{name}.csv").write_text(to_csv(headers, rows))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the Volley paper's evaluation figures "
                    "and the extension experiments.")
    parser.add_argument("figure",
                        choices=FIGURES + EXTENSIONS + ("all",)
                        + tuple(ALIASES),
                        help="which figure/experiment to regenerate "
                             "('all' = the paper's six figures; 'fig5' "
                             "is an alias for fig5a)")
    parser.add_argument("--seed", type=int, default=0,
                        help="master random seed (default 0)")
    parser.add_argument("--csv", type=pathlib.Path, default=None,
                        metavar="DIR",
                        help="also write each figure's data as CSV into "
                             "this directory (figures only)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="sweep process-pool size (default: "
                             "REPRO_WORKERS, then the CPU count; 1 = "
                             "strictly serial, identical results either "
                             "way)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every sweep cell instead of "
                             "reusing the on-disk result cache")
    parser.add_argument("--cache-dir", type=pathlib.Path, default=None,
                        metavar="DIR",
                        help="sweep cache location (default: "
                             "REPRO_CACHE_DIR, then the XDG cache dir)")
    parser.add_argument("--streams", type=int, default=None, metavar="N",
                        help="override the stream/monitor count of "
                             "fig5*/fig7/fig8 sweeps")
    parser.add_argument("--horizon", type=int, default=None, metavar="N",
                        help="override the per-stream horizon of figure "
                             "sweeps")
    args = parser.parse_args(argv)

    cache: SweepCache | None = None
    if not args.no_cache:
        cache = SweepCache(args.cache_dir or default_cache_dir())

    names = FIGURES if args.figure == "all" else (args.figure,)
    print(f"[repro] scale factor: {scale_factor():g} "
          f"(set REPRO_SCALE to change)")
    for name in names:
        text, result = run_figure(name, args.seed, workers=args.workers,
                                  cache=cache, streams=args.streams,
                                  horizon=args.horizon)
        print()
        print(text)
        sweep_stats = getattr(result, "sweep_stats", None)
        if sweep_stats is not None:
            print(sweep_stats.report())
        if args.csv is not None:
            write_csv(args.csv, ALIASES.get(name, name), result)
            csv_name = ALIASES.get(name, name)
            if (args.csv / f"{csv_name}.csv").exists():
                print(f"[repro] wrote {args.csv / (csv_name + '.csv')}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
