"""Core hot-path benchmark (``python -m repro.experiments.bench_core``).

Measures the sampling core's two drive surfaces against each other on a
~1M-point synthetic trace and writes the numbers to ``BENCH_core.json``:

* ``observe`` — per-call throughput of the reference
  :meth:`~repro.core.adaptation.ViolationLikelihoodSampler.observe` vs.
  the fused :meth:`observe_fast` (every grid point fed, worst-case
  estimation load);
* ``run_adaptive`` — end-to-end wall time of a full adaptive run through
  the reference driver (:func:`~repro.experiments.runner.run_sampler_on_trace`,
  one ``SamplingDecision`` per step) vs. the fused driver
  (:func:`~repro.experiments.runner.run_adaptive`);
* ``evaluate_sampling`` — the vectorized scorer vs. the seed's
  Python-set/episode-scan implementation (kept here verbatim as the
  timing baseline);
* ``max_admissible_interval`` — closed-form Cantelli inversion + one
  fused pass vs. probing ``misdetection_bound`` per candidate interval;
* ``telemetry_overhead`` — the fused ``observe_fast`` loop with the
  process-wide sampler counters pointed at a live
  :class:`~repro.telemetry.registry.MetricsRegistry` vs. the default
  :data:`~repro.telemetry.registry.NULL_REGISTRY`; ``--max-telemetry-overhead``
  (default 5%) turns the relative slowdown into an exit-code ceiling, the
  guard that keeps instrumentation honest about its hot-path cost.

Before timing anything the CLI proves the fast path is *exactly*
equivalent to the reference: both drivers are run over the same trace for
both estimators (``chebyshev`` and ``gaussian``) and their
``(sampled_indices, intervals, beta)`` streams must match bit-for-bit,
accuracy summaries included. A mismatch fails the run regardless of any
throughput result. ``--min-speedup`` turns the ``run_adaptive`` speedup
into an exit-code floor for CI.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Any, Callable

import numpy as np

from repro.core.accuracy import alert_episodes, truth_alert_indices
from repro.core.adaptation import AdaptationConfig, ViolationLikelihoodSampler
from repro.core.likelihood import (max_admissible_interval,
                                   misdetection_bound)
from repro.core.task import TaskSpec
from repro.experiments.runner import (run_adaptive, run_sampler_on_trace)

__all__ = ["main", "run_bench", "synthetic_trace"]

BENCH_VERSION = 1


def synthetic_trace(points: int, seed: int) -> np.ndarray:
    """A deterministic mean-reverting trace with bursts.

    Mimics the paper's traffic-difference streams: a quiet noisy band the
    sampler can stretch its interval over, plus sparse bursts that force
    resets — so both the growth and the reset paths are exercised.
    """
    rng = np.random.default_rng(seed)
    noise = rng.normal(0.0, 1.0, points)
    walk = np.empty(points)
    level = 0.0
    phi = 0.98
    for i in range(points):
        level = phi * level + noise[i]
        walk[i] = level
    bursts = np.zeros(points)
    n_bursts = max(points // 50_000, 1)
    starts = rng.integers(0, max(points - 200, 1), n_bursts)
    for s in starts:
        width = int(rng.integers(20, 200))
        bursts[s:s + width] += rng.uniform(8.0, 20.0)
    return walk + bursts


def _best_of(repeats: int, fn: Callable[[], Any]) -> tuple[float, Any]:
    """``(best wall seconds, last result)`` over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _evaluate_sampling_legacy(values: np.ndarray, threshold: float,
                              sampled_indices: np.ndarray) -> dict[str, Any]:
    """The seed's set-based scorer, kept verbatim as the timing baseline."""
    arr = np.asarray(values, dtype=float)
    truth = truth_alert_indices(arr, threshold)
    sampled = np.unique(np.asarray(sampled_indices, dtype=int))
    sampled_set = set(int(i) for i in sampled)
    detected = np.array([i for i in truth if int(i) in sampled_set],
                        dtype=int)
    episodes = alert_episodes(truth)
    detected_eps = 0
    delays: list[int] = []
    for start, end in episodes:
        hit = next((i for i in range(start, end + 1) if i in sampled_set),
                   None)
        if hit is not None:
            detected_eps += 1
            delays.append(hit - start)
    n_truth = int(truth.size)
    return {
        "truth_alerts": n_truth,
        "detected_alerts": int(detected.size),
        "misdetection_rate": (0.0 if n_truth == 0
                              else 1.0 - detected.size / n_truth),
        "truth_episodes": len(episodes),
        "detected_episodes": detected_eps,
        "mean_detection_delay": float(np.mean(delays)) if delays else 0.0,
    }


def _check_equivalence(trace: np.ndarray, task: TaskSpec,
                       estimator: str) -> dict[str, Any]:
    """Prove fast-path and reference decision streams are identical.

    Runs the reference driver (``observe``) and the fused driver
    (``observe_fast``) over the same trace, then replays the schedule
    step-by-step collecting per-sample ``beta`` from both surfaces.
    """
    config = AdaptationConfig(estimator=estimator)
    reference = run_sampler_on_trace(
        trace, ViolationLikelihoodSampler(task, config), task.threshold,
        task.direction)
    fast = run_adaptive(trace, task, config)

    schedule_equal = (
        np.array_equal(reference.sampled_indices, fast.sampled_indices)
        and np.array_equal(reference.intervals, fast.intervals)
        and reference.accuracy == fast.accuracy)

    ref_sampler = ViolationLikelihoodSampler(task, config)
    fast_sampler = ViolationLikelihoodSampler(task, config)
    betas_equal = True
    for t in reference.sampled_indices.tolist():
        value = float(trace[t])
        decision = ref_sampler.observe(value, t)
        fast_sampler.observe_fast(value, t)
        if decision.misdetection_bound != \
                fast_sampler.last_misdetection_bound:
            betas_equal = False
            break
    return {
        "estimator": estimator,
        "samples": int(reference.sampled_indices.size),
        "schedule_identical": bool(schedule_equal),
        "beta_stream_identical": bool(betas_equal),
        "identical": bool(schedule_equal and betas_equal),
    }


def run_bench(points: int = 1_000_000, repeats: int = 3, seed: int = 0,
              error_allowance: float = 0.05, max_interval: int = 10,
              equivalence_points: int = 150_000,
              skip_equivalence: bool = False) -> dict[str, Any]:
    """Execute the benchmark; returns the ``BENCH_core.json`` payload."""
    trace = synthetic_trace(points, seed)
    threshold = float(np.quantile(trace, 0.99))
    task = TaskSpec(threshold=threshold, error_allowance=error_allowance,
                    max_interval=max_interval, name="bench-core")
    config = AdaptationConfig()

    report: dict[str, Any] = {
        "version": BENCH_VERSION,
        "points": points,
        "repeats": repeats,
        "seed": seed,
        "threshold": threshold,
        "error_allowance": error_allowance,
        "max_interval": max_interval,
    }

    # --- equivalence gate -------------------------------------------------
    if not skip_equivalence:
        eq_trace = trace[:min(equivalence_points, points)]
        checks = [_check_equivalence(eq_trace, task, est)
                  for est in ("chebyshev", "gaussian")]
        report["equivalence"] = {
            "checked_points": int(eq_trace.size),
            "checks": checks,
            "identical": all(c["identical"] for c in checks),
        }

    # --- observe vs observe_fast (per-call, every grid point) -------------
    n_observe = min(points, 200_000)
    observe_values = trace[:n_observe].tolist()

    def drive_reference() -> None:
        sampler = ViolationLikelihoodSampler(task, config)
        observe = sampler.observe
        for t in range(n_observe):
            observe(observe_values[t], t)

    def drive_fast() -> None:
        sampler = ViolationLikelihoodSampler(task, config)
        observe_fast = sampler.observe_fast
        for t in range(n_observe):
            observe_fast(observe_values[t], t)

    ref_seconds, _ = _best_of(repeats, drive_reference)
    fast_seconds, _ = _best_of(repeats, drive_fast)
    report["observe"] = {
        "calls": n_observe,
        "reference_per_sec": n_observe / ref_seconds,
        "fast_per_sec": n_observe / fast_seconds,
        "speedup": ref_seconds / fast_seconds,
    }

    # --- run_adaptive end to end ------------------------------------------
    def adaptive_reference():
        return run_sampler_on_trace(
            trace, ViolationLikelihoodSampler(task, config), task.threshold,
            task.direction)

    ref_seconds, ref_result = _best_of(repeats, adaptive_reference)
    fast_seconds, fast_result = _best_of(
        repeats, lambda: run_adaptive(trace, task, config))
    if ref_result.accuracy != fast_result.accuracy:  # pragma: no cover
        raise AssertionError("fast run_adaptive diverged from reference")
    report["run_adaptive"] = {
        "points": points,
        "samples_taken": int(fast_result.accuracy.samples_taken),
        "sampling_ratio": fast_result.accuracy.sampling_ratio,
        "reference_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "reference_points_per_sec": points / ref_seconds,
        "fast_points_per_sec": points / fast_seconds,
        "speedup": ref_seconds / fast_seconds,
    }

    # --- evaluate_sampling: vectorized vs seed scorer ---------------------
    sampled = ref_result.sampled_indices
    from repro.core.accuracy import evaluate_sampling
    legacy_seconds, _ = _best_of(
        repeats,
        lambda: _evaluate_sampling_legacy(trace, threshold, sampled))
    vector_seconds, _ = _best_of(
        repeats, lambda: evaluate_sampling(trace, threshold, sampled))
    report["evaluate_sampling"] = {
        "sampled_points": int(sampled.size),
        "reference_seconds": legacy_seconds,
        "vectorized_seconds": vector_seconds,
        "speedup": legacy_seconds / vector_seconds,
    }

    # --- admissible interval: closed-form inversion vs probing ------------
    probe_args = (0.0, threshold)
    stats_mean, stats_std = 0.01, 1.0
    n_queries = 20_000

    def probe() -> int:
        best = 0
        for i in range(1, max_interval + 1):
            if misdetection_bound(*probe_args, stats_mean, stats_std,
                                  i) > error_allowance:
                break
            best = i
        return best

    def probe_all() -> int:
        total = 0
        for _ in range(n_queries):
            total += probe()
        return total

    def inverted_all() -> int:
        total = 0
        for _ in range(n_queries):
            total += max_admissible_interval(
                *probe_args, stats_mean, stats_std, error_allowance,
                max_interval)
        return total

    probe_seconds, probe_total = _best_of(repeats, probe_all)
    invert_seconds, invert_total = _best_of(repeats, inverted_all)
    if probe_total != invert_total:  # pragma: no cover - correctness gate
        raise AssertionError("max_admissible_interval diverged from probing")
    report["max_admissible_interval"] = {
        "queries": n_queries,
        "probe_seconds": probe_seconds,
        "inverted_seconds": invert_seconds,
        "speedup": probe_seconds / invert_seconds,
    }

    # --- telemetry overhead on the fast path ------------------------------
    from repro.telemetry.registry import (MetricsRegistry, NULL_REGISTRY,
                                          instrument_samplers)
    live = MetricsRegistry()
    try:
        instrument_samplers(NULL_REGISTRY)
        null_seconds, _ = _best_of(repeats, drive_fast)
        instrument_samplers(live)
        live_seconds, _ = _best_of(repeats, drive_fast)
    finally:
        instrument_samplers(NULL_REGISTRY)
    observed = float(live.snapshot()["volley_sampler_observations_total"]
                     ["series"][0]["value"])
    if observed < n_observe:  # pragma: no cover - correctness gate
        raise AssertionError("live registry missed sampler observations")
    report["telemetry_overhead"] = {
        "calls": n_observe,
        "null_registry_seconds": null_seconds,
        "live_registry_seconds": live_seconds,
        "overhead_fraction": max(0.0, live_seconds / null_seconds - 1.0),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.bench_core",
        description="Benchmark the sampling core's fused fast path "
                    "against the reference implementation.")
    parser.add_argument("--points", type=int, default=1_000_000,
                        help="trace length in grid points (default 1M)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats; best is reported (default 3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--error-allowance", type=float, default=0.05)
    parser.add_argument("--max-interval", type=int, default=10)
    parser.add_argument("--equivalence-points", type=int, default=150_000,
                        help="trace prefix length for the per-step "
                             "equivalence check")
    parser.add_argument("--skip-equivalence", action="store_true")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail (exit 1) when the run_adaptive speedup "
                             "is below this floor")
    parser.add_argument("--max-telemetry-overhead", type=float, default=0.05,
                        help="fail (exit 1) when live-registry sampler "
                             "instrumentation slows observe_fast by more "
                             "than this fraction (default 0.05); negative "
                             "disables the guard")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("BENCH_core.json"))
    args = parser.parse_args(argv)

    if args.points < 1_000:
        parser.error("--points must be >= 1000")
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    report = run_bench(points=args.points, repeats=args.repeats,
                       seed=args.seed,
                       error_allowance=args.error_allowance,
                       max_interval=args.max_interval,
                       equivalence_points=args.equivalence_points,
                       skip_equivalence=args.skip_equivalence)

    args.out.write_text(json.dumps(report, indent=2) + "\n")

    ra = report["run_adaptive"]
    ob = report["observe"]
    ev = report["evaluate_sampling"]
    print(f"[bench-core] observe: {ob['reference_per_sec']:,.0f}/s ref, "
          f"{ob['fast_per_sec']:,.0f}/s fast ({ob['speedup']:.2f}x)")
    print(f"[bench-core] run_adaptive ({ra['points']:,} points): "
          f"{ra['reference_seconds']:.3f}s ref, {ra['fast_seconds']:.3f}s "
          f"fast ({ra['speedup']:.2f}x)")
    print(f"[bench-core] evaluate_sampling: {ev['reference_seconds']*1e3:.1f}"
          f"ms ref, {ev['vectorized_seconds']*1e3:.1f}ms vectorized "
          f"({ev['speedup']:.1f}x)")
    tel = report["telemetry_overhead"]
    print(f"[bench-core] telemetry overhead: "
          f"{tel['null_registry_seconds']*1e3:.1f}ms null, "
          f"{tel['live_registry_seconds']*1e3:.1f}ms live "
          f"({100 * tel['overhead_fraction']:.2f}%)")
    print(f"[bench-core] wrote {args.out}")

    ok = True
    if "equivalence" in report and not report["equivalence"]["identical"]:
        print("[bench-core] FAIL: fast path diverged from the reference",
              file=sys.stderr)
        ok = False
    if args.min_speedup is not None and ra["speedup"] < args.min_speedup:
        print(f"[bench-core] FAIL: run_adaptive speedup {ra['speedup']:.2f}x "
              f"below the {args.min_speedup:.2f}x floor", file=sys.stderr)
        ok = False
    if (args.max_telemetry_overhead >= 0
            and tel["overhead_fraction"] > args.max_telemetry_overhead):
        print(f"[bench-core] FAIL: telemetry overhead "
              f"{100 * tel['overhead_fraction']:.2f}% above the "
              f"{100 * args.max_telemetry_overhead:.1f}% ceiling",
              file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
