"""Scalar-vs-SoA equivalence benchmark (``python -m repro.experiments.bench_soa``).

Drives the same multi-task offer stream through two
:class:`~repro.service.MonitoringService` instances — one stepping every
offer through the scalar :class:`~repro.core.adaptation
.ViolationLikelihoodSampler` path, one batching through the columnar
:class:`~repro.core.soa.SoaSamplerEngine` — and verifies the bit-equivalence
contract of DESIGN.md S31 end to end: identical snapshots (every sampler
state_dict float included), identical per-task alert sequences, identical
sampling counters. Both estimators (``chebyshev`` and ``gaussian``) are
checked; the default stream is 1M+ points so the Welford accumulators pass
through growth, violation streaks, restarts and stale-serving regimes.

The report also carries throughput for each path, which is the honest way
to state the SoA speedup: the columnar engine's win is amortising the
per-offer Python interpreter cost across thousands of rows per tick.

Exit code 1 when any estimator diverges — the CI core-hotpath job runs
this as the equivalence gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Any

import numpy as np

from repro.core.adaptation import AdaptationConfig
from repro.core.task import TaskSpec
from repro.service import MonitoringService

__all__ = ["equivalence_report", "main", "run_equivalence"]

_THRESHOLD = 100.0

ESTIMATORS = ("chebyshev", "gaussian")


def _build_service(tasks: int, estimator: str, soa: bool,
                   max_interval: int) -> MonitoringService:
    config = AdaptationConfig(estimator=estimator)
    service = MonitoringService(config, soa=soa)
    for i in range(tasks):
        service.add_task(
            f"soa-{i:04d}",
            TaskSpec(threshold=_THRESHOLD, error_allowance=0.01,
                     max_interval=max_interval, name=f"soa-{i:04d}"))
    return service


def _alert_log(service: MonitoringService) -> dict[str, list[tuple]]:
    return {name: [(a.time_index, a.value, a.threshold)
                   for a in service.alerts(name)]
            for name in service.task_names}


def _task_counters(service: MonitoringService) -> dict[str, tuple]:
    return {name: (service.samples_taken(name), service.interval(name),
                   service.next_due(name), service.observations(name))
            for name in service.task_names}


def run_equivalence(points: int, tasks: int, estimator: str,
                    batch: int = 4096, seed: int = 7,
                    max_interval: int = 10) -> dict[str, Any]:
    """One estimator's bit-identity check + throughput numbers.

    The stream is round-robin over ``tasks`` with heavy gaussian noise
    hovering below the threshold, so interval growth, violations and
    resets all occur. The scalar service consumes it offer-by-offer
    (:meth:`~repro.service.MonitoringService.offer_fast`); the SoA service
    consumes it as ``batch``-sized columns
    (:meth:`~repro.service.MonitoringService.offer_columns`).
    """
    if tasks < 1 or points < tasks:
        raise ValueError(f"need points >= tasks >= 1, got "
                         f"{points=} {tasks=}")
    rng = np.random.default_rng(seed)
    values = rng.normal(80.0, 18.0, points)
    names = [f"soa-{i:04d}" for i in range(tasks)]

    scalar = _build_service(tasks, estimator, soa=False,
                            max_interval=max_interval)
    vector = _build_service(tasks, estimator, soa=True,
                            max_interval=max_interval)

    # Scalar path: one interpreter round-trip per offer.
    started = time.perf_counter()
    value_list = values.tolist()
    for i, value in enumerate(value_list):
        scalar.offer_fast(names[i % tasks], value, i // tasks)
    scalar_elapsed = time.perf_counter() - started

    # Columnar path: the same stream as (row, step, value) columns. Rows
    # resolve once up front, exactly as the server's intern table does.
    rows_by_task = np.asarray([vector.soa_row_for(n) for n in names],
                              dtype=np.int64)
    positions = np.arange(points, dtype=np.int64)
    all_rows = rows_by_task[positions % tasks]
    all_steps = positions // tasks
    started = time.perf_counter()
    applied = 0
    for lo in range(0, points, batch):
        hi = min(lo + batch, points)
        a, _, rejected, _ = vector.offer_columns(
            all_rows[lo:hi], all_steps[lo:hi], values[lo:hi], names=None)
        applied += a
        if rejected:
            raise AssertionError(
                f"columnar path rejected {rejected} offers")
    soa_elapsed = time.perf_counter() - started

    snapshots_equal = scalar.snapshot() == vector.snapshot()
    alerts_equal = _alert_log(scalar) == _alert_log(vector)
    counters_equal = _task_counters(scalar) == _task_counters(vector)
    return {
        "estimator": estimator,
        "points": points,
        "tasks": tasks,
        "batch": batch,
        "applied": applied,
        "identical": bool(snapshots_equal and alerts_equal
                          and counters_equal),
        "snapshots_equal": snapshots_equal,
        "alerts_equal": alerts_equal,
        "counters_equal": counters_equal,
        "alerts": sum(len(log) for log in _alert_log(vector).values()),
        "scalar_points_per_sec": (round(points / scalar_elapsed)
                                  if scalar_elapsed else 0),
        "soa_points_per_sec": (round(points / soa_elapsed)
                               if soa_elapsed else 0),
        "soa_speedup": (round(scalar_elapsed / soa_elapsed, 2)
                        if soa_elapsed else 0.0),
    }


def equivalence_report(points: int = 1_000_000, tasks: int = 1024,
                       batch: int = 4096, seed: int = 7) -> dict[str, Any]:
    """Both estimators' equivalence runs plus a combined verdict.

    This is the block the load generator's ``--protocol-sweep`` embeds in
    ``BENCH_runtime.json``.
    """
    runs = [run_equivalence(points, tasks, estimator, batch=batch,
                            seed=seed) for estimator in ESTIMATORS]
    return {
        "points": points,
        "tasks": tasks,
        "identical": all(run["identical"] for run in runs),
        "estimators": {run["estimator"]: run for run in runs},
    }


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.bench_soa",
        description="Verify the SoA sampler engine is bit-identical to "
                    "the scalar sampler over a large stream and report "
                    "the throughput of both paths.")
    parser.add_argument("--points", type=int, default=1_000_000,
                        help="stream length per estimator (default 1M)")
    parser.add_argument("--tasks", type=int, default=1024,
                        help="concurrent tasks (default 1024)")
    parser.add_argument("--batch", type=int, default=4096,
                        help="columnar batch size (default 4096)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the JSON report here")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.experiments.bench_soa``)."""
    args = _build_parser().parse_args(argv)
    report = equivalence_report(points=args.points, tasks=args.tasks,
                                batch=args.batch, seed=args.seed)
    for estimator, run in report["estimators"].items():
        verdict = "bit-identical" if run["identical"] else "DIVERGED"
        print(f"[bench-soa] {estimator}: {verdict} over "
              f"{run['points']} points / {run['tasks']} tasks; "
              f"scalar {run['scalar_points_per_sec']}/s, "
              f"soa {run['soa_points_per_sec']}/s "
              f"({run['soa_speedup']}x); alerts={run['alerts']}",
              flush=True)
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n",
                            encoding="utf-8")
        print(f"[bench-soa] -> {args.out}", flush=True)
    if not report["identical"]:
        print("[bench-soa] FAIL: SoA engine diverged from the scalar "
              "sampler", file=sys.stderr, flush=True)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
