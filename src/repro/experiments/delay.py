"""Detection-delay and event-coverage analysis for episodic anomalies.

The paper motivates fine-grained sampling through event handling twice
(SI): a violation may slip between sparse periodic samples entirely, and
"coarse sampling intervals reduce the amount of data available for
offline event analysis". For episodic anomalies (SYN floods, flash
crowds) that translates into two operational quantities this experiment
measures against periodic sampling at *matched cost*:

* **detection delay** — grid steps from episode onset to the first
  sampled violating point (Volley's is bounded by its max interval: the
  ramp re-arms it to the default rate);
* **event coverage** — the fraction of violating points actually
  captured. Here adaptation wins structurally: Volley samples at the
  default rate *throughout* every episode (the bound keeps it reset), so
  the analyst gets near-complete event data, while cost-matched periodic
  sampling captures only ``1/I`` of it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import box_stats
from repro.core.accuracy import alert_episodes, truth_alert_indices
from repro.core.adaptation import AdaptationConfig
from repro.core.task import TaskSpec
from repro.exceptions import ConfigurationError
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_adaptive, run_periodic
from repro.simulation.randomness import RandomStreams
from repro.workloads.ddos import SynFloodAttack, inject_attacks
from repro.workloads.traffic import TrafficDifferenceGenerator

__all__ = ["DelayResult", "detection_delay_experiment"]


@dataclass(frozen=True, slots=True)
class DelayResult:
    """Detection-delay comparison at matched sampling cost.

    Delays are measured in default intervals from episode onset to the
    first sampled violating point; missed episodes are excluded from the
    delay statistics but reported separately.

    Attributes:
        episodes: injected anomaly episodes.
        volley_ratio: Volley's measured sampling ratio.
        volley_delays / periodic_delays: per-episode detection delays.
        volley_missed / periodic_missed: episodes never detected.
        volley_coverage / periodic_coverage: fraction of violating points
            captured (the data available for offline event analysis).
        periodic_interval: fixed interval chosen to match Volley's cost.
    """

    episodes: int
    volley_ratio: float
    volley_delays: tuple[float, ...]
    periodic_delays: tuple[float, ...]
    volley_missed: int
    periodic_missed: int
    volley_coverage: float
    periodic_coverage: float
    periodic_interval: int

    def report(self) -> str:
        """Text rendering of the delay/coverage comparison."""
        rows = []
        for name, delays, missed, coverage in (
                ("volley", self.volley_delays, self.volley_missed,
                 self.volley_coverage),
                (f"periodic(I={self.periodic_interval})",
                 self.periodic_delays, self.periodic_missed,
                 self.periodic_coverage)):
            if delays:
                st = box_stats(np.asarray(delays))
                rows.append([name, len(delays), missed, st["median"],
                             st["max"], coverage])
            else:
                rows.append([name, 0, missed, "-", "-", coverage])
        return format_table(
            ["scheme", "detected", "missed", "median-delay", "max-delay",
             "event-coverage"],
            rows,
            title=(f"Detection delay & event coverage over "
                   f"{self.episodes} injected episodes (cost-matched; "
                   f"Volley ratio {self.volley_ratio:.3f})"))


def _episode_delays(values: np.ndarray, threshold: float,
                    sampled: np.ndarray) -> tuple[list[float], int]:
    """Per-episode delay from onset to first sampled violating point."""
    truth = truth_alert_indices(values, threshold)
    sampled_set = set(int(i) for i in sampled)
    delays: list[float] = []
    missed = 0
    for start, end in alert_episodes(truth):
        hit = next((i for i in range(start, end + 1)
                    if i in sampled_set), None)
        if hit is None:
            missed += 1
        else:
            delays.append(float(hit - start))
    return delays, missed


def detection_delay_experiment(num_episodes: int = 12,
                               horizon: int = 30_000,
                               error_allowance: float = 0.01,
                               peak_syn_rate: float = 4000.0,
                               threshold: float = 1000.0,
                               seed: int = 0,
                               config: AdaptationConfig | None = None,
                               ) -> DelayResult:
    """Measure detection delays for injected SYN-flood episodes.

    A quiet traffic-difference stream carries ``num_episodes`` floods at
    regular offsets; Volley runs at the given allowance, and periodic
    sampling runs at the fixed interval closest to Volley's measured
    budget, so the comparison isolates *placement* of samples from their
    *number*.
    """
    if num_episodes < 1:
        raise ConfigurationError(
            f"num_episodes must be >= 1, got {num_episodes}")
    if horizon < 100 * num_episodes:
        raise ConfigurationError(
            "horizon too short for the requested episode count")
    rng = RandomStreams(seed).stream("delay-experiment")
    base = TrafficDifferenceGenerator(burst_prob=0.0).generate(horizon, rng)
    spacing = horizon // (num_episodes + 1)
    attacks = [SynFloodAttack(start=(i + 1) * spacing,
                              peak_syn_rate=peak_syn_rate,
                              ramp_steps=10, hold_steps=40, decay_steps=10)
               for i in range(num_episodes)]
    values = inject_attacks(base, attacks)

    task = TaskSpec(threshold=threshold, error_allowance=error_allowance,
                    max_interval=10)
    volley = run_adaptive(values, task, config)
    volley_delays, volley_missed = _episode_delays(
        values, threshold, volley.sampled_indices)

    matched = max(1, int(round(1.0 / volley.sampling_ratio)))
    periodic = run_periodic(values, threshold, interval=matched)
    periodic_delays, periodic_missed = _episode_delays(
        values, threshold, periodic.sampled_indices)

    def coverage(result):
        if result.accuracy.truth_alerts == 0:
            return 1.0
        return result.accuracy.detected_alerts / \
            result.accuracy.truth_alerts

    return DelayResult(
        episodes=num_episodes,
        volley_ratio=volley.sampling_ratio,
        volley_delays=tuple(volley_delays),
        periodic_delays=tuple(periodic_delays),
        volley_missed=volley_missed,
        periodic_missed=periodic_missed,
        volley_coverage=coverage(volley),
        periodic_coverage=coverage(periodic),
        periodic_interval=matched,
    )
