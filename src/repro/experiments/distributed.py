"""Distributed-task experiment runner (paper SIV, Fig. 8).

Simulates one distributed state monitoring task on the default-interval
grid: ``m`` monitors each run a violation-likelihood sampler over their
local stream; a local threshold crossing triggers a coordinator *global
poll* that collects the instantaneous value from every monitor (forcing a
sample on monitors that were idle at that instant) and checks the global
condition ``sum_i v_i > T``. Every updating period the coordinator drains
the monitors' yield statistics and reallocates the global error allowance
according to the configured policy.

Ground truth is the periodic-``Id`` schedule: every grid point whose sum
crosses ``T`` is a global alert; Volley detects it only if a poll happened
there and confirmed the crossing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.adaptation import (AdaptationConfig,
                                   ViolationLikelihoodSampler)
from repro.core.coordination import AllocationPolicy, EvenAllocation
from repro.core.task import DistributedTaskSpec
from repro.exceptions import TraceError
from repro.types import GlobalPoll

__all__ = ["DistributedRunResult", "run_distributed_task"]

DEFAULT_UPDATE_PERIOD = 1000
"""Coordinator updating period in default intervals (paper SIV-B)."""


@dataclass(frozen=True, slots=True)
class DistributedRunResult:
    """Outcome of one distributed-task run.

    Attributes:
        total_samples: sampling operations across all monitors, including
            the forced samples taken during global polls.
        sampling_ratio: ``total_samples / (m * n)`` — cost relative to
            periodic default sampling on every monitor.
        truth_alerts: grid points where the true aggregate crossed ``T``.
        detected_alerts: truth alerts confirmed by a global poll.
        misdetection_rate: fraction of truth alerts missed.
        global_polls: number of polls performed.
        local_violations: local threshold crossings observed at sample
            points.
        messages: coordinator<->monitor messages exchanged (one report per
            local violation, plus one request and one response per monitor
            per poll).
        reallocations: allocation rounds that actually moved allowance.
        final_allocations: per-monitor error allowance at the end.
        per_monitor_samples: sampling operations per monitor.
        polls: chronological record of the global polls.
        allocation_history: allocation vector after every updating period
            (only recorded when requested; starts with the initial even
            split) — feed to
            :func:`repro.analysis.allocation_convergence`.
    """

    total_samples: int
    sampling_ratio: float
    truth_alerts: int
    detected_alerts: int
    misdetection_rate: float
    global_polls: int
    local_violations: int
    messages: int
    reallocations: int
    final_allocations: tuple[float, ...]
    per_monitor_samples: tuple[int, ...]
    polls: tuple[GlobalPoll, ...] = field(repr=False, default=())
    allocation_history: tuple[tuple[float, ...], ...] = field(
        repr=False, default=())


def run_distributed_task(traces: list[np.ndarray] | np.ndarray,
                         spec: DistributedTaskSpec,
                         config: AdaptationConfig | None = None,
                         policy: AllocationPolicy | None = None,
                         update_period: int = DEFAULT_UPDATE_PERIOD,
                         keep_polls: bool = False,
                         keep_allocations: bool = False,
                         ) -> DistributedRunResult:
    """Run one distributed task over per-monitor traces.

    Args:
        traces: ``m`` aligned traces (list of 1-d arrays or an ``m x n``
            matrix), one per monitor.
        spec: the distributed task (global/local thresholds, allowance).
        config: adaptation tunables shared by all monitors.
        policy: error-allowance allocation policy (default: even split).
        update_period: coordinator updating period in default intervals.
        keep_polls: record every global poll in the result (memory-heavy
            for long runs; off by default).
        keep_allocations: record the allocation vector after every
            updating period for convergence analysis.

    Returns:
        A :class:`DistributedRunResult`.
    """
    matrix = np.asarray(traces, dtype=float)
    if matrix.ndim != 2 or matrix.size == 0:
        raise TraceError(
            f"expected an m x n trace matrix, got shape {matrix.shape}")
    m, n = matrix.shape
    if m != spec.num_monitors:
        raise TraceError(
            f"{m} traces for a task with {spec.num_monitors} monitors")
    if update_period < 1:
        raise TraceError(f"update_period must be >= 1, got {update_period}")

    policy = policy if policy is not None else EvenAllocation()
    allocations = policy.initial(m, spec.error_allowance)
    samplers = [
        ViolationLikelihoodSampler(spec.local_spec(i, allocations[i]), config)
        for i in range(m)
    ]

    totals = matrix.sum(axis=0)
    truth_mask = totals > spec.global_threshold
    truth_alerts = int(np.count_nonzero(truth_mask))

    allocation_log: list[tuple[float, ...]] = []
    if keep_allocations:
        allocation_log.append(tuple(allocations))

    next_due = [0] * m
    per_monitor_samples = [0] * m
    local_violations = 0
    polls = 0
    messages = 0
    reallocations = 0
    detected = 0
    poll_log: list[GlobalPoll] = []
    thresholds = spec.local_thresholds
    # Fused drive (DESIGN.md S27): per-monitor rows converted to Python
    # floats once, samplers driven through observe_fast — no per-step
    # float() coercion or SamplingDecision allocation on the m x n loop.
    rows = matrix.tolist()

    for t in range(n):
        violated_here = False
        sampled_here = [False] * m
        for i in range(m):
            if next_due[i] != t:
                continue
            value = rows[i][t]
            interval = samplers[i].observe_fast(value, t)
            per_monitor_samples[i] += 1
            sampled_here[i] = True
            next_due[i] = t + max(1, interval)
            if value > thresholds[i]:
                violated_here = True
                local_violations += 1
                messages += 1  # local-violation report to the coordinator

        if violated_here:
            # Global poll: every monitor reports its instantaneous value;
            # idle monitors are forced to sample (cost + fresh statistics).
            polls += 1
            messages += 2 * m  # poll request + response per monitor
            for i in range(m):
                if sampled_here[i]:
                    continue
                interval = samplers[i].observe_fast(rows[i][t], t)
                per_monitor_samples[i] += 1
                next_due[i] = t + max(1, interval)
            total_value = float(totals[t])
            is_global = bool(truth_mask[t])
            if is_global:
                detected += 1
            if keep_polls:
                poll_log.append(GlobalPoll(
                    time_index=t,
                    values=tuple(float(matrix[i, t]) for i in range(m)),
                    total=total_value,
                    violated=is_global,
                ))

        if (t + 1) % update_period == 0:
            reports = [s.drain_coordination_stats() for s in samplers]
            update = policy.reallocate(allocations, reports,
                                       spec.error_allowance)
            if update.reallocated:
                reallocations += 1
            allocations = update.allocations
            for sampler, err in zip(samplers, allocations):
                sampler.error_allowance = err
            if keep_allocations:
                allocation_log.append(tuple(allocations))

    total_samples = sum(per_monitor_samples)
    misdetection = (0.0 if truth_alerts == 0
                    else 1.0 - detected / truth_alerts)
    return DistributedRunResult(
        total_samples=total_samples,
        sampling_ratio=total_samples / float(m * n),
        truth_alerts=truth_alerts,
        detected_alerts=detected,
        misdetection_rate=misdetection,
        global_polls=polls,
        local_violations=local_violations,
        messages=messages,
        reallocations=reallocations,
        final_allocations=tuple(allocations),
        per_monitor_samples=tuple(per_monitor_samples),
        polls=tuple(poll_log),
        allocation_history=tuple(allocation_log),
    )
