"""Per-figure experiment drivers (paper SV-B; DESIGN.md S6).

One function per evaluation figure:

* :func:`fig5` (with domain ``"network"``, ``"system"``,
  ``"application"``) — monitoring-overhead saving vs. error allowance and
  alert selectivity (Figs. 5(a)-(c));
* :func:`fig6` — Dom0 CPU utilisation distribution vs. error allowance;
* :func:`fig7` — actual mis-detection rate vs. error allowance (system
  tasks);
* :func:`fig8` — distributed coordination: cost vs. Zipf skew of local
  violation rates, adaptive vs. even allocation.

All drivers honour the ``REPRO_SCALE`` environment variable (a float
multiplier on stream counts and horizons) so the same code runs at laptop
scale by default and approaches the paper's 800-VM scale when asked.

Every grid-shaped driver expresses its sweep as pure, picklable
:class:`~repro.experiments.parallel.SweepJob`\\ s and executes them
through :func:`~repro.experiments.parallel.run_sweep`, so the same call
runs serially (``workers=1``), fans out over a process pool
(``workers=N`` / ``REPRO_WORKERS``), and can resume from an on-disk
result cache — with bit-for-bit identical numbers in every mode, because
each cell regenerates its own randomness from the master seed.

Inside every cell the samplers run on the fused core fast path
(DESIGN.md S27): :func:`~repro.experiments.runner.run_adaptive` and
:func:`~repro.experiments.distributed.run_distributed_task` drive
``observe_fast`` with the fused likelihood kernels, and scoring goes
through the vectorized ``evaluate_sampling`` — decision streams provably
identical to the reference path, benchmarked by
``python -m repro.experiments.bench_core`` (``BENCH_core.json``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core.adaptation import AdaptationConfig
from repro.core.coordination import AdaptiveAllocation, EvenAllocation
from repro.core.task import DistributedTaskSpec, TaskSpec
from repro.datacenter.testbed import TestbedConfig, build_testbed
from repro.exceptions import ConfigurationError
from repro.experiments.distributed import run_distributed_task
from repro.experiments.parallel import SweepCache, SweepJob, SweepStats, \
    run_sweep
from repro.experiments.reporting import format_matrix, format_table
from repro.experiments.runner import run_adaptive
from repro.simulation.randomness import RandomStreams
from repro.workloads.sysmetrics import SystemMetricsDataset
from repro.workloads.thresholds import (PAPER_ERROR_ALLOWANCES,
                                        PAPER_SELECTIVITIES,
                                        threshold_for_selectivity,
                                        thresholds_for_violation_rates)
from repro.workloads.traffic import TrafficDifferenceGenerator
from repro.workloads.weblogs import WebWorkloadGenerator
from repro.workloads.zipf import zipf_hotspot_rates

__all__ = [
    "scale_factor",
    "SweepCell",
    "Fig5Result",
    "fig5",
    "Fig6Result",
    "fig6",
    "fig7",
    "Fig8Result",
    "fig8",
]

#: metrics sampled by the system-level sweep (one per stream, round-robin)
SYSTEM_SWEEP_METRICS = ("cpu_user_pct", "load_1m", "net_rx_kbps",
                        "disk_await_ms", "mem_used_pct", "rpc_latency_ms")

#: object ranks monitored by the application-level sweep
APPLICATION_SWEEP_RANKS = (5, 10, 20, 40, 80, 160)


def scale_factor() -> float:
    """The ``REPRO_SCALE`` multiplier (>= 1.0; default 1.0)."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError as exc:
        raise ConfigurationError(f"bad REPRO_SCALE {raw!r}") from exc
    return max(value, 1.0)


@dataclass(frozen=True, slots=True)
class SweepCell:
    """One (selectivity, error allowance) cell of a Fig. 5 sweep.

    Values are averages over the sweep's streams.
    """

    selectivity: float
    error_allowance: float
    sampling_ratio: float
    misdetection_rate: float
    truth_alerts: int


@dataclass(frozen=True, slots=True)
class Fig5Result:
    """Full sweep result for one monitoring domain."""

    domain: str
    selectivities: tuple[float, ...]
    error_allowances: tuple[float, ...]
    cells: tuple[SweepCell, ...]
    streams: int
    horizon: int
    sweep_stats: SweepStats | None = None

    def cell(self, selectivity: float, error: float) -> SweepCell:
        """Look up one cell."""
        for c in self.cells:
            if c.selectivity == selectivity and c.error_allowance == error:
                return c
        raise KeyError((selectivity, error))

    def ratio_matrix(self) -> dict[tuple[object, object], float]:
        """``{(k, err): mean sampling ratio}`` for reporting."""
        return {(c.selectivity, c.error_allowance): c.sampling_ratio
                for c in self.cells}

    def misdetection_matrix(self) -> dict[tuple[object, object], float]:
        """``{(k, err): mean mis-detection rate}`` for reporting."""
        return {(c.selectivity, c.error_allowance): c.misdetection_rate
                for c in self.cells}

    def report(self) -> str:
        """Paper-style text rendering of the sampling-ratio matrix."""
        return format_matrix(
            "k%", self.selectivities, "err", self.error_allowances,
            self.ratio_matrix(),
            title=(f"Fig.5 ({self.domain}): Volley/periodic sampling ratio "
                   f"({self.streams} streams x {self.horizon} steps)"))

    def to_rows(self) -> tuple[list[str], list[list[object]]]:
        """``(headers, rows)`` for CSV export — one row per sweep cell."""
        headers = ["selectivity_percent", "error_allowance",
                   "sampling_ratio", "misdetection_rate", "truth_alerts"]
        rows: list[list[object]] = [
            [c.selectivity, c.error_allowance, c.sampling_ratio,
             c.misdetection_rate, c.truth_alerts]
            for c in self.cells
        ]
        return headers, rows


def _domain_streams(domain: str, num_streams: int, horizon: int,
                    seed: int) -> list[np.ndarray]:
    """Generate the metric streams for one Fig. 5 domain."""
    streams = RandomStreams(seed)
    traces: list[np.ndarray] = []
    if domain == "network":
        for i in range(num_streams):
            rng = streams.stream("fig5-network", i)
            gen = TrafficDifferenceGenerator(
                phase=float(rng.uniform(0.0, 1.0)),
                diurnal_period=max(horizon // 2, 2))
            traces.append(gen.generate(horizon, rng))
    elif domain == "system":
        dataset = SystemMetricsDataset(num_nodes=max(num_streams, 1),
                                       seed=seed,
                                       diurnal_period=max(horizon // 2, 2))
        for i in range(num_streams):
            metric = SYSTEM_SWEEP_METRICS[i % len(SYSTEM_SWEEP_METRICS)]
            traces.append(dataset.generate(i, metric, horizon))
    elif domain == "application":
        for i in range(num_streams):
            rng = streams.stream("fig5-application", i)
            # Keep the expected flash-crowd count (and their share of the
            # horizon) constant across scales so short sweeps see the
            # same bursty regime as long ones.
            gen = WebWorkloadGenerator(
                diurnal_period=max(horizon // 2, 2),
                flash_prob=min(1.0, 4.0 / horizon),
                flash_duration=max(10.0, horizon / 40.0))
            rank = APPLICATION_SWEEP_RANKS[i % len(APPLICATION_SWEEP_RANKS)]
            traces.append(gen.access_rate_trace(rank, horizon, rng).values)
    else:
        raise ConfigurationError(
            f"unknown domain {domain!r}; expected network/system/application")
    return traces


def _fig5_cell(*, domain: str, num_streams: int, horizon: int, seed: int,
               selectivity: float, error_allowance: float,
               max_interval: int,
               config: AdaptationConfig | None) -> SweepCell:
    """Compute one Fig. 5 sweep cell (pure; safe in any worker process).

    Regenerates the domain's traces from the master seed, so the cell's
    value depends only on its spec — never on which worker ran it, in
    what order, or what ran before it in the same process.
    """
    traces = _domain_streams(domain, num_streams, horizon, seed)
    ratios, misses, alerts = [], [], 0
    for trace in traces:
        threshold = threshold_for_selectivity(trace, selectivity)
        task = TaskSpec(threshold=threshold,
                        error_allowance=error_allowance,
                        max_interval=max_interval,
                        name=f"fig5-{domain}")
        result = run_adaptive(trace, task, config)
        ratios.append(result.sampling_ratio)
        misses.append(result.misdetection_rate)
        alerts += result.accuracy.truth_alerts
    return SweepCell(
        selectivity=selectivity, error_allowance=error_allowance,
        sampling_ratio=float(np.mean(ratios)),
        misdetection_rate=float(np.mean(misses)),
        truth_alerts=alerts)


def fig5(domain: str, num_streams: int | None = None,
         horizon: int | None = None, seed: int = 0,
         selectivities: tuple[float, ...] = PAPER_SELECTIVITIES,
         error_allowances: tuple[float, ...] = PAPER_ERROR_ALLOWANCES,
         max_interval: int = 10,
         config: AdaptationConfig | None = None,
         workers: int | None = None,
         cache: SweepCache | None = None) -> Fig5Result:
    """Reproduce one panel of Fig. 5.

    For every (selectivity ``k``, error allowance) combination, runs the
    violation-likelihood sampler over each stream with a threshold at the
    ``(100-k)``-th percentile, and averages sampling ratio (cost vs.
    periodic) and mis-detection rate across streams.

    Args:
        domain: ``"network"`` (5a), ``"system"`` (5b) or
            ``"application"`` (5c).
        num_streams: monitored streams (default 6, scaled by REPRO_SCALE).
        horizon: steps per stream (default 10000, scaled by REPRO_SCALE).
        seed: master seed.
        selectivities / error_allowances: sweep axes (paper values by
            default).
        max_interval: ``Im`` in default intervals.
        config: adaptation tunables.
        workers: sweep pool size (``None`` = ``REPRO_WORKERS`` then CPU
            count; ``1`` = strictly in-process). Results are identical
            for every worker count.
        cache: completed-cell store (``None`` = always recompute).
    """
    scale = scale_factor()
    if num_streams is None:
        num_streams = int(round(6 * scale))
    if horizon is None:
        horizon = int(round(10_000 * scale))
    # Validate the domain before launching any (possibly remote) work.
    if domain not in ("network", "system", "application"):
        raise ConfigurationError(
            f"unknown domain {domain!r}; expected network/system/application")

    jobs = [SweepJob.call(_fig5_cell,
                          label=f"fig5-{domain} k={k} err={err}",
                          domain=domain, num_streams=num_streams,
                          horizon=horizon, seed=seed, selectivity=k,
                          error_allowance=err, max_interval=max_interval,
                          config=config)
            for k in selectivities for err in error_allowances]
    cells, stats = run_sweep(jobs, workers=workers, cache=cache)
    return Fig5Result(domain=domain, selectivities=tuple(selectivities),
                      error_allowances=tuple(error_allowances),
                      cells=tuple(cells), streams=num_streams,
                      horizon=horizon, sweep_stats=stats)


@dataclass(frozen=True, slots=True)
class Fig6Result:
    """Dom0 CPU utilisation distribution per error allowance."""

    error_allowances: tuple[float, ...]
    stats: tuple[dict[str, float], ...]
    sampling_ratios: tuple[float, ...]
    vms_per_server: int
    num_servers: int
    horizon: int
    sweep_stats: SweepStats | None = None

    def report(self) -> str:
        """Paper-style text rendering of the box-plot statistics."""
        headers = ["err", "min", "q25", "median", "q75", "max", "mean",
                   "sampling-ratio"]
        rows = []
        for err, st, ratio in zip(self.error_allowances, self.stats,
                                  self.sampling_ratios):
            rows.append([err, st["min"], st["q25"], st["median"],
                         st["q75"], st["max"], st["mean"], ratio])
        return format_table(
            headers, rows,
            title=(f"Fig.6: Dom0 CPU utilisation %, {self.num_servers} "
                   f"servers x {self.vms_per_server} VMs, "
                   f"{self.horizon} windows"))

    def to_rows(self) -> tuple[list[str], list[list[object]]]:
        """``(headers, rows)`` for CSV export — one row per allowance."""
        headers = ["error_allowance", "min", "q25", "median", "q75",
                   "max", "mean", "sampling_ratio"]
        rows: list[list[object]] = []
        for err, st, ratio in zip(self.error_allowances, self.stats,
                                  self.sampling_ratios):
            rows.append([err, st["min"], st["q25"], st["median"],
                         st["q75"], st["max"], st["mean"], ratio])
        return headers, rows


def _fig6_cell(*, error_allowance: float, num_servers: int,
               vms_per_server: int, horizon: int, selectivity: float,
               seed: int) -> tuple[dict[str, float], float]:
    """One Fig. 6 error allowance: ``(box stats, sampling ratio)``."""
    testbed = build_testbed(TestbedConfig(
        num_servers=num_servers, vms_per_server=vms_per_server,
        horizon_steps=horizon, error_allowance=error_allowance,
        selectivity_percent=selectivity, seed=seed))
    testbed.run()
    util = np.concatenate([s.dom0.utilization() for s in testbed.servers])
    box = {
        "min": float(util.min()),
        "q25": float(np.percentile(util, 25)),
        "median": float(np.percentile(util, 50)),
        "q75": float(np.percentile(util, 75)),
        "max": float(util.max()),
        "mean": float(util.mean()),
    }
    return box, testbed.sampling_ratio


def fig6(error_allowances: tuple[float, ...] = (0.0,) + PAPER_ERROR_ALLOWANCES,
         num_servers: int | None = None, vms_per_server: int = 40,
         horizon: int | None = None, selectivity: float = 0.4,
         seed: int = 0, workers: int | None = None,
         cache: SweepCache | None = None) -> Fig6Result:
    """Reproduce Fig. 6: Dom0 CPU cost of network monitoring vs. ``err``.

    Builds the per-VM-task testbed (the paper's 40 VMs per server) once
    per error allowance and aggregates the per-window Dom0 utilisation of
    every server into one distribution. ``err = 0`` degenerates to
    periodic sampling — the paper's 20-34% CPU band.
    """
    scale = scale_factor()
    if num_servers is None:
        num_servers = max(1, int(round(1 * scale)))
    if horizon is None:
        horizon = int(round(2000 * scale))

    jobs = [SweepJob.call(_fig6_cell, label=f"fig6 err={err}",
                          error_allowance=err, num_servers=num_servers,
                          vms_per_server=vms_per_server, horizon=horizon,
                          selectivity=selectivity, seed=seed)
            for err in error_allowances]
    results, sweep_stats = run_sweep(jobs, workers=workers, cache=cache)
    stats = tuple(box for box, _ in results)
    ratios = tuple(ratio for _, ratio in results)
    return Fig6Result(error_allowances=tuple(error_allowances),
                      stats=stats, sampling_ratios=ratios,
                      vms_per_server=vms_per_server,
                      num_servers=num_servers, horizon=horizon,
                      sweep_stats=sweep_stats)


def fig7(num_streams: int | None = None, horizon: int | None = None,
         seed: int = 0,
         selectivities: tuple[float, ...] = PAPER_SELECTIVITIES,
         error_allowances: tuple[float, ...] = PAPER_ERROR_ALLOWANCES,
         workers: int | None = None,
         cache: SweepCache | None = None) -> Fig5Result:
    """Reproduce Fig. 7: actual mis-detection rates, system-level tasks.

    Runs the same sweep as Fig. 5(b); the quantity of interest is the
    mis-detection matrix (use :meth:`Fig5Result.misdetection_matrix` or
    the report below). The paper's observations to check: actual rates
    sit below the specified allowance in most cells, and high-selectivity
    (small ``k``) tasks show relatively larger rates.
    """
    result = fig5("system", num_streams=num_streams, horizon=horizon,
                  seed=seed, selectivities=selectivities,
                  error_allowances=error_allowances, workers=workers,
                  cache=cache)
    return result


def fig7_report(result: Fig5Result) -> str:
    """Text rendering of Fig. 7 (mis-detection matrix)."""
    return format_matrix(
        "k%", result.selectivities, "err", result.error_allowances,
        result.misdetection_matrix(),
        title=(f"Fig.7: actual mis-detection rate (system tasks, "
               f"{result.streams} streams x {result.horizon} steps)"),
        fmt="{:.4f}")


__all__.append("fig7_report")


@dataclass(frozen=True, slots=True)
class Fig8Result:
    """Distributed-coordination sweep result."""

    skews: tuple[float, ...]
    even_ratios: tuple[float, ...]
    adaptive_ratios: tuple[float, ...]
    even_misdetection: tuple[float, ...]
    adaptive_misdetection: tuple[float, ...]
    num_monitors: int
    horizon: int
    sweep_stats: SweepStats | None = None

    def report(self) -> str:
        """Paper-style text rendering."""
        headers = ["zipf-skew", "even", "adapt", "even-miss", "adapt-miss"]
        rows = [[s, e, a, em, am] for s, e, a, em, am
                in zip(self.skews, self.even_ratios, self.adaptive_ratios,
                       self.even_misdetection, self.adaptive_misdetection)]
        return format_table(
            headers, rows,
            title=(f"Fig.8: distributed task sampling ratio vs local-"
                   f"violation skew ({self.num_monitors} monitors x "
                   f"{self.horizon} steps)"))

    def to_rows(self) -> tuple[list[str], list[list[object]]]:
        """``(headers, rows)`` for CSV export — one row per skew."""
        headers = ["zipf_skew", "even_ratio", "adaptive_ratio",
                   "even_misdetection", "adaptive_misdetection"]
        rows: list[list[object]] = [
            [s, e, a, em, am] for s, e, a, em, am
            in zip(self.skews, self.even_ratios, self.adaptive_ratios,
                   self.even_misdetection, self.adaptive_misdetection)
        ]
        return headers, rows


def _fig8_cell(*, skew: float, rep: int, seed: int, num_monitors: int,
               horizon: int, base_violation_rate: float,
               error_allowance: float, update_period: int,
               max_interval: int) -> tuple[float, float, float, float]:
    """One (skew, repeat) of Fig. 8.

    Returns ``(even ratio, adaptive ratio, even miss, adaptive miss)``.
    Traces are regenerated from ``seed + rep`` exactly as the serial
    sweep always did, so each repeat sees the same streams for every
    skew and both allocation policies.
    """
    streams = RandomStreams(seed + rep)
    traces = []
    for i in range(num_monitors):
        rng = streams.stream("fig8-network", i)
        gen = TrafficDifferenceGenerator(
            diurnal_depth=0.0, burst_prob=0.0006, burst_hold=14)
        traces.append(gen.generate(horizon, rng))
    rates = zipf_hotspot_rates(num_monitors, skew, base_violation_rate)
    thresholds = thresholds_for_violation_rates(traces, rates)
    spec = DistributedTaskSpec(
        global_threshold=float(sum(thresholds)),
        local_thresholds=tuple(thresholds),
        error_allowance=error_allowance,
        max_interval=max_interval,
        name=f"fig8-skew-{skew}")
    even = run_distributed_task(traces, spec, policy=EvenAllocation(),
                                update_period=update_period)
    adaptive = run_distributed_task(traces, spec,
                                    policy=AdaptiveAllocation(),
                                    update_period=update_period)
    return (even.sampling_ratio, adaptive.sampling_ratio,
            even.misdetection_rate, adaptive.misdetection_rate)


def fig8(skews: tuple[float, ...] = (0.0, 0.5, 1.0, 1.5, 2.0),
         num_monitors: int | None = None, horizon: int | None = None,
         base_violation_rate: float = 0.2, error_allowance: float = 0.01,
         seed: int = 0, repeats: int = 3, update_period: int = 1000,
         max_interval: int = 10, workers: int | None = None,
         cache: SweepCache | None = None) -> Fig8Result:
    """Reproduce Fig. 8: adaptive vs. even error-allowance allocation.

    One distributed network task over ``num_monitors`` monitors; local
    thresholds are set so the per-monitor local violation rates follow a
    Zipf *hotspot* distribution of the given skew: the coldest monitor
    stays at ``base_violation_rate`` while hotter ranks scale up. Both
    allocation schemes run on identical traces; the y-axis is total
    sampling (incl. forced poll samples) relative to periodic sampling,
    averaged over ``repeats`` seeds.

    The traces are steady (non-diurnal) traffic-difference streams with
    sparse bursts: skewing the violation rates pushes the hottest
    monitors' thresholds down into the noise band where no feasible
    allowance helps them — the regime the paper describes ("a few
    monitors account for most local violations... the adaptive scheme can
    move error allowance from these monitors to those with higher cost
    reduction yield"). The even scheme pays for those hotspots; the
    adaptive scheme reclaims their allowance.
    """
    scale = scale_factor()
    if num_monitors is None:
        num_monitors = int(round(10 * scale))
    if horizon is None:
        horizon = int(round(20_000 * scale))

    grid = [(rep, skew) for rep in range(max(repeats, 1))
            for skew in skews]
    jobs = [SweepJob.call(_fig8_cell,
                          label=f"fig8 skew={skew} rep={rep}",
                          skew=skew, rep=rep, seed=seed,
                          num_monitors=num_monitors, horizon=horizon,
                          base_violation_rate=base_violation_rate,
                          error_allowance=error_allowance,
                          update_period=update_period,
                          max_interval=max_interval)
            for rep, skew in grid]
    results, sweep_stats = run_sweep(jobs, workers=workers, cache=cache)

    even_acc: dict[float, list[float]] = {s: [] for s in skews}
    adapt_acc: dict[float, list[float]] = {s: [] for s in skews}
    even_miss_acc: dict[float, list[float]] = {s: [] for s in skews}
    adapt_miss_acc: dict[float, list[float]] = {s: [] for s in skews}
    for (rep, skew), cell in zip(grid, results):
        even_ratio, adaptive_ratio, even_miss, adaptive_miss = cell
        even_acc[skew].append(even_ratio)
        adapt_acc[skew].append(adaptive_ratio)
        even_miss_acc[skew].append(even_miss)
        adapt_miss_acc[skew].append(adaptive_miss)
    return Fig8Result(
        skews=tuple(skews),
        even_ratios=tuple(float(np.mean(even_acc[s])) for s in skews),
        adaptive_ratios=tuple(float(np.mean(adapt_acc[s])) for s in skews),
        even_misdetection=tuple(float(np.mean(even_miss_acc[s]))
                                for s in skews),
        adaptive_misdetection=tuple(float(np.mean(adapt_miss_acc[s]))
                                    for s in skews),
        num_monitors=num_monitors, horizon=horizon,
        sweep_stats=sweep_stats)
