"""Monetary cost analysis of adaptive sampling (paper SI).

The paper motivates Volley partly in money: hosted monitoring services
charge per sample (pay-as-you-go) and "monitoring costs can account for up
to 18% of total operation cost". This module converts sampling schedules
into a CloudWatch-style bill and reports what the adaptive scheme saves on
a fleet of monitoring tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.adaptation import AdaptationConfig
from repro.core.task import TaskSpec
from repro.datacenter.cost import MonetaryCostModel
from repro.exceptions import ConfigurationError
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_adaptive
from repro.simulation.randomness import RandomStreams
from repro.workloads.thresholds import threshold_for_selectivity
from repro.workloads.traffic import TrafficDifferenceGenerator

__all__ = ["MonetaryReport", "monetary_analysis"]


@dataclass(frozen=True, slots=True)
class MonetaryReport:
    """Fleet-level monthly monitoring bill, periodic vs. Volley.

    Attributes:
        tasks: number of monitoring tasks in the fleet.
        error_allowance: allowance used by the adaptive scheme.
        periodic_cost: monthly bill under periodic default sampling.
        adaptive_cost: monthly bill under violation-likelihood sampling.
        other_operation_cost: the rest of the monthly operation bill the
            monitoring fraction is computed against.
        mean_sampling_ratio: fleet-mean Volley/periodic sampling ratio.
    """

    tasks: int
    error_allowance: float
    periodic_cost: float
    adaptive_cost: float
    other_operation_cost: float
    mean_sampling_ratio: float

    @property
    def saving(self) -> float:
        """Absolute monthly saving."""
        return self.periodic_cost - self.adaptive_cost

    def monitoring_fraction(self, monitoring_cost: float) -> float:
        """Monitoring share of the total operation bill."""
        return monitoring_cost / (monitoring_cost
                                  + self.other_operation_cost)

    def report(self) -> str:
        """Text rendering of the bill comparison."""
        rows = [
            ["periodic", self.periodic_cost,
             100.0 * self.monitoring_fraction(self.periodic_cost)],
            ["volley", self.adaptive_cost,
             100.0 * self.monitoring_fraction(self.adaptive_cost)],
        ]
        return format_table(
            ["scheme", "monthly cost", "% of operation bill"], rows,
            title=(f"Monetary cost: {self.tasks} network tasks, "
                   f"err={self.error_allowance}, mean sampling ratio "
                   f"{self.mean_sampling_ratio:.3f}"))


def monetary_analysis(num_tasks: int = 8, horizon: int = 10_000,
                      error_allowance: float = 0.01,
                      selectivity: float = 0.4,
                      price_per_sample: float = 1.0e-4,
                      other_operation_cost_monthly: float = 500.0,
                      seed: int = 0) -> MonetaryReport:
    """Price a fleet of network monitoring tasks, periodic vs. Volley.

    Each task samples one traffic-difference stream with a 15-second
    default interval; the bill extrapolates the measured sampling ratio to
    a 30-day month at the given per-sample price. The
    ``other_operation_cost_monthly`` default makes periodic monitoring
    land near the paper's "up to 18% of total operation cost" figure.
    """
    if num_tasks < 1:
        raise ConfigurationError(f"num_tasks must be >= 1, got {num_tasks}")
    streams = RandomStreams(seed)
    ratios = []
    for i in range(num_tasks):
        rng = streams.stream("monetary", i)
        trace = TrafficDifferenceGenerator(
            phase=float(rng.uniform(0.0, 1.0))).generate(horizon, rng)
        threshold = threshold_for_selectivity(trace, selectivity)
        task = TaskSpec(threshold=threshold,
                        error_allowance=error_allowance,
                        default_interval=15.0, max_interval=10)
        ratios.append(run_adaptive(trace, task,
                                   AdaptationConfig()).sampling_ratio)
    mean_ratio = float(np.mean(ratios))

    samples_per_month = 30 * 24 * 3600 / 15.0  # one task, periodic
    periodic_bill = MonetaryCostModel(price_per_sample=price_per_sample)
    periodic_bill.charge_sample(int(num_tasks * samples_per_month))
    adaptive_bill = MonetaryCostModel(price_per_sample=price_per_sample)
    adaptive_bill.charge_sample(
        int(num_tasks * samples_per_month * mean_ratio))

    return MonetaryReport(
        tasks=num_tasks,
        error_allowance=error_allowance,
        periodic_cost=periodic_bill.total_cost,
        adaptive_cost=adaptive_bill.total_cost,
        other_operation_cost=other_operation_cost_monthly,
        mean_sampling_ratio=mean_ratio,
    )
