"""Datacenter-level multi-task monitoring with state correlation (SII-A).

The paper's multi-task level "automatically detects state correlation
between tasks and schedules sampling for different tasks at the
datacenter level considering both cost factors and degree of state
correlation". This experiment realises that pipeline over a fleet of VMs,
each running three monitoring tasks of very different sampling cost:

* ``ddos`` — traffic-difference deep packet inspection (expensive),
* ``response`` — request response time (cheap),
* ``cpu`` — a system counter (cheap).

Phase 1 profiles a historical window and feeds the per-VM task profiles to
the :class:`~repro.core.correlation.CorrelationPlanner`; phase 2 runs the
remaining horizon with the planned trigger rules applied, and reports the
fleet's weighted sampling cost and accuracy against plain adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.adaptation import AdaptationConfig
from repro.core.correlation import CorrelationPlanner, TaskProfile
from repro.core.task import TaskSpec
from repro.exceptions import ConfigurationError
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_adaptive, run_triggered
from repro.simulation.randomness import RandomStreams
from repro.workloads.sysmetrics import SystemMetricsDataset
from repro.workloads.traffic import TrafficDifferenceGenerator

__all__ = ["MultiTaskResult", "multitask_experiment", "DPI_COST"]

DPI_COST = 40.0
"""Relative cost of one DPI sampling operation vs. a counter read."""


@dataclass(frozen=True, slots=True)
class MultiTaskResult:
    """Fleet-level outcome of correlation-planned monitoring.

    Costs are sampling operations weighted by per-task cost, summed over
    the fleet and normalised by the periodic-sampling cost (so 1.0 means
    "as expensive as sampling everything at the default interval").

    Attributes:
        num_vms: fleet size.
        rules_planned: trigger rules the planner discovered.
        plain_cost / planned_cost: weighted cost ratios without/with the
            correlation plan (both already use violation-likelihood
            adaptation).
        plain_misdetection / planned_misdetection: fleet-mean mis-detection
            of the expensive (guarded) task.
    """

    num_vms: int
    rules_planned: int
    plain_cost: float
    planned_cost: float
    plain_misdetection: float
    planned_misdetection: float

    def report(self) -> str:
        """Text rendering of the fleet comparison."""
        rows = [
            ["volley", self.plain_cost, self.plain_misdetection],
            ["volley + correlation plan", self.planned_cost,
             self.planned_misdetection],
        ]
        return format_table(
            ["scheme", "weighted-cost", "ddos mis-detection"], rows,
            title=(f"Multi-task datacenter monitoring "
                   f"({self.num_vms} VMs x 3 tasks, "
                   f"{self.rules_planned} trigger rules planned)"))


def _vm_streams(vm: int, horizon: int, streams: RandomStreams,
                dataset: SystemMetricsDataset,
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Correlated (rho, response, cpu) streams for one VM.

    Attack episodes raise response time first and the traffic difference
    a few windows later (response is a necessary condition, as in the
    paper's DDoS example); CPU load is independent background.
    """
    rng = streams.stream("multitask-vm", vm)
    rho = TrafficDifferenceGenerator(burst_prob=0.0).generate(horizon, rng)
    response = 20.0 + rng.normal(0.0, 1.5, horizon)
    n_events = max(3, horizon // 2500)
    starts = np.linspace(horizon // 10, horizon - 200,
                         n_events).astype(int)
    for s in starts:
        span = int(rng.integers(70, 130))
        response[s:s + span] += rng.uniform(120.0, 280.0)
        rho[s + 10:s + span - 10] += rng.uniform(2500.0, 6000.0)
    cpu = dataset.generate(vm, "cpu_user_pct", horizon)
    return rho, response, cpu


def multitask_experiment(num_vms: int = 4, horizon: int = 24_000,
                         profile_fraction: float = 0.3,
                         error_allowance: float = 0.01,
                         seed: int = 0) -> MultiTaskResult:
    """Run the fleet with and without the correlation-planned schedule.

    Args:
        num_vms: VMs, each with a ddos/response/cpu task triple.
        horizon: total grid steps; the first ``profile_fraction`` of them
            form the profiling window the planner learns from, the rest
            are the evaluation window.
        profile_fraction: share of the horizon used for correlation
            profiling.
        error_allowance: per-task error allowance.
        seed: master seed.
    """
    if num_vms < 1:
        raise ConfigurationError(f"num_vms must be >= 1, got {num_vms}")
    if not 0.05 <= profile_fraction <= 0.9:
        raise ConfigurationError(
            f"profile_fraction must be in [0.05, 0.9], got "
            f"{profile_fraction}")
    streams = RandomStreams(seed)
    dataset = SystemMetricsDataset(num_nodes=num_vms, seed=seed)
    split = int(horizon * profile_fraction)
    planner = CorrelationPlanner(min_score=0.9, loss_budget=0.1,
                                 suspend_interval=10)
    config = AdaptationConfig()

    rho_threshold = 1000.0
    response_threshold = 120.0

    plain_cost = planned_cost = periodic_cost = 0.0
    plain_miss, planned_miss = [], []
    rules_planned = 0
    for vm in range(num_vms):
        rho, response, cpu = _vm_streams(vm, horizon, streams, dataset)
        cpu_threshold = float(np.percentile(cpu[:split], 99.5))

        profiles = [
            TaskProfile(task_id="response", values=response[:split],
                        threshold=response_threshold, cost_per_sample=1.0),
            TaskProfile(task_id="cpu", values=cpu[:split],
                        threshold=cpu_threshold, cost_per_sample=1.0),
            TaskProfile(task_id="ddos", values=rho[:split],
                        threshold=rho_threshold, cost_per_sample=DPI_COST),
        ]
        rules = planner.plan(profiles)
        ddos_rule = next((r for r in rules if r.target_id == "ddos"), None)
        if ddos_rule is not None:
            rules_planned += 1

        # Evaluation window.
        eval_rho = rho[split:]
        eval_response = response[split:]
        eval_cpu = cpu[split:]
        ddos_task = TaskSpec(threshold=rho_threshold,
                             error_allowance=error_allowance,
                             max_interval=10)
        cheap_tasks = [
            (eval_response, TaskSpec(threshold=response_threshold,
                                     error_allowance=error_allowance,
                                     max_interval=10)),
            (eval_cpu, TaskSpec(threshold=cpu_threshold,
                                error_allowance=error_allowance,
                                max_interval=10)),
        ]

        cheap_cost = 0.0
        for values, task in cheap_tasks:
            cheap_cost += run_adaptive(values, task,
                                       config).sampling_ratio * 1.0

        plain = run_adaptive(eval_rho, ddos_task, config)
        plain_cost += cheap_cost + plain.sampling_ratio * DPI_COST
        plain_miss.append(plain.misdetection_rate)

        if ddos_rule is None:
            planned_cost += cheap_cost + plain.sampling_ratio * DPI_COST
            planned_miss.append(plain.misdetection_rate)
        else:
            trigger_values = (eval_response
                              if ddos_rule.trigger_id == "response"
                              else eval_cpu)
            guarded = run_triggered(eval_rho, trigger_values, ddos_task,
                                    ddos_rule.elevation_level,
                                    planner.suspend_interval, config)
            planned_cost += cheap_cost + guarded.sampling_ratio * DPI_COST
            planned_miss.append(guarded.misdetection_rate)
        periodic_cost += 2.0 * 1.0 + DPI_COST

    return MultiTaskResult(
        num_vms=num_vms,
        rules_planned=rules_planned,
        plain_cost=plain_cost / periodic_cost,
        planned_cost=planned_cost / periodic_cost,
        plain_misdetection=float(np.mean(plain_miss)),
        planned_misdetection=float(np.mean(planned_miss)),
    )
