"""Parallel sweep execution with deterministic seeding and result caching.

Figure drivers (DESIGN.md S25) describe their parameter grids as lists of
pure, picklable :class:`SweepJob`\\ s — one job per sweep cell — and hand
them to :func:`run_sweep`, which

* fans the jobs out over a :class:`concurrent.futures.ProcessPoolExecutor`
  (worker count from the ``workers`` argument, the ``REPRO_WORKERS``
  environment variable, or ``os.cpu_count()``, in that order), with a
  guaranteed in-process serial path at ``workers=1``;
* keeps results bit-for-bit independent of worker count and completion
  order: a job owns all of its randomness, derived from a stable
  ``(seed, job key)`` hash via
  :class:`repro.simulation.randomness.RandomStreams` (see
  :func:`job_streams`) — nothing is shared between jobs;
* optionally caches each completed cell on disk (:class:`SweepCache`)
  keyed by a content hash of the full job spec (:func:`job_key`), so an
  interrupted or re-run sweep only recomputes cells whose spec changed.

Cache entries are keyed by everything that determines a cell's value —
the driver function, workload parameters, task spec, adaptation config,
seed and scale-derived sizes — so a cache can never serve a stale result
for a changed spec: a changed spec *is* a different key.

Worker processes execute their cells on the fused core fast path
(DESIGN.md S27) — the figure drivers' cells call
:func:`~repro.experiments.runner.run_adaptive` /
:func:`~repro.experiments.distributed.run_distributed_task`, which drive
samplers through ``observe_fast`` — so every sweep cell gets the kernel
speedup for free while remaining bit-identical to the reference path.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np

from repro.config import ExecutionConfig
from repro.exceptions import ConfigurationError
from repro.simulation.randomness import RandomStreams

__all__ = [
    "CACHE_VERSION",
    "SweepJob",
    "SweepStats",
    "SweepCache",
    "job_key",
    "job_streams",
    "resolve_workers",
    "run_sweep",
    "default_cache_dir",
]

#: bump to invalidate every existing on-disk cache entry (key derivation
#: or result semantics changed)
CACHE_VERSION = 1


@dataclass(frozen=True, slots=True)
class SweepJob:
    """One pure, picklable cell of a parameter sweep.

    Attributes:
        func: a module-level callable (pickled by reference, so it must be
            importable in worker processes); must be a pure function of
            its keyword arguments.
        kwargs: the call's keyword arguments as a sorted item tuple —
            the hashable job spec.
        label: human-readable tag for reports (not part of the identity).
    """

    func: Callable[..., Any]
    kwargs: tuple[tuple[str, Any], ...]
    label: str = ""

    @classmethod
    def call(cls, func: Callable[..., Any], label: str = "",
             **kwargs: Any) -> "SweepJob":
        """Build a job for ``func(**kwargs)``."""
        return cls(func=func, kwargs=tuple(sorted(kwargs.items())),
                   label=label)

    def run(self) -> Any:
        """Execute the job in the current process."""
        return self.func(**dict(self.kwargs))


def _canonical(value: Any) -> Any:
    """A JSON-serialisable canonical form, injective on distinct values.

    Every supported type gets its own tag so values of different types
    can never collide (``1`` vs ``1.0`` vs ``True`` vs ``"1"``); floats
    go through ``repr`` (shortest round-trip form), which is stable
    across processes and platforms.
    """
    if value is None:
        return ["null"]
    if isinstance(value, bool):
        return ["bool", value]
    if isinstance(value, enum.Enum):
        return ["enum", type(value).__module__, type(value).__qualname__,
                value.name]
    if isinstance(value, int):
        return ["int", value]
    if isinstance(value, float):
        return ["float", repr(value)]
    if isinstance(value, str):
        return ["str", value]
    if isinstance(value, bytes):
        return ["bytes", value.hex()]
    if isinstance(value, np.generic):
        return _canonical(value.item())
    if isinstance(value, np.ndarray):
        data = np.ascontiguousarray(value)
        return ["ndarray", str(data.dtype), list(data.shape),
                hashlib.sha256(data.tobytes()).hexdigest()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = [[f.name, _canonical(getattr(value, f.name))]
                  for f in dataclasses.fields(value)]
        return ["dataclass", type(value).__module__,
                type(value).__qualname__, fields]
    if isinstance(value, (list, tuple)):
        return ["seq", [_canonical(v) for v in value]]
    if isinstance(value, dict):
        items = sorted((json.dumps(_canonical(k)), _canonical(v))
                       for k, v in value.items())
        return ["map", [[k, v] for k, v in items]]
    raise ConfigurationError(
        f"cannot hash a {type(value).__name__} in a sweep job spec; "
        f"use primitives, tuples, dataclasses or numpy arrays")


def job_key(job: SweepJob) -> str:
    """Stable content hash of a job's full spec (hex, 64 chars).

    The key covers the cache version, the function's import path and
    every keyword argument, so any change to the spec — workload
    parameters, task spec, adaptation config, seed, scale-derived
    sizes — yields a different key. It is independent of process,
    platform and ``PYTHONHASHSEED``.
    """
    spec = ["sweep-job", CACHE_VERSION, job.func.__module__,
            job.func.__qualname__, _canonical(dict(job.kwargs))]
    encoded = json.dumps(spec, separators=(",", ":"), sort_keys=False)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def job_streams(seed: int, job: SweepJob) -> RandomStreams:
    """Per-job random streams derived from a ``(seed, job key)`` hash.

    Two jobs with distinct specs get statistically independent streams;
    the same ``(seed, job)`` pair always gets identical streams, no
    matter which worker runs it or in which order — the basis of the
    worker-count-independence guarantee.
    """
    return RandomStreams(seed).derive("sweep-job", job_key(job))


def default_cache_dir() -> pathlib.Path:
    """The sweep cache location: ``REPRO_CACHE_DIR`` or the XDG cache."""
    configured = ExecutionConfig.from_env().cache_dir
    if configured is not None:
        return configured
    base = os.environ.get("XDG_CACHE_HOME")
    root = pathlib.Path(base) if base else pathlib.Path.home() / ".cache"
    return root / "repro" / "sweeps"


class SweepCache:
    """On-disk cache of completed sweep-cell results.

    One pickle file per job key. Loads are forgiving — a missing,
    truncated or corrupted entry is a cache miss, never an error — while
    stores are atomic (write to a temp file, then ``os.replace``) so a
    killed run can only ever leave complete entries behind.

    Args:
        directory: cache root; created lazily on the first store.
    """

    def __init__(self, directory: str | os.PathLike[str]):
        self._directory = pathlib.Path(directory)

    @property
    def directory(self) -> pathlib.Path:
        """The cache root."""
        return self._directory

    def path(self, key: str) -> pathlib.Path:
        """Where the entry for ``key`` lives (two-level fan-out)."""
        return self._directory / key[:2] / f"{key}.pkl"

    def load(self, key: str) -> tuple[bool, Any]:
        """``(hit, value)`` — any unreadable entry is a miss."""
        try:
            with open(self.path(key), "rb") as fh:
                payload = pickle.load(fh)
            if (not isinstance(payload, dict)
                    or payload.get("version") != CACHE_VERSION
                    or payload.get("key") != key):
                return False, None
            return True, payload["value"]
        except Exception:
            return False, None

    def store(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` under ``key``."""
        target = self.path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": CACHE_VERSION, "key": key, "value": value}
        fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self._directory.exists():
            return removed
        for entry in sorted(self._directory.glob("*/*.pkl")):
            entry.unlink()
            removed += 1
        return removed


@dataclass(frozen=True, slots=True)
class SweepStats:
    """Execution summary of one :func:`run_sweep` call.

    Attributes:
        jobs: total cells in the sweep.
        cache_hits / cache_misses: cells served from / missing in the
            cache (with no cache every cell is a miss).
        workers: resolved worker count.
        wall_seconds: end-to-end sweep duration.
        cell_seconds: per-computed-cell wall time, in job order
            (cached cells are excluded).
    """

    jobs: int
    cache_hits: int
    cache_misses: int
    workers: int
    wall_seconds: float
    cell_seconds: tuple[float, ...]

    @property
    def hit_rate(self) -> float:
        """Fraction of cells served from the cache (0.0 with no jobs)."""
        return self.cache_hits / self.jobs if self.jobs else 0.0

    def report(self) -> str:
        """One-line human-readable summary."""
        from repro.experiments.reporting import format_sweep_stats
        return format_sweep_stats(self)


def resolve_workers(workers: int | None = None) -> int:
    """Resolve the worker count: argument, ``REPRO_WORKERS``, CPU count.

    Raises :class:`~repro.exceptions.ConfigurationError` for a
    non-positive or unparsable setting.
    """
    if workers is None:
        workers = ExecutionConfig.from_env().workers
    if workers is None:
        workers = os.cpu_count() or 1
    workers = int(workers)
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return workers


def execute_job(job: SweepJob) -> tuple[Any, float]:
    """Run one job, returning ``(result, wall seconds)``.

    Module-level so worker processes can unpickle a reference to it.
    """
    start = time.perf_counter()
    value = job.run()
    return value, time.perf_counter() - start


def run_sweep(jobs: Iterable[SweepJob], *, workers: int | None = None,
              cache: SweepCache | None = None,
              ) -> tuple[list[Any], SweepStats]:
    """Execute a sweep, in parallel where it helps.

    Results come back in job order regardless of completion order. Cache
    hits skip execution entirely; misses are stored as soon as their
    worker finishes, so an interrupted sweep resumes where it died.

    Args:
        jobs: the sweep cells.
        workers: pool size; ``None`` defers to ``REPRO_WORKERS`` then
            ``os.cpu_count()``. ``1`` guarantees in-process execution
            (no pool, no subprocess).
        cache: completed-cell store, or ``None`` to always recompute.

    Returns:
        ``(results, stats)`` with one result per job.
    """
    job_list = list(jobs)
    worker_count = resolve_workers(workers)
    started = time.perf_counter()
    results: list[Any] = [None] * len(job_list)
    seconds: dict[int, float] = {}
    hits = 0

    pending: list[tuple[int, SweepJob, str]] = []
    for index, job in enumerate(job_list):
        key = job_key(job)
        if cache is not None:
            hit, value = cache.load(key)
            if hit:
                results[index] = value
                hits += 1
                continue
        pending.append((index, job, key))

    if worker_count == 1 or len(pending) <= 1:
        for index, job, key in pending:
            value, elapsed = execute_job(job)
            results[index] = value
            seconds[index] = elapsed
            if cache is not None:
                cache.store(key, value)
    elif pending:
        pool_size = min(worker_count, len(pending))
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            futures = {pool.submit(execute_job, job): (index, key)
                       for index, job, key in pending}
            for future in as_completed(futures):
                index, key = futures[future]
                value, elapsed = future.result()
                results[index] = value
                seconds[index] = elapsed
                if cache is not None:
                    cache.store(key, value)

    stats = SweepStats(
        jobs=len(job_list), cache_hits=hits, cache_misses=len(pending),
        workers=worker_count,
        wall_seconds=time.perf_counter() - started,
        cell_seconds=tuple(seconds[i] for i in sorted(seconds)))
    return results, stats
