"""Coordination reliability under message loss.

The paper assumes reliable messaging between monitors and coordinators
(NTP-synchronised clocks, SII; its companion work studies reliability
explicitly). This experiment quantifies what that assumption is worth:
on a lossy network a dropped local-violation report means the coordinator
never polls, so a global violation at that instant goes unseen.

The sweep runs the distributed testbed at increasing message-loss rates
against a fleet-wide coordinated anomaly and reports how global-alert
recall degrades — the motivation for the companion work's
reliability-aware coordination, measured on this codebase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datacenter.testbed import TestbedConfig, build_testbed
from repro.exceptions import ConfigurationError
from repro.experiments.reporting import format_table
from repro.workloads.ddos import SynFloodAttack, inject_attacks

__all__ = ["ReliabilityResult", "reliability_experiment"]


@dataclass(frozen=True, slots=True)
class ReliabilityResult:
    """Global-alert recall as a function of message-loss rate.

    Attributes:
        loss_rates: swept message-loss probabilities.
        recalls: fraction of ground-truth global alerts confirmed by a
            poll, per loss rate.
        polls: global polls performed, per loss rate.
        dropped_reports: violation reports lost in transit, per loss rate.
        truth_alerts: ground-truth global alerts (same traces for every
            loss rate).
    """

    loss_rates: tuple[float, ...]
    recalls: tuple[float, ...]
    polls: tuple[int, ...]
    dropped_reports: tuple[int, ...]
    truth_alerts: int

    def report(self) -> str:
        """Text rendering of the degradation curve."""
        rows = [[rate, recall, polls, dropped]
                for rate, recall, polls, dropped
                in zip(self.loss_rates, self.recalls, self.polls,
                       self.dropped_reports)]
        return format_table(
            ["loss-rate", "alert-recall", "polls", "dropped-reports"],
            rows,
            title=(f"Coordination under message loss "
                   f"({self.truth_alerts} ground-truth global alerts)"))


def reliability_experiment(loss_rates: tuple[float, ...] = (
        0.0, 0.05, 0.1, 0.2, 0.4),
        num_servers: int = 2, vms_per_server: int = 4,
        horizon: int = 1200, seed: int = 3) -> ReliabilityResult:
    """Sweep message-loss rates on a flood-carrying distributed testbed.

    One coordinator group; a single-victim SYN flood drives the *global*
    sum over its threshold, so exactly one monitor observes the local
    violation — the coordinator's awareness of every global alert hangs
    on that monitor's report arriving. (A fleet-wide anomaly is reported
    redundantly by every monitor and shrugs off even heavy loss; the
    single-reporter case is where reliability actually binds.) Traces and
    thresholds are identical across loss rates — only the network differs.
    """
    if not loss_rates:
        raise ConfigurationError("need at least one loss rate")
    if any(not 0.0 <= r < 1.0 for r in loss_rates):
        raise ConfigurationError(f"loss rates must be in [0, 1): "
                                 f"{loss_rates}")
    attack = SynFloodAttack(start=int(horizon * 0.7),
                            peak_syn_rate=30_000.0, ramp_steps=8,
                            hold_steps=40, decay_steps=8)

    def hook(vm_id, rho, packets):
        if vm_id != 0:
            return rho, packets
        rho = inject_attacks(rho, [attack])
        packets = packets + attack.profile(packets.size).astype(int)
        return rho, packets

    recalls, polls, dropped = [], [], []
    truth_alerts = 0
    for rate in loss_rates:
        config = TestbedConfig(
            num_servers=num_servers, vms_per_server=vms_per_server,
            servers_per_coordinator=num_servers, horizon_steps=horizon,
            error_allowance=0.01, distributed=True,
            message_loss_rate=rate, seed=seed)
        testbed = build_testbed(config, trace_hook=hook)
        testbed.run()
        coordinator = testbed.coordinators[0]

        totals = np.sum([m.vm.agent.values for m in coordinator.monitors],
                        axis=0)
        truth = set(np.flatnonzero(
            totals > coordinator.spec.global_threshold).tolist())
        truth_alerts = len(truth)
        detected = {a.time_index for a in coordinator.alerts}
        recalls.append(len(truth & detected) / len(truth)
                       if truth else 1.0)
        polls.append(len(coordinator.polls))
        dropped.append(testbed.network.dropped_of("violation-report"))

    return ReliabilityResult(
        loss_rates=tuple(loss_rates),
        recalls=tuple(recalls),
        polls=tuple(polls),
        dropped_reports=tuple(dropped),
        truth_alerts=truth_alerts,
    )
