"""Plain-text reporting of experiment results.

Every figure driver prints its numbers through these helpers so the
benchmark output reads like the paper's figures: one row per series, one
column per x-axis value.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.experiments.parallel import SweepStats

__all__ = ["format_table", "format_matrix", "format_sweep_stats", "to_csv"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table.

    Args:
        headers: column titles.
        rows: cell values (rendered with ``str``; floats pre-format them).
        title: optional caption printed above the table.
    """
    cells = [[str(h) for h in headers]]
    cells += [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[c]) for row in cells)
              for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_matrix(row_label: str, row_keys: Sequence[object],
                  col_label: str, col_keys: Sequence[object],
                  values: dict[tuple[object, object], float],
                  title: str = "", fmt: str = "{:.3f}") -> str:
    """Render a (series x x-axis) matrix like the paper's figures.

    Args:
        row_label / row_keys: series axis (e.g. selectivity ``k``).
        col_label / col_keys: x axis (e.g. error allowance).
        values: cell values keyed by ``(row_key, col_key)``.
        title: optional caption.
        fmt: format applied to each cell value.
    """
    headers = [f"{row_label}\\{col_label}"] + [str(c) for c in col_keys]
    rows = []
    for r in row_keys:
        row: list[object] = [str(r)]
        for c in col_keys:
            row.append(fmt.format(values[(r, c)])
                       if (r, c) in values else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_sweep_stats(stats: "SweepStats") -> str:
    """One-line execution summary of a parallel sweep.

    Covers cell counts, cache hits/misses, worker count, end-to-end wall
    time and the per-computed-cell time distribution — the observability
    surface the figure drivers print alongside their matrices.
    """
    parts = [f"[sweep] {stats.jobs} cells"
             f" ({stats.cache_hits} cached, {stats.cache_misses} computed)"
             f" on {stats.workers} worker{'s' if stats.workers != 1 else ''}",
             f"wall {stats.wall_seconds:.2f}s"]
    if stats.cell_seconds:
        mean = sum(stats.cell_seconds) / len(stats.cell_seconds)
        parts.append(f"cell mean {mean:.3f}s"
                     f" max {max(stats.cell_seconds):.3f}s")
    return "; ".join(parts)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as CSV (RFC-4180-style quoting where needed).

    Floats are emitted at full precision so downstream plotting scripts
    lose nothing to the text round-trip.
    """
    def cell(value: object) -> str:
        text = repr(value) if isinstance(value, float) else str(value)
        if any(ch in text for ch in ",\"\n"):
            return '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(cell(h) for h in headers)]
    lines += [",".join(cell(v) for v in row) for row in rows]
    return "\n".join(lines) + "\n"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
