"""Single-monitor experiment runner.

Drives any :class:`~repro.core.sampler.SamplingScheme` over a
full-resolution metric trace on the default-interval grid and scores the
resulting schedule against periodic ground truth. This is the workhorse
behind Figures 5 and 7: one call per (trace, task, scheme) combination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.accuracy import RunAccuracy, evaluate_sampling
from repro.core.adaptation import (AdaptationConfig,
                                   ViolationLikelihoodSampler)
from repro.core.correlation import TriggeredSampler
from repro.core.sampler import SamplingScheme
from repro.core.task import TaskSpec
from repro.baselines.periodic import PeriodicSampler
from repro.exceptions import TraceError
from repro.types import ThresholdDirection

__all__ = ["RunResult", "run_sampler_on_trace", "run_adaptive",
           "run_periodic", "run_triggered"]


@dataclass(frozen=True, slots=True)
class RunResult:
    """Outcome of driving one sampling scheme over one trace.

    Attributes:
        sampled_indices: grid points at which a sample was taken.
        accuracy: cost/accuracy summary vs. periodic ground truth.
        intervals: interval in force after each sample (same length as
            ``sampled_indices``); empty when recording was disabled.
    """

    sampled_indices: np.ndarray
    accuracy: RunAccuracy
    intervals: np.ndarray

    @property
    def sampling_ratio(self) -> float:
        """Convenience proxy for ``accuracy.sampling_ratio``."""
        return self.accuracy.sampling_ratio

    @property
    def misdetection_rate(self) -> float:
        """Convenience proxy for ``accuracy.misdetection_rate``."""
        return self.accuracy.misdetection_rate


def _as_trace(values: np.ndarray) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise TraceError(f"expected a non-empty 1-d trace, got {arr.shape}")
    return arr


def _drive_and_score(arr: np.ndarray, observe, threshold: float,
                     direction: ThresholdDirection,
                     record_intervals: bool = True) -> RunResult:
    """The reference sample loop (one decision object per step).

    ``observe(value, t)`` must return the scheme's
    :class:`~repro.core.adaptation.SamplingDecision`; sampling starts at
    grid index 0, advances by the decided interval (floored at 1), and
    stops past the end of the trace. This is the driver every *generic*
    scheme goes through (:func:`run_sampler_on_trace`), and the oracle the
    fused driver below is equivalence-tested against.
    """
    n = arr.size
    sampled: list[int] = []
    intervals: list[int] = []
    t = 0
    while t < n:
        sampled.append(t)
        decision = observe(float(arr[t]), t)
        step = max(1, int(decision.next_interval))
        if record_intervals:
            intervals.append(step)
        t += step
    accuracy = evaluate_sampling(arr, threshold, sampled, direction)
    return RunResult(
        sampled_indices=np.asarray(sampled, dtype=int),
        accuracy=accuracy,
        intervals=np.asarray(intervals, dtype=int),
    )


def _drive_fast(arr: np.ndarray, observe_fast, threshold: float,
                direction: ThresholdDirection,
                record_intervals: bool = True,
                trigger: np.ndarray | None = None) -> RunResult:
    """The fused sample loop (DESIGN.md S27).

    ``observe_fast(value, t)`` — or ``observe_fast(value, t, trig)`` when a
    ``trigger`` trace is supplied — returns the next interval as a plain
    int, so driving a whole trace allocates no per-step decision objects.
    The trace (and trigger) are converted to Python floats once up front
    with ``tolist()`` instead of a ``float(arr[t])`` coercion per visited
    grid point. Produces schedules identical to :func:`_drive_and_score`
    over an equivalent ``observe`` (enforced by the equivalence suite).
    """
    n = arr.size
    values = arr.tolist()
    sampled: list[int] = []
    intervals: list[int] = []
    sampled_append = sampled.append
    intervals_append = intervals.append
    t = 0
    if trigger is None:
        while t < n:
            sampled_append(t)
            step = observe_fast(values[t], t)
            if step < 1:
                step = 1
            if record_intervals:
                intervals_append(step)
            t += step
    else:
        trig_values = trigger.tolist()
        while t < n:
            sampled_append(t)
            step = observe_fast(values[t], t, trig_values[t])
            if step < 1:
                step = 1
            if record_intervals:
                intervals_append(step)
            t += step
    accuracy = evaluate_sampling(arr, threshold, sampled, direction)
    return RunResult(
        sampled_indices=np.asarray(sampled, dtype=int),
        accuracy=accuracy,
        intervals=np.asarray(intervals, dtype=int),
    )


def run_sampler_on_trace(values: np.ndarray, scheme: SamplingScheme,
                         threshold: float,
                         direction: ThresholdDirection = ThresholdDirection.UPPER,
                         record_intervals: bool = True) -> RunResult:
    """Run ``scheme`` over ``values`` on the default-interval grid.

    The scheme is asked for its next interval after every sample; sampling
    starts at grid index 0 and stops past the end of the trace.

    Args:
        values: one value per default-interval grid point.
        scheme: any sampling scheme (adaptive, periodic, oracle, ...).
        threshold: threshold used for accuracy scoring.
        direction: violation side for accuracy scoring.
        record_intervals: also record the interval trajectory.
    """
    arr = _as_trace(values)
    return _drive_and_score(arr, scheme.observe, threshold, direction,
                            record_intervals)


def run_adaptive(values: np.ndarray, task: TaskSpec,
                 config: AdaptationConfig | None = None,
                 record_intervals: bool = True) -> RunResult:
    """Run Volley's violation-likelihood sampler over a trace.

    Drives the sampler through its fused whole-trace fast path
    (:meth:`~repro.core.adaptation.ViolationLikelihoodSampler.run_trace`);
    the schedule, intervals and accuracy are identical to driving
    :meth:`observe` through :func:`run_sampler_on_trace` — the latter is
    the reference the equivalence suite checks this path against.
    """
    arr = _as_trace(values)
    sampler = ViolationLikelihoodSampler(task, config)
    sampled, intervals = sampler.run_trace(
        arr.tolist(), record_intervals=record_intervals)
    accuracy = evaluate_sampling(arr, task.threshold, sampled,
                                 task.direction)
    return RunResult(
        sampled_indices=np.asarray(sampled, dtype=int),
        accuracy=accuracy,
        intervals=np.asarray(intervals, dtype=int),
    )


def run_periodic(values: np.ndarray, threshold: float, interval: int = 1,
                 direction: ThresholdDirection = ThresholdDirection.UPPER,
                 ) -> RunResult:
    """Run fixed-interval sampling over a trace."""
    return run_sampler_on_trace(values, PeriodicSampler(interval), threshold,
                                direction)


def run_triggered(values: np.ndarray, trigger_values: np.ndarray,
                  task: TaskSpec, elevation_level: float,
                  suspend_interval: int = 10,
                  config: AdaptationConfig | None = None) -> RunResult:
    """Run a correlation-guarded adaptive sampler over a trace.

    Args:
        values: the guarded task's metric trace.
        trigger_values: the trigger metric, aligned with ``values``.
        task: the guarded task's spec.
        elevation_level: trigger level above which full sampling resumes.
        suspend_interval: idle interval while the trigger is cold.
        config: adaptation tunables for the inner sampler.
    """
    arr = _as_trace(values)
    trig = _as_trace(trigger_values)
    if trig.shape != arr.shape:
        raise TraceError(
            f"trigger trace misaligned: {trig.shape} vs {arr.shape}")
    inner = ViolationLikelihoodSampler(task, config)
    sampler = TriggeredSampler(inner, elevation_level, suspend_interval)
    # Fused path: the trigger trace is converted to floats once inside the
    # driver (no per-step float(trig[t]) coercion or closure dispatch).
    return _drive_fast(arr, sampler.observe_fast, task.threshold,
                       task.direction, trigger=trig)
