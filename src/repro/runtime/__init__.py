"""Sharded live-ingestion runtime for the monitoring service (S26).

Everything before this package replays *traces*; ``repro.runtime`` is the
first surface that actually serves traffic. It wraps one
:class:`~repro.service.MonitoringService` per shard behind an asyncio
server speaking a length-prefixed JSON protocol
(:mod:`repro.runtime.protocol`):

* ``offer_batch`` carries many ``(task, step, value)`` updates per frame,
  routed to shards by a stable hash of the task name;
* bounded per-shard queues give explicit backpressure — a lagging shard
  sheds batches with a ``retry_after_ms`` hint instead of blocking the
  event loop;
* ``snapshot``/``restore`` checkpoints persist full sampler state (Welford
  statistics, current interval, patience streak, next-due step) so a
  restarted server resumes exactly where the previous one stopped;
* graceful shutdown (SIGTERM) drains the queues and flushes a final
  checkpoint, so every acknowledged offer is either applied or
  checkpointed;
* observability through :mod:`repro.telemetry` (S29): the ``telemetry``
  and ``trace`` wire ops, and — with ``--http-port`` — a scrapeable
  ``/metrics`` + ``/healthz`` + ``/trace`` HTTP endpoint;
  ``--selfmon-interval`` turns on self-monitoring (the runtime's own
  health gauges watched as Volley tasks).

Entry points::

    python -m repro.runtime --port 7461 --shards 4 --checkpoint ckpt.json \\
        --http-port 9464 --selfmon-interval 1.0
    python -m repro.runtime.loadgen --tasks 64 --duration 5

Clients: :class:`~repro.runtime.client.RuntimeClient` (sync) and
:class:`~repro.runtime.client.AsyncRuntimeClient` (asyncio).
"""

from repro.config import RuntimeConfig
from repro.runtime.checkpoint import read_checkpoint, write_checkpoint
from repro.runtime.client import AsyncRuntimeClient, RuntimeClient
from repro.runtime.protocol import (MAX_FRAME, PROTOCOL_BINARY,
                                    PROTOCOL_JSON, PROTOCOL_VERSION,
                                    OfferColumns, OfferReply, ShardOffer,
                                    decode_binary, encode_frame,
                                    encode_frame_parts,
                                    encode_offer_columns,
                                    encode_offer_reply, encode_shard_offer,
                                    read_frame, read_frame_blocking)
from repro.runtime.server import RuntimeServer
from repro.runtime.shard import ShardWorker, shard_for

__all__ = [
    "AsyncRuntimeClient",
    "MAX_FRAME",
    "OfferColumns",
    "OfferReply",
    "PROTOCOL_BINARY",
    "PROTOCOL_JSON",
    "PROTOCOL_VERSION",
    "RuntimeClient",
    "RuntimeConfig",
    "RuntimeServer",
    "ShardOffer",
    "ShardWorker",
    "decode_binary",
    "encode_frame",
    "encode_frame_parts",
    "encode_offer_columns",
    "encode_offer_reply",
    "encode_shard_offer",
    "read_checkpoint",
    "read_frame",
    "read_frame_blocking",
    "shard_for",
    "write_checkpoint",
]
