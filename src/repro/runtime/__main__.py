"""``python -m repro.runtime`` starts the ingestion server."""

from __future__ import annotations

import sys

from repro.runtime.server import main

if __name__ == "__main__":
    sys.exit(main())
