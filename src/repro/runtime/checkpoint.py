"""Atomic checkpoint persistence for the ingestion runtime.

A checkpoint is one JSON document holding every shard's full
:meth:`~repro.service.MonitoringService.snapshot` plus the task→shard map
and counters. Writes go through a same-directory temp file + ``os.replace``
so a crash mid-write leaves the previous checkpoint intact — readers see
either the old complete state or the new complete state, never a torn file.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any

from repro.exceptions import CheckpointError

__all__ = ["CHECKPOINT_VERSION", "read_checkpoint", "write_checkpoint"]

CHECKPOINT_VERSION = 1


def write_checkpoint(path: pathlib.Path | str,
                     state: dict[str, Any]) -> pathlib.Path:
    """Atomically persist a runtime state dict; returns the final path."""
    path = pathlib.Path(path)
    payload = dict(state)
    payload["checkpoint_version"] = CHECKPOINT_VERSION
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    body = json.dumps(payload, separators=(",", ":"))
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    # fsync the directory so the rename itself survives power loss.
    # Best-effort: some platforms/filesystems refuse to fsync a directory.
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover
        return path
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(dir_fd)
    return path


def read_checkpoint(path: pathlib.Path | str) -> dict[str, Any]:
    """Load and validate a checkpoint written by :func:`write_checkpoint`.

    Raises :class:`~repro.exceptions.CheckpointError` when the file is
    missing, unparsable, or from an incompatible format version.
    """
    path = pathlib.Path(path)
    try:
        body = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") \
            from None
    try:
        state = json.loads(body)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON: {exc}") from None
    if not isinstance(state, dict):
        raise CheckpointError(
            f"checkpoint {path} must hold a JSON object, got "
            f"{type(state).__name__}")
    version = state.get("checkpoint_version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {version!r}; this runtime "
            f"reads version {CHECKPOINT_VERSION}")
    return state
