"""Atomic checkpoint persistence for the ingestion runtime.

A checkpoint is one JSON document holding every shard's full
:meth:`~repro.service.MonitoringService.snapshot` plus the task→shard map
and counters. Writes go through a same-directory temp file + ``os.replace``
so a crash mid-write leaves the previous checkpoint intact — readers see
either the old complete state or the new complete state, never a torn file.

Format version 2 appends a ``crc32:<8 hex>`` trailer line covering the
JSON body. The atomic writer makes torn files impossible through *this*
code path, but checkpoints also travel — partial copies, filesystem
corruption, backup tools interrupted mid-stream — and a truncated JSON
document can still parse if it happens to be cut at a token boundary.
The checksum closes that hole: :func:`read_checkpoint` refuses any
version-2 document whose trailer is missing or does not match, so a
damaged checkpoint raises :class:`~repro.exceptions.CheckpointError`
instead of silently loading partial shard state. Version-1 files (no
trailer) remain readable for backward compatibility.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
import zlib
from typing import TYPE_CHECKING, Any, Mapping

from repro.exceptions import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.testkit.faults import FaultHook

__all__ = ["CHECKPOINT_VERSION", "read_checkpoint", "state_fingerprint",
           "write_checkpoint"]

CHECKPOINT_VERSION = 2

_LEGACY_VERSIONS = {1}
"""Trailer-less format versions still accepted by :func:`read_checkpoint`."""

_TRAILER = re.compile(r"\ncrc32:([0-9a-f]{8})\n?\Z")


def state_fingerprint(state: Mapping[str, Any]) -> str:
    """Stable fingerprint of a JSON-able state dict (canonical SHA-256).

    Two states with equal fingerprints are byte-identical up to dict
    ordering. This is the equality the bit-identical-restore invariant is
    stated in, and what the cluster migration protocol compares before
    cutting a shard over to its target worker.
    """
    canonical = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _encode(state: dict[str, Any]) -> bytes:
    payload = dict(state)
    payload["checkpoint_version"] = CHECKPOINT_VERSION
    body = json.dumps(payload, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{body}\ncrc32:{crc:08x}\n".encode("utf-8")


def write_checkpoint(path: pathlib.Path | str, state: dict[str, Any],
                     fault_hook: "FaultHook | None" = None) -> pathlib.Path:
    """Atomically persist a runtime state dict; returns the final path.

    Args:
        path: final checkpoint location.
        state: the runtime state (JSON-able).
        fault_hook: chaos-testing seam (``repro.testkit``); the production
            default injects nothing.

    Raises :class:`~repro.exceptions.CheckpointError` when the filesystem
    refuses the write (callers — the periodic checkpoint loop, the
    ``checkpoint`` wire op — degrade gracefully instead of dying).
    """
    path = pathlib.Path(path)
    try:
        data = _encode(state)
        if fault_hook is not None and fault_hook.enabled:
            data = fault_hook.checkpoint_body(data)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(
            f"cannot write checkpoint {path}: {exc}") from None
    # fsync the directory so the rename itself survives power loss.
    # Best-effort: some platforms/filesystems refuse to fsync a directory.
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover
        return path
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(dir_fd)
    return path


def read_checkpoint(path: pathlib.Path | str) -> dict[str, Any]:
    """Load and validate a checkpoint written by :func:`write_checkpoint`.

    Raises :class:`~repro.exceptions.CheckpointError` when the file is
    missing, unparsable, truncated, checksum-mismatched, or from an
    incompatible format version.
    """
    path = pathlib.Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") \
            from None
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} is not valid UTF-8: {exc}") from None
    trailer = _TRAILER.search(text)
    if trailer is not None:
        body = text[:trailer.start()]
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        if crc != int(trailer.group(1), 16):
            raise CheckpointError(
                f"checkpoint {path} failed its checksum "
                f"(stored {trailer.group(1)}, computed {crc:08x}); "
                f"the file is corrupt or was truncated mid-write")
    else:
        body = text
    try:
        state = json.loads(body)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON: {exc}") from None
    if not isinstance(state, dict):
        raise CheckpointError(
            f"checkpoint {path} must hold a JSON object, got "
            f"{type(state).__name__}")
    version = state.get("checkpoint_version")
    if version == CHECKPOINT_VERSION:
        if trailer is None:
            raise CheckpointError(
                f"checkpoint {path} declares version {version} but has no "
                f"checksum trailer; the file was truncated")
    elif version not in _LEGACY_VERSIONS:
        raise CheckpointError(
            f"checkpoint {path} has version {version!r}; this runtime "
            f"reads versions {sorted(_LEGACY_VERSIONS | {CHECKPOINT_VERSION})}")
    return state
