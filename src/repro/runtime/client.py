"""Sync and asyncio clients for the ingestion runtime.

Both clients speak one request/one reply over a single connection (the
server replies in order, so no correlation ids are needed). Error replies
(``ok: false``) raise :class:`~repro.exceptions.ProtocolError` — with the
deliberate exception of backpressure: a shed batch is an expected
operating condition, so :meth:`offer_batch` returns the reply dict and the
caller decides whether to retry after ``retry_after_ms`` or drop.

The sync :class:`RuntimeClient` exists for collection pipelines that are
not asyncio programs (cron collectors, WSGI hooks, the load generator);
the :class:`AsyncRuntimeClient` is for event-loop-native integrations.
"""

from __future__ import annotations

import asyncio
import pathlib
import socket
from typing import Any, Sequence

from repro.exceptions import ProtocolError
from repro.runtime.protocol import encode_frame, read_frame, \
    read_frame_blocking

__all__ = ["AsyncRuntimeClient", "RuntimeClient"]

Update = Sequence[Any]  # [task, step, value]


def _check_reply(reply: dict[str, Any] | None, op: str) -> dict[str, Any]:
    if reply is None:
        raise ProtocolError(f"server closed the connection during {op!r}")
    if not reply.get("ok"):
        raise ProtocolError(
            f"{op!r} failed: {reply.get('error', 'unknown error')} "
            f"(code={reply.get('code', '?')})")
    return reply


class RuntimeClient:
    """Blocking client over TCP or a unix-domain socket.

    Args:
        host / port: TCP endpoint (ignored when ``unix_socket`` given).
        unix_socket: unix-domain socket path.
        timeout: per-request socket timeout in seconds.

    Usable as a context manager; the connection is opened lazily on the
    first request and survives across requests.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 unix_socket: str | pathlib.Path | None = None,
                 timeout: float = 30.0):
        self._host = host
        self._port = port
        self._unix = None if unix_socket is None else str(unix_socket)
        self._timeout = timeout
        self._sock: socket.socket | None = None
        self._file: Any = None

    def connect(self) -> None:
        """Open the connection now (otherwise the first request does)."""
        if self._sock is not None:
            return
        if self._unix is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout)
            sock.connect(self._unix)
        else:
            sock = socket.create_connection((self._host, self._port),
                                            timeout=self._timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._file = sock.makefile("rb")

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "RuntimeClient":
        self.connect()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one frame and return the raw reply dict."""
        self.connect()
        assert self._sock is not None
        self._sock.sendall(encode_frame(payload))
        reply = read_frame_blocking(self._file)
        if reply is None:
            raise ProtocolError("server closed the connection")
        return reply

    def _call(self, payload: dict[str, Any]) -> dict[str, Any]:
        return _check_reply(self.request(payload), str(payload.get("op")))

    # -- convenience ops -------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self._call({"op": "ping"})

    def register_task(self, name: str, threshold: float,
                      **spec: Any) -> dict[str, Any]:
        """Register a task; ``spec`` takes the declarative config keys
        (``error_allowance``, ``max_interval``, ``direction``, ``window``,
        ``aggregate``, ...)."""
        task = {"name": name, "threshold": threshold, **spec}
        return self._call({"op": "register_task", "task": task})

    def remove_task(self, name: str) -> dict[str, Any]:
        return self._call({"op": "remove_task", "task": name})

    def add_trigger(self, target: str, trigger: str, elevation_level: float,
                    suspend_interval: int = 10) -> dict[str, Any]:
        return self._call({"op": "add_trigger", "target": target,
                           "trigger": trigger,
                           "elevation_level": elevation_level,
                           "suspend_interval": suspend_interval})

    def offer_batch(self, updates: Sequence[Update]) -> dict[str, Any]:
        """Push a batch; returns the reply even under backpressure
        (check ``reply.get("shed", 0)``)."""
        reply = self.request({"op": "offer_batch",
                              "updates": [list(u) for u in updates]})
        if not reply.get("ok"):
            raise ProtocolError(
                f"offer_batch failed: {reply.get('error')} "
                f"(code={reply.get('code', '?')})")
        return reply

    def due(self, task: str, step: int) -> bool:
        return bool(self._call({"op": "due", "task": task,
                                "step": step})["due"])

    def task_info(self, task: str) -> dict[str, Any]:
        return self._call({"op": "task_info", "task": task})

    def alerts(self, task: str) -> list[list[float]]:
        return list(self._call({"op": "alerts", "task": task})["alerts"])

    def stats(self) -> dict[str, Any]:
        return self._call({"op": "stats"})

    def checkpoint(self) -> str:
        return str(self._call({"op": "checkpoint"})["path"])

    def telemetry(self) -> dict[str, Any]:
        """The server's full metrics snapshot (see ``repro.telemetry``)."""
        return self._call({"op": "telemetry"})

    def trace(self, since: int = 0,
              limit: int | None = None) -> dict[str, Any]:
        """Drain decision-trace events with ``seq >= since``.

        Returns the reply dict: ``events`` (oldest first), ``next_seq``
        (pass back as ``since`` to poll incrementally), ``dropped``.
        """
        payload: dict[str, Any] = {"op": "trace", "since": since}
        if limit is not None:
            payload["limit"] = limit
        return self._call(payload)

    def migrate(self, shard: int, worker: str) -> dict[str, Any]:
        """Move one shard to another worker live (``repro.cluster`` only;
        a single-process server answers with ``unknown-op``)."""
        return self._call({"op": "migrate", "shard": shard,
                           "worker": worker})

    def placement(self) -> dict[str, Any]:
        """The cluster's live placement table (``repro.cluster`` only)."""
        return self._call({"op": "placement"})


class AsyncRuntimeClient:
    """Asyncio twin of :class:`RuntimeClient` (same op surface).

    Requests are serialised with an internal lock so concurrent coroutines
    can share one client without interleaving frames.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 unix_socket: str | pathlib.Path | None = None):
        self._host = host
        self._port = port
        self._unix = None if unix_socket is None else str(unix_socket)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    async def connect(self) -> None:
        if self._writer is not None:
            return
        if self._unix is not None:
            self._reader, self._writer = await asyncio.open_unix_connection(
                self._unix)
        else:
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncRuntimeClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        async with self._lock:
            await self.connect()
            assert self._writer is not None and self._reader is not None
            self._writer.write(encode_frame(payload))
            await self._writer.drain()
            reply = await read_frame(self._reader)
        if reply is None:
            raise ProtocolError("server closed the connection")
        return reply

    async def _call(self, payload: dict[str, Any]) -> dict[str, Any]:
        return _check_reply(await self.request(payload),
                            str(payload.get("op")))

    async def ping(self) -> dict[str, Any]:
        return await self._call({"op": "ping"})

    async def register_task(self, name: str, threshold: float,
                            **spec: Any) -> dict[str, Any]:
        task = {"name": name, "threshold": threshold, **spec}
        return await self._call({"op": "register_task", "task": task})

    async def remove_task(self, name: str) -> dict[str, Any]:
        return await self._call({"op": "remove_task", "task": name})

    async def add_trigger(self, target: str, trigger: str,
                          elevation_level: float,
                          suspend_interval: int = 10) -> dict[str, Any]:
        return await self._call({"op": "add_trigger", "target": target,
                                 "trigger": trigger,
                                 "elevation_level": elevation_level,
                                 "suspend_interval": suspend_interval})

    async def offer_batch(self, updates: Sequence[Update]) -> dict[str, Any]:
        reply = await self.request({"op": "offer_batch",
                                    "updates": [list(u) for u in updates]})
        if not reply.get("ok"):
            raise ProtocolError(
                f"offer_batch failed: {reply.get('error')} "
                f"(code={reply.get('code', '?')})")
        return reply

    async def due(self, task: str, step: int) -> bool:
        reply = await self._call({"op": "due", "task": task, "step": step})
        return bool(reply["due"])

    async def task_info(self, task: str) -> dict[str, Any]:
        return await self._call({"op": "task_info", "task": task})

    async def alerts(self, task: str) -> list[list[float]]:
        reply = await self._call({"op": "alerts", "task": task})
        return list(reply["alerts"])

    async def stats(self) -> dict[str, Any]:
        return await self._call({"op": "stats"})

    async def checkpoint(self) -> str:
        return str((await self._call({"op": "checkpoint"}))["path"])

    async def telemetry(self) -> dict[str, Any]:
        """The server's full metrics snapshot (see ``repro.telemetry``)."""
        return await self._call({"op": "telemetry"})

    async def trace(self, since: int = 0,
                    limit: int | None = None) -> dict[str, Any]:
        """Drain decision-trace events with ``seq >= since``."""
        payload: dict[str, Any] = {"op": "trace", "since": since}
        if limit is not None:
            payload["limit"] = limit
        return await self._call(payload)

    async def migrate(self, shard: int, worker: str) -> dict[str, Any]:
        """Move one shard to another worker live (``repro.cluster`` only;
        a single-process server answers with ``unknown-op``)."""
        return await self._call({"op": "migrate", "shard": shard,
                                 "worker": worker})

    async def placement(self) -> dict[str, Any]:
        """The cluster's live placement table (``repro.cluster`` only)."""
        return await self._call({"op": "placement"})
