"""Sync and asyncio clients for the ingestion runtime.

Both clients speak one request/one reply over a single connection (the
server replies in order, so no correlation ids are needed). Error replies
(``ok: false``) raise :class:`~repro.exceptions.ProtocolError` — with the
deliberate exception of backpressure: a shed batch is an expected
operating condition, so :meth:`offer_batch` returns the reply dict and the
caller decides whether to retry after ``retry_after_ms`` or drop.

The sync :class:`RuntimeClient` exists for collection pipelines that are
not asyncio programs (cron collectors, WSGI hooks, the load generator);
the :class:`AsyncRuntimeClient` is for event-loop-native integrations.
"""

from __future__ import annotations

import asyncio
import pathlib
import socket
from typing import Any, Sequence

from repro.exceptions import ProtocolError
from repro.runtime.protocol import (PROTOCOL_BINARY, PROTOCOL_JSON,
                                    PROTOCOL_VERSION, OfferReply,
                                    encode_frame_parts,
                                    encode_offer_columns, read_frame,
                                    read_frame_blocking)

__all__ = ["AsyncRuntimeClient", "RuntimeClient"]

Update = Sequence[Any]  # [task, step, value]


def _offer_reply_error(reply: Any) -> ProtocolError:
    if isinstance(reply, dict):
        return ProtocolError(
            f"binary offer failed: {reply.get('error', 'unknown error')} "
            f"(code={reply.get('code', '?')})")
    return ProtocolError(
        f"unexpected reply to a binary offer: {type(reply).__name__}")


def _check_reply(reply: dict[str, Any] | None, op: str) -> dict[str, Any]:
    if reply is None:
        raise ProtocolError(f"server closed the connection during {op!r}")
    if not reply.get("ok"):
        raise ProtocolError(
            f"{op!r} failed: {reply.get('error', 'unknown error')} "
            f"(code={reply.get('code', '?')})")
    return reply


class RuntimeClient:
    """Blocking client over TCP or a unix-domain socket.

    Args:
        host / port: TCP endpoint (ignored when ``unix_socket`` given).
        unix_socket: unix-domain socket path.
        timeout: per-request socket timeout in seconds.

    Usable as a context manager; the connection is opened lazily on the
    first request and survives across requests.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 unix_socket: str | pathlib.Path | None = None,
                 timeout: float = 30.0):
        self._host = host
        self._port = port
        self._unix = None if unix_socket is None else str(unix_socket)
        self._timeout = timeout
        self._sock: socket.socket | None = None
        self._file: Any = None
        self._protocol = PROTOCOL_JSON
        self._intern: dict[str, int] = {}

    @property
    def protocol(self) -> int:
        """The negotiated protocol version (1 until :meth:`negotiate`)."""
        return self._protocol

    def connect(self) -> None:
        """Open the connection now (otherwise the first request does)."""
        if self._sock is not None:
            return
        if self._unix is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout)
            sock.connect(self._unix)
        else:
            sock = socket.create_connection((self._host, self._port),
                                            timeout=self._timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._file = sock.makefile("rb")

    def close(self) -> None:
        """Close the connection (idempotent).

        Negotiation and the intern table are per-connection server state,
        so both reset here; re-run :meth:`negotiate` after reconnecting.
        """
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        self._protocol = PROTOCOL_JSON
        self._intern.clear()

    def __enter__(self) -> "RuntimeClient":
        self.connect()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _send_parts(self, header: bytes, body: bytes) -> None:
        """Writev-style send: header + body without concatenating them."""
        assert self._sock is not None
        if not hasattr(self._sock, "sendmsg"):  # e.g. Windows
            self._sock.sendall(header + body)
            return
        sent = self._sock.sendmsg((header, body))
        total = len(header) + len(body)
        if sent >= total:
            return
        # Rare partial gather-send (tiny socket buffer): finish with
        # plain sendall on whatever remains of each part.
        if sent < len(header):
            self._sock.sendall(header[sent:])
            self._sock.sendall(body)
        else:
            self._sock.sendall(body[sent - len(header):])

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one frame and return the raw reply dict."""
        self.connect()
        self._send_parts(*encode_frame_parts(payload))
        reply = read_frame_blocking(self._file)
        if reply is None:
            raise ProtocolError("server closed the connection")
        return reply

    def _call(self, payload: dict[str, Any]) -> dict[str, Any]:
        return _check_reply(self.request(payload), str(payload.get("op")))

    # -- binary protocol -------------------------------------------------

    def negotiate(self, max_protocol: int = PROTOCOL_VERSION) -> int:
        """Negotiate the connection's protocol; returns the agreed version.

        A protocol-1 server has no ``hello`` op at all — its ``unknown-op``
        error means "stay on JSON", not failure, so this never raises
        against an old server.
        """
        reply = self.request({"op": "hello", "max_protocol": max_protocol})
        if not reply.get("ok"):
            if reply.get("code") == "unknown-op":
                self._protocol = PROTOCOL_JSON
                return self._protocol
            raise ProtocolError(
                f"'hello' failed: {reply.get('error', 'unknown error')} "
                f"(code={reply.get('code', '?')})")
        self._protocol = int(reply.get("protocol", PROTOCOL_JSON))
        return self._protocol

    def intern(self, names: Sequence[str]) -> list[int]:
        """Intern task names for columnar offers; returns their indexes.

        Indexes are assigned client-side (dense, in first-seen order) and
        are stable for the life of the connection. Already-interned names
        cost nothing; call :meth:`reintern` instead after registering
        tasks that were interned *before* registration, so the server
        re-resolves them onto engine rows.
        """
        entries = []
        for name in names:
            if name not in self._intern:
                idx = len(self._intern)
                self._intern[name] = idx
                entries.append([idx, name])
        if entries:
            self._call({"op": "intern", "tasks": entries})
        return [self._intern[n] for n in names]

    def reintern(self) -> None:
        """Re-send the whole intern table (re-resolves rows server-side)."""
        if self._intern:
            self._call({"op": "intern",
                        "tasks": [[i, n] for n, i in self._intern.items()]})

    def offer_columns(self, task_idx: Any, steps: Any,
                      values: Any) -> OfferReply:
        """Push one binary columnar batch; returns the decoded reply.

        Requires a prior :meth:`negotiate` that agreed on protocol >= 2
        and task indexes from :meth:`intern`. Backpressure is reported on
        the reply (``reply.backpressure`` / ``reply.retry_after_ms``), not
        raised, mirroring :meth:`offer_batch`.
        """
        if self._protocol < PROTOCOL_BINARY:
            raise ProtocolError(
                "binary offers need negotiate() to agree on protocol >= 2")
        self.connect()
        self._send_parts(*encode_offer_columns(task_idx, steps, values))
        reply = read_frame_blocking(self._file)
        if reply is None:
            raise ProtocolError("server closed the connection")
        if isinstance(reply, OfferReply):
            return reply
        raise _offer_reply_error(reply)

    # -- convenience ops -------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self._call({"op": "ping"})

    def register_task(self, name: str, threshold: float,
                      **spec: Any) -> dict[str, Any]:
        """Register a task; ``spec`` takes the declarative config keys
        (``error_allowance``, ``max_interval``, ``direction``, ``window``,
        ``aggregate``, ...)."""
        task = {"name": name, "threshold": threshold, **spec}
        return self._call({"op": "register_task", "task": task})

    def remove_task(self, name: str) -> dict[str, Any]:
        return self._call({"op": "remove_task", "task": name})

    def add_trigger(self, target: str, trigger: str, elevation_level: float,
                    suspend_interval: int = 10) -> dict[str, Any]:
        return self._call({"op": "add_trigger", "target": target,
                           "trigger": trigger,
                           "elevation_level": elevation_level,
                           "suspend_interval": suspend_interval})

    def install_trigger_plan(self, plan: dict[str, Any]) -> dict[str, Any]:
        """Install a correlated-monitoring :class:`repro.triggers.TriggerPlan`
        (as its ``to_dict()`` form); both server kinds accept it."""
        return self._call({"op": "trigger_install", "plan": dict(plan)})

    def set_trigger_armed(self, task: str, armed: bool) -> dict[str, Any]:
        """Arm (or disarm) a guarded task's remote trigger explicitly."""
        op = "trigger_arm" if armed else "trigger_disarm"
        return self._call({"op": op, "task": task})

    def trigger_state(self, task: str) -> dict[str, Any]:
        """One task's channel wiring (guard state and/or watch state)."""
        return self._call({"op": "trigger_state", "task": task})

    def trigger_plans(self) -> dict[str, Any]:
        """Installed plans plus channel accounting (edge counts, guard
        suspensions, estimated probe collections saved)."""
        return self._call({"op": "trigger_plans"})

    def offer_batch(self, updates: Sequence[Update]) -> dict[str, Any]:
        """Push a batch; returns the reply even under backpressure
        (check ``reply.get("shed", 0)``)."""
        reply = self.request({"op": "offer_batch",
                              "updates": [list(u) for u in updates]})
        if not reply.get("ok"):
            raise ProtocolError(
                f"offer_batch failed: {reply.get('error')} "
                f"(code={reply.get('code', '?')})")
        return reply

    def due(self, task: str, step: int) -> bool:
        return bool(self._call({"op": "due", "task": task,
                                "step": step})["due"])

    def task_info(self, task: str) -> dict[str, Any]:
        return self._call({"op": "task_info", "task": task})

    def alerts(self, task: str) -> list[list[float]]:
        return list(self._call({"op": "alerts", "task": task})["alerts"])

    def stats(self) -> dict[str, Any]:
        return self._call({"op": "stats"})

    def checkpoint(self) -> str:
        return str(self._call({"op": "checkpoint"})["path"])

    def telemetry(self) -> dict[str, Any]:
        """The server's full metrics snapshot (see ``repro.telemetry``)."""
        return self._call({"op": "telemetry"})

    def trace(self, since: int = 0,
              limit: int | None = None) -> dict[str, Any]:
        """Drain decision-trace events with ``seq >= since``.

        Returns the reply dict: ``events`` (oldest first), ``next_seq``
        (pass back as ``since`` to poll incrementally), ``dropped``.
        """
        payload: dict[str, Any] = {"op": "trace", "since": since}
        if limit is not None:
            payload["limit"] = limit
        return self._call(payload)

    def migrate(self, shard: int, worker: str) -> dict[str, Any]:
        """Move one shard to another worker live (``repro.cluster`` only;
        a single-process server answers with ``unknown-op``)."""
        return self._call({"op": "migrate", "shard": shard,
                           "worker": worker})

    def placement(self) -> dict[str, Any]:
        """The cluster's live placement table (``repro.cluster`` only)."""
        return self._call({"op": "placement"})


class AsyncRuntimeClient:
    """Asyncio twin of :class:`RuntimeClient` (same op surface).

    Requests are serialised with an internal lock so concurrent coroutines
    can share one client without interleaving frames.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 unix_socket: str | pathlib.Path | None = None):
        self._host = host
        self._port = port
        self._unix = None if unix_socket is None else str(unix_socket)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()
        self._protocol = PROTOCOL_JSON
        self._intern: dict[str, int] = {}

    @property
    def protocol(self) -> int:
        """The negotiated protocol version (1 until :meth:`negotiate`)."""
        return self._protocol

    async def connect(self) -> None:
        if self._writer is not None:
            return
        if self._unix is not None:
            self._reader, self._writer = await asyncio.open_unix_connection(
                self._unix)
        else:
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None
        self._protocol = PROTOCOL_JSON
        self._intern.clear()

    async def __aenter__(self) -> "AsyncRuntimeClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        async with self._lock:
            await self.connect()
            assert self._writer is not None and self._reader is not None
            self._writer.writelines(encode_frame_parts(payload))
            await self._writer.drain()
            reply = await read_frame(self._reader)
        if reply is None:
            raise ProtocolError("server closed the connection")
        return reply

    async def _call(self, payload: dict[str, Any]) -> dict[str, Any]:
        return _check_reply(await self.request(payload),
                            str(payload.get("op")))

    # -- binary protocol -------------------------------------------------

    async def negotiate(self, max_protocol: int = PROTOCOL_VERSION) -> int:
        """Negotiate the connection's protocol; returns the agreed version.

        As with the sync client, a protocol-1 server's ``unknown-op`` reply
        means "stay on JSON" rather than failure.
        """
        reply = await self.request({"op": "hello",
                                    "max_protocol": max_protocol})
        if not reply.get("ok"):
            if reply.get("code") == "unknown-op":
                self._protocol = PROTOCOL_JSON
                return self._protocol
            raise ProtocolError(
                f"'hello' failed: {reply.get('error', 'unknown error')} "
                f"(code={reply.get('code', '?')})")
        self._protocol = int(reply.get("protocol", PROTOCOL_JSON))
        return self._protocol

    async def intern(self, names: Sequence[str]) -> list[int]:
        """Intern task names for columnar offers; returns their indexes."""
        entries = []
        for name in names:
            if name not in self._intern:
                idx = len(self._intern)
                self._intern[name] = idx
                entries.append([idx, name])
        if entries:
            await self._call({"op": "intern", "tasks": entries})
        return [self._intern[n] for n in names]

    async def reintern(self) -> None:
        """Re-send the whole intern table (re-resolves rows server-side)."""
        if self._intern:
            await self._call(
                {"op": "intern",
                 "tasks": [[i, n] for n, i in self._intern.items()]})

    async def offer_columns(self, task_idx: Any, steps: Any,
                            values: Any) -> OfferReply:
        """Push one binary columnar batch; returns the decoded reply.

        Same contract as the sync client: requires protocol >= 2 from
        :meth:`negotiate`; backpressure rides on the reply, not an
        exception.
        """
        if self._protocol < PROTOCOL_BINARY:
            raise ProtocolError(
                "binary offers need negotiate() to agree on protocol >= 2")
        parts = encode_offer_columns(task_idx, steps, values)
        async with self._lock:
            await self.connect()
            assert self._writer is not None and self._reader is not None
            self._writer.writelines(parts)
            await self._writer.drain()
            reply = await read_frame(self._reader)
        if reply is None:
            raise ProtocolError("server closed the connection")
        if isinstance(reply, OfferReply):
            return reply
        raise _offer_reply_error(reply)

    async def ping(self) -> dict[str, Any]:
        return await self._call({"op": "ping"})

    async def register_task(self, name: str, threshold: float,
                            **spec: Any) -> dict[str, Any]:
        task = {"name": name, "threshold": threshold, **spec}
        return await self._call({"op": "register_task", "task": task})

    async def remove_task(self, name: str) -> dict[str, Any]:
        return await self._call({"op": "remove_task", "task": name})

    async def add_trigger(self, target: str, trigger: str,
                          elevation_level: float,
                          suspend_interval: int = 10) -> dict[str, Any]:
        return await self._call({"op": "add_trigger", "target": target,
                                 "trigger": trigger,
                                 "elevation_level": elevation_level,
                                 "suspend_interval": suspend_interval})

    async def install_trigger_plan(self,
                                   plan: dict[str, Any]) -> dict[str, Any]:
        """Install a correlated-monitoring :class:`repro.triggers.TriggerPlan`
        (as its ``to_dict()`` form); both server kinds accept it."""
        return await self._call({"op": "trigger_install",
                                 "plan": dict(plan)})

    async def set_trigger_armed(self, task: str,
                                armed: bool) -> dict[str, Any]:
        """Arm (or disarm) a guarded task's remote trigger explicitly."""
        op = "trigger_arm" if armed else "trigger_disarm"
        return await self._call({"op": op, "task": task})

    async def trigger_state(self, task: str) -> dict[str, Any]:
        """One task's channel wiring (guard state and/or watch state)."""
        return await self._call({"op": "trigger_state", "task": task})

    async def trigger_plans(self) -> dict[str, Any]:
        """Installed plans plus channel accounting (edge counts, guard
        suspensions, estimated probe collections saved)."""
        return await self._call({"op": "trigger_plans"})

    async def offer_batch(self, updates: Sequence[Update]) -> dict[str, Any]:
        reply = await self.request({"op": "offer_batch",
                                    "updates": [list(u) for u in updates]})
        if not reply.get("ok"):
            raise ProtocolError(
                f"offer_batch failed: {reply.get('error')} "
                f"(code={reply.get('code', '?')})")
        return reply

    async def due(self, task: str, step: int) -> bool:
        reply = await self._call({"op": "due", "task": task, "step": step})
        return bool(reply["due"])

    async def task_info(self, task: str) -> dict[str, Any]:
        return await self._call({"op": "task_info", "task": task})

    async def alerts(self, task: str) -> list[list[float]]:
        reply = await self._call({"op": "alerts", "task": task})
        return list(reply["alerts"])

    async def stats(self) -> dict[str, Any]:
        return await self._call({"op": "stats"})

    async def checkpoint(self) -> str:
        return str((await self._call({"op": "checkpoint"}))["path"])

    async def telemetry(self) -> dict[str, Any]:
        """The server's full metrics snapshot (see ``repro.telemetry``)."""
        return await self._call({"op": "telemetry"})

    async def trace(self, since: int = 0,
                    limit: int | None = None) -> dict[str, Any]:
        """Drain decision-trace events with ``seq >= since``."""
        payload: dict[str, Any] = {"op": "trace", "since": since}
        if limit is not None:
            payload["limit"] = limit
        return await self._call(payload)

    async def migrate(self, shard: int, worker: str) -> dict[str, Any]:
        """Move one shard to another worker live (``repro.cluster`` only;
        a single-process server answers with ``unknown-op``)."""
        return await self._call({"op": "migrate", "shard": shard,
                                 "worker": worker})

    async def placement(self) -> dict[str, Any]:
        """The cluster's live placement table (``repro.cluster`` only)."""
        return await self._call({"op": "placement"})
