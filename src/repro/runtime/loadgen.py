"""Load generator for the ingestion runtime (``python -m repro.runtime.loadgen``).

Drives N synthetic tasks at a target offer rate through the real wire
protocol and reports sustained throughput plus request latency
percentiles to ``BENCH_runtime.json``. With no ``--connect``/``--unix``
endpoint it self-hosts: a :class:`~repro.runtime.server.RuntimeServer` is
spun up on an ephemeral loopback port in a background thread, so one
command benchmarks the full client → TCP → shard-queue → sampler path.

Cluster mode: ``--cluster-workers N`` self-hosts a
:class:`~repro.cluster.server.ClusterServer` fleet instead (default
``subprocess`` backend — one worker process per core, which is where
multi-process scaling actually comes from; ``--connections C`` drives it
over C concurrent sender connections so the routing tier is not
serialised behind one socket). ``--cluster-sweep 1,2,4,8`` benchmarks
each fleet size in turn and reports offers/s scaling normalised to the
single-worker run (``--min-scaling`` turns the floor into an exit code,
used by the CI cluster-smoke job). ``--migrate-under-load`` live-migrates
one shard at the midpoint of the run and records whether the cutover was
bit-identical (fingerprint match) and how many buffered offers replayed.

Wire protocol: ``--protocol auto`` (default) negotiates per connection
and rides the compact binary framing when the server agrees; ``json``
pins the v1 row-of-rows path (the compatibility baseline), ``binary``
requires protocol >= 2 and fails fast otherwise. ``--protocol-sweep``
benchmarks both paths back to back and reports the binary/JSON
throughput ratio plus the scalar-vs-SoA bit-equivalence block
(:mod:`repro.experiments.bench_soa`) in one combined
``BENCH_runtime.json`` (``--min-protocol-ratio`` turns the ratio into an
exit code for CI). ``--profile`` wraps the self-hosted server's event
loop in cProfile and drops a pstats summary of the server hot loop next
to the benchmark JSON.

The synthetic streams hover below the threshold with heavy noise, so the
benchmark exercises both regimes: samplers that grow their intervals (the
cheap early-return ingest path) and occasional violations (alert path).

With ``--checkpoint`` (self-hosted mode) the run finishes by gracefully
shutting the server down — flushing a final checkpoint — and restoring it,
asserting that every task survives with its exact sampler interval,
next-due step and sample count; the result is recorded as
``checkpoint_roundtrip`` in the benchmark JSON.

The run also pulls the server's telemetry snapshot (the ``telemetry``
wire op) before and after driving load: the report carries *server-side*
offer latency quantiles (from the runtime's
``volley_offer_latency_seconds`` sketch) next to the client-side numbers,
plus the server's shed/rejected counter deltas. In self-hosted mode the
ACKed-offer accounting must agree exactly — a mismatch between the
server's ``volley_updates_offered_total`` delta and the client's summed
ACKs fails the run (exit 1), because it would mean acknowledged updates
were never counted onto a shard.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys
import threading
import time
from typing import Any

import numpy as np

from repro.config import ClusterConfig, RuntimeConfig
from repro.exceptions import ProtocolError
from repro.runtime.client import RuntimeClient
from repro.runtime.protocol import PROTOCOL_BINARY, PROTOCOL_JSON
from repro.runtime.server import RuntimeServer
from repro.service import MonitoringService

__all__ = ["main", "run_loadgen"]

_MIGRATION_SHARD = 0
"""The shard moved by ``--migrate-under-load`` (every shard carries an
even slice of the synthetic tasks, so any one is representative)."""

_THRESHOLD = 100.0


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _family_total(metrics: dict[str, Any], name: str) -> float:
    """Sum every series of a counter/gauge family in a telemetry snapshot."""
    family = metrics.get(name)
    if not family:
        return 0.0
    return float(sum(s["value"] for s in family.get("series", [])))


def _histogram_value(metrics: dict[str, Any], name: str,
                     ) -> dict[str, Any] | None:
    """The (single) series summary of a histogram family, if present."""
    family = metrics.get(name)
    if not family or not family.get("series"):
        return None
    return family["series"][0]["value"]


def _server_side_report(before: dict[str, Any], after: dict[str, Any],
                        ) -> dict[str, Any] | None:
    """Server-side latency quantiles + counter deltas over the run.

    Returns None when the server exposes no telemetry (NULL_REGISTRY
    deployment or a pre-telemetry server).
    """
    if not after:
        return None
    latency = _histogram_value(after, "volley_offer_latency_seconds")
    report: dict[str, Any] = {
        "offered_delta": int(_family_total(after,
                                           "volley_updates_offered_total")
                             - _family_total(before,
                                             "volley_updates_offered_total")),
        "shed_delta": int(_family_total(after, "volley_updates_shed_total")
                          - _family_total(before,
                                          "volley_updates_shed_total")),
        "rejected_delta": int(
            _family_total(after, "volley_updates_rejected_total")
            - _family_total(before, "volley_updates_rejected_total")),
    }
    if latency is not None:
        quantiles = latency.get("quantiles", {})
        report["offer_latency_ms"] = {
            "p50": round(1e3 * float(quantiles.get("0.5", 0.0)), 4),
            "p99": round(1e3 * float(quantiles.get("0.99", 0.0)), 4),
            "max": round(1e3 * float(latency.get("max", 0.0)), 4),
            "count": int(latency.get("count", 0)),
        }
    return report


class _SpawnedServer:
    """RuntimeServer on a background thread with its own event loop."""

    def __init__(self, config: RuntimeConfig, profile: bool = False):
        self._config = config
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self.server: RuntimeServer | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.profiler: Any = None
        self._profile = profile
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="loadgen-server")

    def _run(self) -> None:
        async def amain() -> None:
            server = RuntimeServer(self._config)
            await server.start()
            self.server = server
            self.loop = asyncio.get_running_loop()
            self._ready.set()
            await server.serve_forever()

        profiler = None
        if self._profile:
            # cProfile is per-thread; enabled here it sees exactly the
            # server's event loop — the decode/route/apply hot path.
            import cProfile
            profiler = cProfile.Profile()
            profiler.enable()
        try:
            asyncio.run(amain())
        except BaseException as exc:  # surface startup failures to caller
            self._failure = exc
            self._ready.set()
        finally:
            if profiler is not None:
                profiler.disable()
                self.profiler = profiler

    def start(self) -> int:
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._failure is not None:
            raise self._failure
        assert self.server is not None and self.server.tcp_port is not None
        return self.server.tcp_port

    def stop(self) -> None:
        if self.server is None or self.loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.server.shutdown(),
                                                  self.loop)
        future.result(timeout=30)
        self._thread.join(timeout=30)


class _SpawnedCluster:
    """ClusterServer on a background thread with its own event loop."""

    def __init__(self, config: ClusterConfig):
        self._config = config
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self.server = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="loadgen-cluster")

    def _run(self) -> None:
        from repro.cluster.server import ClusterServer

        async def amain() -> None:
            server = ClusterServer(self._config)
            await server.start()
            self.server = server
            self.loop = asyncio.get_running_loop()
            self._ready.set()
            await server.serve_forever()

        try:
            asyncio.run(amain())
        except BaseException as exc:  # surface startup failures to caller
            self._failure = exc
            self._ready.set()

    def start(self) -> int:
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._failure is not None:
            raise self._failure
        assert self.server is not None and self.server.tcp_port is not None
        return self.server.tcp_port

    def migrate_one_shard(self) -> dict[str, Any]:
        """Move one shard to the least-loaded other worker, under load."""
        assert self.server is not None and self.loop is not None
        coordinator = self.server.coordinator

        async def do() -> dict[str, Any]:
            source = coordinator.routes[_MIGRATION_SHARD].worker_id
            others = [wid for wid in sorted(coordinator.transports)
                      if wid != source and wid not in coordinator._dead]
            if not others:
                return {"ok": False, "error": "no migration target"}
            load = {wid: sum(1 for r in coordinator.routes
                             if r.worker_id == wid) for wid in others}
            target = min(others, key=lambda w: (load[w], w))
            try:
                return await coordinator.migrate(_MIGRATION_SHARD, target)
            except Exception as exc:
                return {"ok": False, "error": str(exc)}

        return asyncio.run_coroutine_threadsafe(
            do(), self.loop).result(timeout=60)

    def stop(self) -> None:
        if self.server is None or self.loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.server.shutdown(),
                                                  self.loop)
        future.result(timeout=60)
        self._thread.join(timeout=30)


def _verify_checkpoint_roundtrip(checkpoint: pathlib.Path,
                                 expected: dict[str, dict[str, Any]]) -> bool:
    """Restore the flushed checkpoint and compare every task's state."""
    from repro.runtime.checkpoint import read_checkpoint

    state = read_checkpoint(checkpoint)
    restored: dict[str, dict[str, Any]] = {}
    for snapshot in state.get("shards", []):
        service = MonitoringService.restore(snapshot)
        for name in service.task_names:
            restored[name] = {
                "interval": service.interval(name),
                "next_due": service.next_due(name),
                "samples_taken": service.samples_taken(name),
            }
    return restored == expected


def _send_updates(client: RuntimeClient, names: list[str],
                  args: argparse.Namespace, rate: float,
                  seed: int) -> dict[str, Any]:
    """One connection's send loop over its partition of the tasks."""
    rng = np.random.default_rng(seed)
    mask = (1 << 16) - 1
    values = rng.normal(getattr(args, "value_mean", 80.0),
                        getattr(args, "value_std", 18.0), mask + 1)
    steps = [0] * len(names)
    latencies: list[float] = []
    offers = accepted = shed = rejected = 0
    batch_interval = (args.batch / rate) if rate > 0 else 0.0
    value_index = 0
    task_index = 0
    started = time.perf_counter()
    deadline = started + args.duration
    next_send = started
    while True:
        now = time.perf_counter()
        if now >= deadline:
            break
        if batch_interval and now < next_send:
            time.sleep(min(next_send - now, 0.005))
            continue
        batch: list[list[Any]] = []
        for _ in range(args.batch):
            batch.append([names[task_index], steps[task_index],
                          float(values[value_index & mask])])
            steps[task_index] += 1
            value_index += 1
            task_index += 1
            if task_index == len(names):
                task_index = 0
        sent = time.perf_counter()
        reply = client.offer_batch(batch)
        latencies.append(time.perf_counter() - sent)
        offers += len(batch)
        accepted += int(reply.get("accepted", 0))
        shed += int(reply.get("shed", 0))
        rejected += int(reply.get("rejected", 0))
        if batch_interval:
            next_send += batch_interval
    return {"offers": offers, "accepted": accepted, "shed": shed,
            "rejected": rejected, "latencies": latencies,
            "elapsed": time.perf_counter() - started}


def _send_updates_binary(client: RuntimeClient, names: list[str],
                         args: argparse.Namespace, rate: float,
                         seed: int) -> dict[str, Any]:
    """One connection's vectorised send loop on the binary path.

    The caller has already negotiated protocol >= 2; this interns the
    connection's task partition (post-registration, so the server resolves
    every name onto an engine row) and then builds each batch as numpy
    columns — no per-update Python lists, no JSON encode.
    """
    rng = np.random.default_rng(seed)
    mask = (1 << 16) - 1
    values = rng.normal(getattr(args, "value_mean", 80.0),
                        getattr(args, "value_std", 18.0), mask + 1)
    indexes = np.asarray(client.intern(names), dtype=np.uint32)
    count = len(names)
    lane = np.arange(args.batch, dtype=np.int64)
    # Round-robin over a cyclic task order: element i of any batch is the
    # (i // count)-th repeat of its task within that batch, which makes
    # the per-task step columns a closed form instead of a Python loop.
    occurrence = lane // count
    full_cycles, remainder = divmod(args.batch, count)
    steps = np.zeros(count, dtype=np.int64)
    latencies: list[float] = []
    offers = accepted = shed = rejected = 0
    batch_interval = (args.batch / rate) if rate > 0 else 0.0
    cursor = 0
    value_cursor = 0
    started = time.perf_counter()
    deadline = started + args.duration
    next_send = started
    while True:
        now = time.perf_counter()
        if now >= deadline:
            break
        if batch_interval and now < next_send:
            time.sleep(min(next_send - now, 0.005))
            continue
        positions = (cursor + lane) % count
        sent = time.perf_counter()
        reply = client.offer_columns(indexes[positions],
                                     steps[positions] + occurrence,
                                     values[(value_cursor + lane) & mask])
        latencies.append(time.perf_counter() - sent)
        offers += args.batch
        accepted += reply.accepted
        shed += reply.shed
        rejected += reply.rejected
        steps += full_cycles
        if remainder:
            steps[(cursor + np.arange(remainder)) % count] += 1
        cursor = (cursor + args.batch) % count
        value_cursor += args.batch
        if batch_interval:
            next_send += batch_interval
    return {"offers": offers, "accepted": accepted, "shed": shed,
            "rejected": rejected, "latencies": latencies,
            "elapsed": time.perf_counter() - started}


def _dump_profile(profiler: Any, path: pathlib.Path) -> None:
    """Write a pstats text summary of the server hot loop."""
    import io
    import pstats

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(40)
    stats.sort_stats("tottime").print_stats(25)
    path.write_text(buffer.getvalue(), encoding="utf-8")


def _run_once(args: argparse.Namespace,
              out: pathlib.Path | None) -> dict[str, Any]:
    """One benchmark run (single-process or cluster); returns the report."""
    spawned: _SpawnedServer | None = None
    cluster: _SpawnedCluster | None = None
    cluster_workers = int(getattr(args, "cluster_workers", 0) or 0)
    if args.connect is None and args.unix is None:
        if cluster_workers:
            config = ClusterConfig(
                workers=cluster_workers,
                shards=max(args.shards, cluster_workers),
                backend=args.cluster_backend,
                queue_depth=args.queue_depth,
                max_batch=max(8192, args.batch), port=0)
            cluster = _SpawnedCluster(config)
            port = cluster.start()
            host, unix = "127.0.0.1", None
        else:
            checkpoint = args.checkpoint
            config = RuntimeConfig(shards=args.shards,
                                   queue_depth=args.queue_depth,
                                   max_batch=max(8192, args.batch),
                                   port=0, checkpoint_path=checkpoint,
                                   checkpoint_interval=3600.0)
            spawned = _SpawnedServer(
                config, profile=bool(getattr(args, "profile", False)))
            port = spawned.start()
            host, unix = "127.0.0.1", None
    elif args.unix is not None:
        host, port, unix = "", 0, args.unix
    else:
        host, _, port_text = args.connect.partition(":")
        port, unix = int(port_text), None

    names = [f"lg-{i:04d}" for i in range(args.tasks)]

    client = RuntimeClient(host=host, port=port, unix_socket=unix)
    client.connect()
    for name in names:
        client.register_task(name, _THRESHOLD,
                             error_allowance=args.error_allowance,
                             max_interval=args.max_interval)

    use_triggers = bool(getattr(args, "triggers", False))
    guarded: list[str] = []
    if use_triggers:
        if args.tasks < 2:
            raise SystemExit("--triggers needs at least 2 tasks")
        # The first task is the cheap edge source; every odd-indexed task
        # rides as an expensive guarded target. The elevation level sits
        # at the violation threshold, so the noisy healthy streams spend
        # most of the run disarmed and the channel's suspension
        # accounting has something to show.
        guarded = names[1::2]
        for target in guarded:
            client.install_trigger_plan({
                "target": target, "trigger": names[0],
                "elevation_level": _THRESHOLD,
                "suspend_interval": 10, "hysteresis": 0.1, "min_hold": 3})

    protocol_choice = str(getattr(args, "protocol", "auto") or "auto")
    negotiated = PROTOCOL_JSON
    if protocol_choice != "json":
        negotiated = client.negotiate()
        if protocol_choice == "binary" and negotiated < PROTOCOL_BINARY:
            client.close()
            if spawned is not None:
                spawned.stop()
            if cluster is not None:
                cluster.stop()
            raise ProtocolError(
                f"--protocol binary requested but the server only speaks "
                f"protocol {negotiated}")
    use_binary = negotiated >= PROTOCOL_BINARY
    send = _send_updates_binary if use_binary else _send_updates
    if getattr(args, "profile", False) and spawned is None:
        print("[loadgen] note: --profile only instruments the "
              "self-hosted single-process server; ignoring", flush=True)

    def _telemetry_metrics() -> dict[str, Any]:
        from repro.exceptions import ProtocolError
        try:
            return dict(client.telemetry().get("metrics", {}))
        except ProtocolError:
            return {}  # pre-telemetry server

    metrics_before = _telemetry_metrics()

    migration_holder: dict[str, Any] = {}
    migration_timer: threading.Timer | None = None
    if (cluster is not None and cluster_workers > 1
            and getattr(args, "migrate_under_load", False)):
        # Move one shard at the midpoint of the run: the cutover must be
        # invisible to the senders (buffered offers replay after it).
        migration_timer = threading.Timer(
            args.duration / 2.0,
            lambda: migration_holder.update(cluster.migrate_one_shard()))
        migration_timer.start()

    connections = max(1, int(getattr(args, "connections", 1) or 1))
    partitions = [names[i::connections] for i in range(connections)]
    per_conn_rate = args.rate / connections if args.rate > 0 else 0.0
    if connections == 1:
        results = [send(client, names, args, args.rate, args.seed)]
    else:
        senders = []
        for i in range(connections):
            extra = RuntimeClient(host=host, port=port, unix_socket=unix)
            extra.connect()
            if use_binary and extra.negotiate() < PROTOCOL_BINARY:
                raise ProtocolError(
                    "server downgraded a sender connection to JSON "
                    "mid-benchmark")
            senders.append(extra)
        results: list[dict[str, Any] | None] = [None] * connections
        threads = []
        for i, (sender, part) in enumerate(zip(senders, partitions)):
            def run(i=i, sender=sender, part=part):
                results[i] = send(sender, part, args,
                                  per_conn_rate, args.seed + i)
            thread = threading.Thread(target=run,
                                      name=f"loadgen-send-{i}")
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()
        for sender in senders:
            sender.close()
    if migration_timer is not None:
        migration_timer.join(timeout=90)

    latencies = sorted(lat for r in results for lat in r["latencies"])
    offers = sum(r["offers"] for r in results)
    accepted = sum(r["accepted"] for r in results)
    shed = sum(r["shed"] for r in results)
    rejected = sum(r["rejected"] for r in results)
    started = time.perf_counter() - max(r["elapsed"] for r in results)
    elapsed = max(r["elapsed"] for r in results)

    # Wait for the shards to finish applying what was accepted, so the
    # reported apply throughput covers the full pipeline.
    drain_deadline = time.monotonic() + 30
    stats = client.stats()
    while (stats["totals"]["applied"] + stats["totals"]["rejected"]
           < accepted and time.monotonic() < drain_deadline):
        time.sleep(0.02)
        stats = client.stats()
    drained = time.perf_counter() - started

    metrics_after = _telemetry_metrics()
    server_side = _server_side_report(metrics_before, metrics_after)
    counters_consistent: bool | None = None
    if server_side is not None and spawned is not None:
        # Exclusive server: the ACKed-offer accounting must line up
        # exactly with the server's own counters.
        counters_consistent = (
            server_side["offered_delta"] == accepted
            and server_side["shed_delta"] == shed)
    elif server_side is not None and cluster is not None:
        # Exclusive cluster: every ACKed offer must land on a shard
        # queue exactly once (migration-buffer replays included). The
        # shed deltas are not compared — replay retries legitimately
        # bump worker-side shed counters with no client-visible shed.
        counters_consistent = server_side["offered_delta"] == accepted

    trigger_report: dict[str, Any] | None = None
    if use_triggers:
        reply = client.trigger_plans()
        trigger_report = {
            "plans": len(reply.get("plans", [])),
            "guarded_tasks": len(guarded),
            "edges": dict(reply.get("edges", {})),
            "suspensions": int(reply.get("suspensions", 0)),
            "probe_collections_saved": float(
                reply.get("probe_cost_saved", 0.0)),
        }

    expected: dict[str, dict[str, Any]] = {}
    if spawned is not None and args.checkpoint is not None:
        for name in names:
            info = client.task_info(name)
            expected[name] = {
                "interval": info["interval"],
                "next_due": info["next_due"],
                "samples_taken": info["samples_taken"],
            }
    client.close()

    checkpoint_roundtrip: bool | None = None
    profile_path: str | None = None
    if spawned is not None:
        spawned.stop()  # graceful: drains queues, flushes final checkpoint
        if args.checkpoint is not None:
            checkpoint_roundtrip = _verify_checkpoint_roundtrip(
                args.checkpoint, expected)
        if spawned.profiler is not None:
            target = pathlib.Path(args.out)
            profile_file = target.with_name(
                f"{target.stem}-{'binary' if use_binary else 'json'}"
                f"-profile.txt")
            _dump_profile(spawned.profiler, profile_file)
            profile_path = str(profile_file)
            print(f"[loadgen] server profile -> {profile_file}",
                  flush=True)
    if cluster is not None:
        cluster.stop()

    totals = stats["totals"]
    report = {
        "tasks": args.tasks,
        "shards": (max(args.shards, cluster_workers)
                   if spawned is not None or cluster is not None
                   else stats.get("shards") and len(stats["shards"])),
        "cluster": ({"workers": cluster_workers,
                     "backend": args.cluster_backend}
                    if cluster is not None else None),
        "connections": connections,
        "protocol": negotiated,
        "batch": args.batch,
        "rate_target": args.rate,
        "duration_s": round(elapsed, 4),
        "offers": offers,
        "accepted": accepted,
        "shed": shed,
        "rejected": rejected,
        "applied": totals["applied"],
        "consumed": totals["consumed"],
        "alerts": totals["alerts"],
        "offers_per_sec": round(accepted / elapsed) if elapsed else 0,
        "applied_per_sec": (round(totals["applied"] / drained)
                            if drained else 0),
        "latency_ms": {
            "mean": round(1e3 * sum(latencies) / len(latencies), 4)
                    if latencies else 0.0,
            "p50": round(1e3 * _percentile(latencies, 0.50), 4),
            "p99": round(1e3 * _percentile(latencies, 0.99), 4),
            "max": round(1e3 * latencies[-1], 4) if latencies else 0.0,
        },
        "checkpoint_roundtrip": checkpoint_roundtrip,
        "profile": profile_path,
        "server": server_side,
        "counters_consistent": counters_consistent,
        "migration": (dict(migration_holder)
                      if migration_timer is not None else None),
        "triggers": trigger_report,
    }
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n",
                       encoding="utf-8")

    where = (f"{cluster_workers}-worker {args.cluster_backend} cluster"
             if cluster is not None else "server")
    where += " [binary]" if use_binary else " [json]"
    lat = report["latency_ms"]
    print(f"[loadgen] {where}: {accepted} offers in {elapsed:.2f}s = "
          f"{report['offers_per_sec']} offers/s "
          f"(applied {report['applied_per_sec']}/s); "
          f"p50={lat['p50']}ms p99={lat['p99']}ms; "
          f"shed={shed} rejected={rejected} alerts={report['alerts']}"
          + (f"; -> {out}" if out is not None else ""), flush=True)
    migration = report["migration"]
    if migration is not None:
        print(f"[loadgen] migration under load: "
              f"{'ok' if migration.get('ok') else 'FAILED'} "
              f"shard={migration.get('shard')} "
              f"{migration.get('from')}->{migration.get('to')} "
              f"replayed={migration.get('replayed')} "
              f"fingerprint_match={migration.get('fingerprint_match')}",
              flush=True)
    if trigger_report is not None:
        print(f"[loadgen] triggers: {trigger_report['plans']} plans over "
              f"{trigger_report['guarded_tasks']} guarded tasks; "
              f"edges={trigger_report['edges']} "
              f"suspensions={trigger_report['suspensions']} "
              f"probe_collections_saved="
              f"{trigger_report['probe_collections_saved']}", flush=True)
    if server_side is not None and "offer_latency_ms" in server_side:
        srv = server_side["offer_latency_ms"]
        print(f"[loadgen] server-side offer latency: p50={srv['p50']}ms "
              f"p99={srv['p99']}ms over {srv['count']} frames; "
              f"offered_delta={server_side['offered_delta']} "
              f"shed_delta={server_side['shed_delta']}", flush=True)
    if counters_consistent is not None:
        print(f"[loadgen] counter consistency: "
              f"{'ok' if counters_consistent else 'MISMATCH'}", flush=True)
    if checkpoint_roundtrip is not None:
        print(f"[loadgen] checkpoint roundtrip: "
              f"{'ok' if checkpoint_roundtrip else 'MISMATCH'}", flush=True)
    return report


def _run_protocol_sweep(args: argparse.Namespace,
                        out: pathlib.Path) -> dict[str, Any]:
    """JSON run, then binary run, then the combined comparison report.

    The report carries both runs in full, the binary/JSON offers-per-sec
    ratio (the number the CI floor gates on) and the scalar-vs-SoA
    bit-equivalence block so one artifact answers both "how much faster"
    and "still exactly the paper's sampler".
    """
    runs: dict[str, dict[str, Any]] = {}
    for choice in ("json", "binary"):
        sub = argparse.Namespace(**vars(args))
        sub.protocol = choice
        sub.protocol_sweep = False
        sub.checkpoint = None
        # With --profile both runs dump (the file is named per protocol),
        # which makes the JSON-vs-binary hot-loop comparison one diff.
        sub.profile = bool(getattr(args, "profile", False))
        print(f"[loadgen] protocol sweep: {choice} run, "
              f"{args.duration}s...", flush=True)
        runs[choice] = _run_once(sub, None)
    ratio = (runs["binary"]["offers_per_sec"]
             / max(1, runs["json"]["offers_per_sec"]))

    soa_points = int(getattr(args, "soa_points", 0) or 0)
    soa_block: dict[str, Any] | None = None
    if soa_points > 0:
        from repro.experiments.bench_soa import equivalence_report
        print(f"[loadgen] scalar-vs-SoA equivalence: {soa_points} points "
              f"per estimator...", flush=True)
        soa_block = equivalence_report(points=soa_points,
                                       tasks=min(args.tasks, 1024),
                                       seed=args.seed)

    report = {
        "mode": "protocol-sweep",
        "protocol": runs["binary"]["protocol"],
        "tasks": args.tasks,
        "batch": args.batch,
        "connections": max(1, int(getattr(args, "connections", 1) or 1)),
        "duration_s_per_run": args.duration,
        "json": runs["json"],
        "binary": runs["binary"],
        "offers_per_sec": runs["binary"]["offers_per_sec"],
        "binary_vs_json": round(ratio, 3),
        "soa_equivalence": soa_block,
        "counters_consistent": all(
            run["counters_consistent"] is not False
            for run in runs.values()),
    }
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    soa_text = ""
    if soa_block is not None:
        soa_text = (", soa=bit-identical" if soa_block["identical"]
                    else ", soa=DIVERGED")
    print(f"[loadgen] protocol sweep: json "
          f"{runs['json']['offers_per_sec']}/s, binary "
          f"{runs['binary']['offers_per_sec']}/s "
          f"({report['binary_vs_json']}x{soa_text}); -> {out}", flush=True)
    return report


def run_loadgen(args: argparse.Namespace) -> dict[str, Any]:
    """Execute the benchmark; returns the report dict (also written out).

    With ``--cluster-sweep`` the benchmark runs once per worker count and
    the report is a scaling table (offers/s per fleet size, normalised to
    the single-worker run) instead of a single run's numbers.
    """
    out = pathlib.Path(args.out)
    if getattr(args, "protocol_sweep", False):
        return _run_protocol_sweep(args, out)
    sweep_spec = getattr(args, "cluster_sweep", None)
    if not sweep_spec:
        return _run_once(args, out)

    counts = [int(part) for part in str(sweep_spec).split(",")
              if part.strip()]
    if not counts:
        raise ValueError(f"empty --cluster-sweep {sweep_spec!r}")
    runs: list[dict[str, Any]] = []
    for workers in counts:
        sub = argparse.Namespace(**vars(args))
        sub.cluster_workers = workers
        sub.cluster_sweep = None
        sub.checkpoint = None
        print(f"[loadgen] sweep: {workers} worker(s), "
              f"{args.duration}s...", flush=True)
        runs.append(_run_once(sub, None))
    base = runs[0]["offers_per_sec"] or 1
    sweep = [{
        "workers": workers,
        "offers_per_sec": run["offers_per_sec"],
        "applied_per_sec": run["applied_per_sec"],
        "latency_p99_ms": run["latency_ms"]["p99"],
        "scaling_vs_single": round(run["offers_per_sec"] / base, 3),
        "counters_consistent": run["counters_consistent"],
    } for workers, run in zip(counts, runs)]
    import os
    report = {
        "mode": "cluster-sweep",
        "backend": args.cluster_backend,
        "cpu_count": os.cpu_count(),
        "tasks": args.tasks,
        "batch": args.batch,
        "connections": max(1, int(args.connections or 1)),
        "duration_s_per_run": args.duration,
        "sweep": sweep,
        "scaling": sweep[-1]["scaling_vs_single"],
        "counters_consistent": all(
            entry["counters_consistent"] is not False for entry in sweep),
        "migration": runs[-1].get("migration"),
    }
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    table = ", ".join(f"{e['workers']}w={e['offers_per_sec']}/s "
                      f"({e['scaling_vs_single']}x)" for e in sweep)
    print(f"[loadgen] sweep: {table}; -> {out}", flush=True)
    return report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.loadgen",
        description="Benchmark the ingestion runtime with synthetic tasks; "
                    "writes throughput and latency percentiles to a JSON "
                    "report.")
    parser.add_argument("--tasks", type=int, default=64,
                        help="synthetic tasks to register (default 64)")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="send duration in seconds (default 5)")
    parser.add_argument("--batch", type=int, default=512,
                        help="updates per offer_batch frame (default 512)")
    parser.add_argument("--rate", type=float, default=0.0,
                        help="target offers/sec; 0 = as fast as possible")
    parser.add_argument("--shards", type=int, default=4,
                        help="shards for the self-hosted server")
    parser.add_argument("--queue-depth", type=int, default=1024)
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="drive an existing server instead of "
                             "self-hosting")
    parser.add_argument("--unix", type=pathlib.Path, default=None,
                        help="drive an existing server on a unix socket")
    parser.add_argument("--checkpoint", type=pathlib.Path, default=None,
                        help="(self-hosted) checkpoint file; verifies a "
                             "full shutdown->restore roundtrip")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("BENCH_runtime.json"))
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--protocol", default="auto",
                        choices=("auto", "json", "binary"),
                        help="wire protocol: auto negotiates per "
                             "connection (default), json pins the v1 "
                             "baseline, binary requires protocol >= 2")
    parser.add_argument("--protocol-sweep", action="store_true",
                        help="benchmark the json and binary paths back "
                             "to back and report the throughput ratio "
                             "plus the scalar-vs-SoA equivalence block")
    parser.add_argument("--min-protocol-ratio", type=float, default=None,
                        help="(with --protocol-sweep) exit non-zero if "
                             "binary offers/s is below this multiple of "
                             "the json run's")
    parser.add_argument("--soa-points", type=int, default=1_000_000,
                        help="(with --protocol-sweep) stream length per "
                             "estimator for the scalar-vs-SoA "
                             "bit-equivalence check (0 disables)")
    parser.add_argument("--profile", action="store_true",
                        help="(self-hosted single-process) cProfile the "
                             "server event loop and write a pstats "
                             "summary next to --out")
    parser.add_argument("--error-allowance", type=float, default=0.01)
    parser.add_argument("--max-interval", type=int, default=10)
    parser.add_argument("--value-mean", type=float, default=80.0,
                        help="mean of the synthetic value stream "
                             "(default 80; threshold is 100)")
    parser.add_argument("--value-std", type=float, default=18.0,
                        help="stddev of the synthetic value stream "
                             "(default 18 = heavy noise, ~13%% violation "
                             "rate; small values benchmark the calm "
                             "rare-violation regime the paper assumes)")
    parser.add_argument("--min-throughput", type=float, default=None,
                        help="exit non-zero below this offers/sec floor")
    parser.add_argument("--cluster-workers", type=int, default=0,
                        help="self-host a repro.cluster fleet with this "
                             "many workers instead of a single-process "
                             "server (0 = single-process)")
    parser.add_argument("--cluster-backend", default="subprocess",
                        choices=("inproc", "subprocess"),
                        help="cluster transport backend (default "
                             "subprocess: one worker process per core)")
    parser.add_argument("--connections", type=int, default=1,
                        help="concurrent sender connections, each driving "
                             "an even partition of the tasks (default 1)")
    parser.add_argument("--cluster-sweep", default=None, metavar="N,N,...",
                        help="run once per worker count (e.g. 1,2,4,8) and "
                             "report a scaling table")
    parser.add_argument("--min-scaling", type=float, default=None,
                        help="(with --cluster-sweep) exit non-zero if the "
                             "largest fleet's offers/s is below this "
                             "multiple of the single-worker run's")
    parser.add_argument("--migrate-under-load", action="store_true",
                        help="(cluster) migrate one shard at the midpoint "
                             "of the run and record the result")
    parser.add_argument("--triggers", action="store_true",
                        help="install a correlated-monitoring guard (the "
                             "first task triggers every odd-indexed task, "
                             "repro.triggers) and report the probe "
                             "collections the channel saved")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.runtime.loadgen``)."""
    args = _build_parser().parse_args(argv)
    report = run_loadgen(args)
    if report.get("checkpoint_roundtrip") is False:
        print("[loadgen] FAIL: checkpoint did not round-trip",
              file=sys.stderr, flush=True)
        return 1
    if report.get("counters_consistent") is False:
        print("[loadgen] FAIL: server-side counters disagree with "
              "client-side ACK accounting", file=sys.stderr, flush=True)
        return 1
    if (args.min_throughput is not None
            and report.get("offers_per_sec") is not None
            and report["offers_per_sec"] < args.min_throughput):
        print(f"[loadgen] FAIL: {report['offers_per_sec']} offers/s below "
              f"floor {args.min_throughput}", file=sys.stderr, flush=True)
        return 1
    if (args.min_protocol_ratio is not None
            and report.get("binary_vs_json") is not None
            and report["binary_vs_json"] < args.min_protocol_ratio):
        print(f"[loadgen] FAIL: binary/json ratio "
              f"{report['binary_vs_json']}x below floor "
              f"{args.min_protocol_ratio}x", file=sys.stderr, flush=True)
        return 1
    soa_block = report.get("soa_equivalence")
    if soa_block is not None and not soa_block.get("identical"):
        print("[loadgen] FAIL: SoA engine diverged from the scalar "
              "sampler", file=sys.stderr, flush=True)
        return 1
    migration = report.get("migration")
    if migration is not None and not (migration.get("ok")
                                      and migration.get("fingerprint_match")):
        print(f"[loadgen] FAIL: migration under load did not complete "
              f"bit-identically: {migration}", file=sys.stderr, flush=True)
        return 1
    if (args.min_scaling is not None
            and report.get("scaling") is not None
            and report["scaling"] < args.min_scaling):
        print(f"[loadgen] FAIL: scaling {report['scaling']}x below floor "
              f"{args.min_scaling}x", file=sys.stderr, flush=True)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
