"""Length-prefixed JSON wire protocol for the ingestion runtime.

Frames are ``<4-byte big-endian length><UTF-8 JSON object>``. JSON keeps
the protocol debuggable (``socat`` + a hexdump is a usable client) and the
length prefix keeps parsing trivial and O(frame); binary encodings are a
drop-in swap later because everything above this module only sees dicts.

Requests are ``{"op": <name>, ...}``; replies are ``{"ok": true, ...}`` or
``{"ok": false, "error": <message>, "code": <machine-readable>}``. The
module offers both asyncio (:func:`read_frame`) and blocking
(:func:`read_frame_blocking`) readers so the sync client shares the exact
framing code path with the server.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, BinaryIO

from repro.exceptions import ProtocolError

__all__ = ["MAX_FRAME", "encode_frame", "read_frame", "read_frame_blocking"]

_HEADER = struct.Struct(">I")

MAX_FRAME = 16 * 1024 * 1024
"""Upper bound on frame body size; larger frames are a protocol error."""


def encode_frame(payload: dict[str, Any]) -> bytes:
    """Serialise one message to its wire form (header + JSON body)."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame payload must be a dict, got "
                            f"{type(payload).__name__}")
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME={MAX_FRAME}")
    return _HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> dict[str, Any]:
    try:
        payload = json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got "
            f"{type(payload).__name__}")
    return payload


def _check_length(length: int) -> None:
    if length > MAX_FRAME:
        raise ProtocolError(
            f"peer announced a {length}-byte frame; limit is {MAX_FRAME}")


async def read_frame(reader: asyncio.StreamReader,
                     fault_hook: Any = None) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF (peer closed between frames).

    Raises :class:`~repro.exceptions.ProtocolError` on truncation mid-frame,
    oversized frames, or non-object bodies.

    Args:
        reader: the connection's stream reader.
        fault_hook: chaos-testing seam (a ``repro.testkit`` ``FaultHook``);
            when enabled it may mutate the body after a complete read —
            truncation/corruption then surfaces exactly as the matching
            wire failure would, and a ``None`` body reads as a peer that
            vanished between frames.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ProtocolError("connection closed mid-header") from None
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    if fault_hook is not None and fault_hook.enabled:
        mutated = fault_hook.frame_body(body)
        if mutated is None:
            return None
        if len(mutated) < length:
            raise ProtocolError("connection closed mid-frame") from None
        body = mutated
    return _decode_body(body)


def read_frame_blocking(stream: BinaryIO) -> dict[str, Any] | None:
    """Blocking twin of :func:`read_frame` over a file-like byte stream."""
    header = _read_exactly(stream, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    body = _read_exactly(stream, length, allow_eof=False)
    assert body is not None
    return _decode_body(body)


def _read_exactly(stream: BinaryIO, n: int,
                  allow_eof: bool) -> bytes | None:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if allow_eof and remaining == n:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
