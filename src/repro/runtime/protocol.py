"""Wire protocol for the ingestion runtime: JSON frames + binary columns.

The baseline framing is ``<4-byte big-endian length><UTF-8 JSON object>``.
JSON keeps the protocol debuggable (``socat`` + a hexdump is a usable
client) and the length prefix keeps parsing trivial and O(frame).

Protocol version 2 adds a *binary* frame class for the hot offer path.
The top bit of the length header marks a binary body (``MAX_FRAME`` fits
comfortably in 31 bits, so the bit is free and version-1 peers that only
ever see JSON frames observe byte-identical wire traffic). Binary bodies
are struct-packed little-endian column blocks that decode straight into
numpy arrays — no per-offer Python objects on either side:

``OFFER`` (kind 0x01)
    ``<u8 kind><3 pad><u32 count>`` then ``count`` × ``<u4`` task index,
    ``count`` × ``<i8`` step, ``count`` × ``<f8`` value. Task indexes
    refer to a per-connection interning table built with the JSON
    ``intern`` op, so names cross the wire once per connection.

``OFFER_REPLY`` (kind 0x02)
    ``<u8 kind><u8 flags><u16 pad><u32 accepted><u32 shed><u32 rejected>
    <u32 retry_after_ms>``; flag bit 0 = backpressure.

``SHARD_OFFER`` (kind 0x03)
    Pre-routed fan-out for the cluster layer: ``<u8 kind><3 pad>
    <u32 nsegs>`` then ``nsegs`` × ``<u4 shard><u4 count>`` followed by
    the concatenated OFFER-style columns for all segments in order.

Negotiation is in-band and backwards transparent: a client sends the
JSON op ``hello`` announcing ``max_protocol``; a version-1 server answers
``unknown-op`` and the client simply stays on JSON. All control ops stay
JSON at every version — binary is only for the offer fast path.

Requests are ``{"op": <name>, ...}``; replies are ``{"ok": true, ...}`` or
``{"ok": false, "error": <message>, "code": <machine-readable>}``. The
module offers both asyncio (:func:`read_frame`) and blocking
(:func:`read_frame_blocking`) readers so the sync client shares the exact
framing code path with the server, including the chaos-testing
``fault_hook`` seam.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, BinaryIO, Sequence

import numpy as np

from repro.exceptions import ProtocolError

__all__ = [
    "MAX_FRAME",
    "PROTOCOL_JSON",
    "PROTOCOL_BINARY",
    "PROTOCOL_VERSION",
    "OfferColumns",
    "OfferReply",
    "ShardOffer",
    "encode_frame",
    "encode_frame_parts",
    "encode_offer_columns",
    "encode_offer_reply",
    "encode_shard_offer",
    "read_frame",
    "read_frame_blocking",
]

_HEADER = struct.Struct(">I")

MAX_FRAME = 16 * 1024 * 1024
"""Upper bound on frame body size; larger frames are a protocol error."""

PROTOCOL_JSON = 1
"""Protocol version 1: JSON frames only."""

PROTOCOL_BINARY = 2
"""Protocol version 2: JSON control plane + binary offer frames."""

PROTOCOL_VERSION = PROTOCOL_BINARY
"""Highest protocol version this build speaks."""

_BINARY_FLAG = 0x8000_0000
_LENGTH_MASK = 0x7FFF_FFFF

KIND_OFFER = 0x01
KIND_OFFER_REPLY = 0x02
KIND_SHARD_OFFER = 0x03

_OFFER_HEAD = struct.Struct("<BxxxI")          # kind, pad, count
_REPLY_STRUCT = struct.Struct("<BBxxIIII")     # kind, flags, a, s, r, retry
_SEG_STRUCT = struct.Struct("<II")             # shard id, count

_FLAG_BACKPRESSURE = 0x01

_U4 = np.dtype("<u4")
_I8 = np.dtype("<i8")
_F8 = np.dtype("<f8")


class OfferColumns:
    """Decoded binary offer batch: parallel columns, one row per offer."""

    __slots__ = ("task_idx", "steps", "values")

    def __init__(self, task_idx: np.ndarray, steps: np.ndarray,
                 values: np.ndarray) -> None:
        self.task_idx = task_idx
        self.steps = steps
        self.values = values

    def __len__(self) -> int:
        return len(self.task_idx)


class OfferReply:
    """Decoded binary offer reply (counts + backpressure signal)."""

    __slots__ = ("accepted", "shed", "rejected", "backpressure",
                 "retry_after_ms")

    def __init__(self, accepted: int, shed: int, rejected: int,
                 backpressure: bool, retry_after_ms: int) -> None:
        self.accepted = accepted
        self.shed = shed
        self.rejected = rejected
        self.backpressure = backpressure
        self.retry_after_ms = retry_after_ms


class ShardOffer:
    """Decoded pre-routed offer fan-out: ``(shard, columns)`` segments."""

    __slots__ = ("segments",)

    def __init__(self, segments: list[tuple[int, OfferColumns]]) -> None:
        self.segments = segments

    def __len__(self) -> int:
        return sum(len(cols) for _, cols in self.segments)


def encode_frame_parts(payload: dict[str, Any]) -> tuple[bytes, bytes]:
    """Serialise one JSON message as a writev-ready ``(header, body)`` pair.

    Avoids the header+body concatenation copy of :func:`encode_frame` on
    the send path — pass both parts to ``writer.writelines`` /
    ``socket.sendmsg`` instead of joining them.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame payload must be a dict, got "
                            f"{type(payload).__name__}")
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME={MAX_FRAME}")
    return _HEADER.pack(len(body)), body


def encode_frame(payload: dict[str, Any]) -> bytes:
    """Serialise one message to its contiguous wire form (header + body)."""
    header, body = encode_frame_parts(payload)
    return header + body


def _binary_parts(body: bytes) -> tuple[bytes, bytes]:
    if len(body) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME={MAX_FRAME}")
    return _HEADER.pack(len(body) | _BINARY_FLAG), body


def _as_column(data: Any, dtype: np.dtype, name: str) -> np.ndarray:
    arr = np.ascontiguousarray(data, dtype=dtype)
    if arr.ndim != 1:
        raise ProtocolError(f"{name} column must be one-dimensional")
    return arr


def encode_offer_columns(task_idx: Any, steps: Any,
                         values: Any) -> tuple[bytes, bytes]:
    """Encode an offer batch as a binary ``(header, body)`` frame pair."""
    idx = _as_column(task_idx, _U4, "task_idx")
    stp = _as_column(steps, _I8, "steps")
    val = _as_column(values, _F8, "values")
    if not (len(idx) == len(stp) == len(val)):
        raise ProtocolError("offer columns must share one length")
    body = b"".join((_OFFER_HEAD.pack(KIND_OFFER, len(idx)),
                     idx.tobytes(), stp.tobytes(), val.tobytes()))
    return _binary_parts(body)


def encode_offer_reply(accepted: int, shed: int, rejected: int,
                       backpressure: bool,
                       retry_after_ms: int) -> tuple[bytes, bytes]:
    """Encode a binary reply to a binary offer batch."""
    flags = _FLAG_BACKPRESSURE if backpressure else 0
    body = _REPLY_STRUCT.pack(KIND_OFFER_REPLY, flags, accepted, shed,
                              rejected, max(0, int(retry_after_ms)))
    return _binary_parts(body)


def encode_shard_offer(
        segments: Sequence[tuple[int, Any, Any, Any]]) -> tuple[bytes, bytes]:
    """Encode pre-routed ``(shard, task_idx, steps, values)`` segments."""
    parts = [_OFFER_HEAD.pack(KIND_SHARD_OFFER, len(segments))]
    columns: list[bytes] = []
    for shard, task_idx, steps, values in segments:
        idx = _as_column(task_idx, _U4, "task_idx")
        stp = _as_column(steps, _I8, "steps")
        val = _as_column(values, _F8, "values")
        if not (len(idx) == len(stp) == len(val)):
            raise ProtocolError("offer columns must share one length")
        parts.append(_SEG_STRUCT.pack(shard, len(idx)))
        columns.extend((idx.tobytes(), stp.tobytes(), val.tobytes()))
    body = b"".join(parts + columns)
    return _binary_parts(body)


def _decode_columns(body: bytes, offset: int,
                    count: int) -> tuple[OfferColumns, int]:
    need = offset + count * (4 + 8 + 8)
    if len(body) < need:
        raise ProtocolError("binary offer frame truncated")
    idx = np.frombuffer(body, dtype=_U4, count=count, offset=offset)
    offset += count * 4
    stp = np.frombuffer(body, dtype=_I8, count=count, offset=offset)
    offset += count * 8
    val = np.frombuffer(body, dtype=_F8, count=count, offset=offset)
    offset += count * 8
    return OfferColumns(idx, stp, val), offset


def decode_binary(body: bytes) -> OfferColumns | OfferReply | ShardOffer:
    """Decode a binary frame body; raises ProtocolError on malformed input."""
    if not body:
        raise ProtocolError("empty binary frame")
    kind = body[0]
    if kind == KIND_OFFER:
        if len(body) < _OFFER_HEAD.size:
            raise ProtocolError("binary offer frame truncated")
        _, count = _OFFER_HEAD.unpack_from(body)
        cols, end = _decode_columns(body, _OFFER_HEAD.size, count)
        if end != len(body):
            raise ProtocolError("binary offer frame has trailing bytes")
        return cols
    if kind == KIND_OFFER_REPLY:
        if len(body) != _REPLY_STRUCT.size:
            raise ProtocolError("binary reply frame has wrong size")
        _, flags, accepted, shed, rejected, retry = _REPLY_STRUCT.unpack(body)
        return OfferReply(accepted, shed, rejected,
                          bool(flags & _FLAG_BACKPRESSURE), retry)
    if kind == KIND_SHARD_OFFER:
        if len(body) < _OFFER_HEAD.size:
            raise ProtocolError("binary shard frame truncated")
        _, nsegs = _OFFER_HEAD.unpack_from(body)
        offset = _OFFER_HEAD.size
        if len(body) < offset + nsegs * _SEG_STRUCT.size:
            raise ProtocolError("binary shard frame truncated")
        heads = [_SEG_STRUCT.unpack_from(body, offset + i * _SEG_STRUCT.size)
                 for i in range(nsegs)]
        offset += nsegs * _SEG_STRUCT.size
        segments: list[tuple[int, OfferColumns]] = []
        for shard, count in heads:
            cols, offset = _decode_columns(body, offset, count)
            segments.append((shard, cols))
        if offset != len(body):
            raise ProtocolError("binary shard frame has trailing bytes")
        return ShardOffer(segments)
    raise ProtocolError(f"unknown binary frame kind 0x{kind:02x}")


def _decode_body(body: bytes) -> dict[str, Any]:
    try:
        payload = json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got "
            f"{type(payload).__name__}")
    return payload


def _split_header(raw: int) -> tuple[int, bool]:
    length = raw & _LENGTH_MASK
    if length > MAX_FRAME:
        raise ProtocolError(
            f"peer announced a {length}-byte frame; limit is {MAX_FRAME}")
    return length, bool(raw & _BINARY_FLAG)


def _finish_body(body: bytes, length: int, binary: bool,
                 fault_hook: Any) -> Any:
    if fault_hook is not None and fault_hook.enabled:
        mutated = fault_hook.frame_body(body)
        if mutated is None:
            return None
        if len(mutated) < length:
            raise ProtocolError("connection closed mid-frame") from None
        body = mutated
    if binary:
        return decode_binary(body)
    return _decode_body(body)


async def read_frame(reader: asyncio.StreamReader,
                     fault_hook: Any = None) -> Any:
    """Read one frame; ``None`` on clean EOF (peer closed between frames).

    Returns a ``dict`` for JSON frames or an :class:`OfferColumns` /
    :class:`OfferReply` / :class:`ShardOffer` for binary frames (which
    only arrive after the peer negotiated protocol ≥ 2). Raises
    :class:`~repro.exceptions.ProtocolError` on truncation mid-frame,
    oversized frames, or malformed bodies.

    Args:
        reader: the connection's stream reader.
        fault_hook: chaos-testing seam (a ``repro.testkit`` ``FaultHook``);
            when enabled it may mutate the body after a complete read —
            truncation/corruption then surfaces exactly as the matching
            wire failure would, and a ``None`` body reads as a peer that
            vanished between frames.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ProtocolError("connection closed mid-header") from None
        return None
    (raw,) = _HEADER.unpack(header)
    length, binary = _split_header(raw)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return _finish_body(body, length, binary, fault_hook)


def read_frame_blocking(stream: BinaryIO, fault_hook: Any = None) -> Any:
    """Blocking twin of :func:`read_frame` over a file-like byte stream.

    Shares the async reader's semantics, including the ``fault_hook``
    chaos seam, so testkit plans cover the sync client path too.
    """
    header = _read_exactly(stream, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (raw,) = _HEADER.unpack(header)
    length, binary = _split_header(raw)
    body = _read_exactly(stream, length, allow_eof=False)
    assert body is not None
    return _finish_body(body, length, binary, fault_hook)


def _read_exactly(stream: BinaryIO, n: int,
                  allow_eof: bool) -> bytes | None:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if allow_eof and remaining == n:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
