"""Sharded asyncio ingestion server wrapping MonitoringService shards.

One process, one event loop, ``shards`` independent
:class:`~repro.service.MonitoringService` instances each owned by a
:class:`~repro.runtime.shard.ShardWorker`. Connection handlers parse
frames and route; the only work done inline on the data path is hashing
the task name and a non-blocking queue put — application of updates
happens in the shard drain loops, so a burst on one shard backpressures
that shard alone.

Delivery semantics: an ``offer_batch`` reply with ``accepted == n`` means
the updates are queued on their shards. Batches are applied in arrival
order per shard. On graceful shutdown (SIGTERM/SIGINT or
:meth:`RuntimeServer.shutdown`) the server stops accepting connections,
drains every queue, and flushes a final checkpoint — every acknowledged
update is therefore either applied or persisted. On a hard crash, updates
queued after the last checkpoint are lost (at-most-once); clients that
need stronger guarantees replay from their own cursor.

Sharding constraint: correlation triggers
(:meth:`~repro.service.MonitoringService.add_trigger`) connect two tasks
through shared last-seen state, so target and trigger must hash to the
same shard; ``add_trigger`` rejects cross-shard pairs with code
``cross-shard-trigger``. The *trigger channel* (``trigger_install`` and
friends, DESIGN.md S32) lifts that constraint: it gates on explicit
arm/disarm edges routed by the server, so the pair may live on any two
shards — or, under the cluster runtime, any two workers.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import os
import pathlib
import signal
import sys
import time
from typing import Any

import numpy as np

from repro.config import RuntimeConfig, register_task_from_config
from repro.core.adaptation import AdaptationConfig
from repro.core.substrates import TASK_TYPES
from repro.exceptions import (CheckpointError, ConfigurationError,
                              ProtocolError, ReproError)
from repro.runtime.checkpoint import read_checkpoint, write_checkpoint
from repro.runtime.protocol import (PROTOCOL_BINARY, PROTOCOL_JSON,
                                    PROTOCOL_VERSION, OfferColumns,
                                    encode_frame, encode_frame_parts,
                                    encode_offer_reply, read_frame)
from repro.runtime.shard import (ColumnBatch, ShardWorker, restore_counters,
                                 shard_for)
from repro.service import MonitoringService
from repro.telemetry.exposition import (CONTENT_TYPE_PROMETHEUS,
                                        TelemetryHTTPServer,
                                        render_prometheus)
from repro.telemetry.registry import MetricsRegistry, instrument_samplers
from repro.telemetry.selfmon import SelfMonitor
from repro.telemetry.trace import DecisionTrace
from repro.testkit.faults import FaultHook, NOOP_HOOK
from repro.triggers.plan import TriggerPlan
from repro.types import Alert

__all__ = ["RuntimeServer", "main"]

logger = logging.getLogger(__name__)


def _error(message: str, code: str = "bad-request") -> dict[str, Any]:
    return {"ok": False, "error": message, "code": code}


_MAX_INTERN = 1 << 20  # hard cap on per-connection intern table size


class _InternNames:
    """Lazy position → task-name view for the columnar fallback path.

    ``offer_columns`` touches names only for the (rare) fallback
    positions, so the hot path never materialises a per-offer name list.
    """

    __slots__ = ("table", "idx")

    def __init__(self, table: list[str | None], idx: np.ndarray):
        self.table = table
        self.idx = idx

    def __getitem__(self, pos: int) -> str | None:
        i = int(self.idx[pos])
        return self.table[i] if 0 <= i < len(self.table) else None


class _ConnState:
    """Per-connection wire state: negotiated version + intern table."""

    __slots__ = ("protocol", "names", "shard", "row")

    def __init__(self) -> None:
        self.protocol = PROTOCOL_JSON
        self.names: list[str | None] = []
        # idx → shard id (-1 = unknown name slot) and SoA engine row
        # (-1 = resolve by name), rebuilt as arrays after each intern op.
        self.shard = np.empty(0, dtype=np.int64)
        self.row = np.empty(0, dtype=np.int64)


class RuntimeServer:
    """The live-ingestion runtime: shards, wire handlers, checkpoints.

    Args:
        runtime: deployment knobs (shard count, queue depth, listen
            addresses, checkpoint path/interval).
        service_config: optional declarative service config (the
            ``defaults``/``tasks``/``triggers`` shape of
            :func:`repro.config.service_from_config`); tasks it declares
            are registered at startup unless a checkpoint already has them.
        adaptation: default adaptation tunables for tasks registered over
            the wire.
        fault_hook: chaos-testing seam (``repro.testkit``). The default
            :data:`~repro.testkit.faults.NOOP_HOOK` injects nothing and
            costs one guarded attribute check per frame/batch.
        registry: metrics registry for the runtime's instruments; the
            default creates a fresh live
            :class:`~repro.telemetry.registry.MetricsRegistry`. Pass
            :data:`~repro.telemetry.registry.NULL_REGISTRY` to run
            un-instrumented.
        trace: decision trace receiving structured runtime events; the
            default creates a
            :class:`~repro.telemetry.trace.DecisionTrace` ring of
            ``runtime.trace_capacity`` events. Pass
            :data:`~repro.telemetry.trace.NULL_TRACE` to disable.
    """

    def __init__(self, runtime: RuntimeConfig | None = None,
                 service_config: dict[str, Any] | None = None,
                 adaptation: AdaptationConfig | None = None,
                 fault_hook: FaultHook = NOOP_HOOK,
                 registry: Any = None, trace: Any = None):
        self.config = runtime or RuntimeConfig()
        self._adaptation = adaptation or AdaptationConfig()
        self._defaults: dict[str, Any] = {}
        self.fault_hook = fault_hook
        self.registry = MetricsRegistry() if registry is None else registry
        self.trace = (DecisionTrace(self.config.trace_capacity)
                      if trace is None else trace)
        # Protocol ≥ 2 servers back eligible tasks with the SoA engine so
        # binary offer columns apply without per-offer Python objects; a
        # protocol-1 deployment keeps the historical scalar-only services.
        self._soa_enabled = self.config.protocol >= PROTOCOL_BINARY
        self._workers = [
            ShardWorker(i, MonitoringService(self._adaptation,
                                             soa=self._soa_enabled),
                        self.config.queue_depth, fault_hook=fault_hook)
            for i in range(self.config.shards)
        ]
        self._task_shard: dict[str, int] = {}
        self._trigger_plans: dict[str, TriggerPlan] = {}
        self._trigger_edges = {"arm": 0, "disarm": 0}
        self._servers: list[asyncio.AbstractServer] = []
        self._connections: set[asyncio.Task[None]] = set()
        self._checkpoint_task: asyncio.Task[None] | None = None
        self._shutdown_started = False
        self._done = asyncio.Event()
        self._started_monotonic = 0.0
        self._last_checkpoint_monotonic: float | None = None
        self._checkpoint_failures = 0
        self._frames = 0
        self._restored_tasks = 0
        self._pending_config = service_config or {}
        self._tcp_port: int | None = None
        self._http: TelemetryHTTPServer | None = None
        self.selfmon: SelfMonitor | None = None
        self._register_metrics()
        self._wire_worker_telemetry()

    # ------------------------------------------------------------------
    # Shard plumbing

    def worker_for(self, name: str) -> ShardWorker:
        """The shard worker a task name routes to."""
        return self._workers[shard_for(name, self.config.shards)]

    def _find_task(self, name: str) -> tuple[ShardWorker, Any]:
        worker = self.worker_for(name)
        return worker, worker.service._state(name)

    def _alert_hook(self, worker: ShardWorker):
        def hook(alert: Alert, _worker: ShardWorker = worker) -> None:
            _worker.alerts_fired += 1
        return hook

    # ------------------------------------------------------------------
    # Telemetry

    def _register_metrics(self) -> None:
        """Register the runtime's metric families on :attr:`registry`.

        Everything the runtime already counts is exported through
        snapshot-time callbacks (``fn=``) — the shard workers' plain int
        counters stay the single source of truth and the hot path pays
        nothing. Only the latency/size/interval distributions are
        push-based histograms.
        """
        registry = self.registry
        per_shard = (
            ("volley_updates_offered_total",
             "Updates accepted into shard queues", "offered"),
            ("volley_updates_applied_total",
             "Updates applied to shard services", "applied"),
            ("volley_updates_consumed_total",
             "Updates consumed as scheduled samples", "consumed"),
            ("volley_updates_shed_total",
             "Updates shed under backpressure", "shed"),
            ("volley_updates_rejected_total",
             "Updates rejected (unknown task / malformed)", "rejected"),
            ("volley_alerts_fired_total",
             "State-violation alerts fired", "alerts_fired"),
        )
        for name, help_text, attr in per_shard:
            family = registry.counter(name, help_text, labels=("shard",))
            for worker in self._workers:
                family.labels(
                    worker.shard_id,
                    fn=lambda w=worker, a=attr: float(getattr(w, a)))
        depth = registry.gauge("volley_queue_depth",
                               "Batches queued per shard",
                               labels=("shard",))
        for worker in self._workers:
            depth.labels(worker.shard_id,
                         fn=lambda w=worker: float(w.depth))
        registry.counter("volley_frames_total",
                         "Wire frames handled",
                         fn=lambda: float(self._frames))
        registry.gauge("volley_tasks",
                       "Monitoring tasks registered",
                       fn=lambda: float(len(self._task_shard)))
        by_type = registry.gauge("volley_tasks_by_type",
                                 "Monitoring tasks registered, per task "
                                 "type", labels=("type",))
        for kind in TASK_TYPES:
            by_type.labels(kind, fn=lambda k=kind: float(sum(
                w.service.task_type_counts().get(k, 0)
                for w in self._workers)))
        registry.gauge("volley_uptime_seconds",
                       "Seconds since the server started",
                       fn=lambda: (time.monotonic() - self._started_monotonic
                                   if self._started_monotonic else 0.0))
        registry.counter("volley_checkpoint_failures_total",
                         "Periodic checkpoint writes that failed",
                         fn=lambda: float(self._checkpoint_failures))
        registry.gauge("volley_checkpoint_age_seconds",
                       "Seconds since the last successful checkpoint "
                       "(0 before the first)",
                       fn=lambda: self.checkpoint_age() or 0.0)
        registry.counter("volley_trace_events_dropped_total",
                         "Decision-trace events evicted unread",
                         fn=lambda: float(self.trace.dropped))
        self._offer_latency = registry.histogram(
            "volley_offer_latency_seconds",
            "offer_batch handler latency (server-side)")
        self._offer_batch_size = registry.histogram(
            "volley_offer_batch_size",
            "Updates per offer_batch frame")
        self._interval_hist = registry.histogram(
            "volley_sampling_interval",
            "Sampling interval after each consumed update")
        edges = registry.counter(
            "volley_trigger_edges_total",
            "Trigger-channel arm/disarm edges routed to guarded tasks",
            labels=("op",))
        for edge_op in ("arm", "disarm"):
            edges.labels(edge_op,
                         fn=lambda o=edge_op: float(self._trigger_edges[o]))
        registry.gauge("volley_trigger_plans",
                       "Correlation trigger plans installed",
                       fn=lambda: float(len(self._trigger_plans)))
        registry.counter(
            "volley_trigger_suspensions_total",
            "Consumed offers deferred by disarmed trigger guards",
            fn=lambda: float(sum(w.service.trigger_accounting()[0]
                                 for w in self._workers)))
        registry.gauge(
            "volley_trigger_probe_cost_saved",
            "Estimated probe collections avoided by trigger guards",
            fn=lambda: float(sum(w.service.trigger_accounting()[1]
                                 for w in self._workers)))
        self._checkpoint_write = registry.histogram(
            "volley_checkpoint_write_seconds",
            "Checkpoint serialize+fsync latency")

    def _wire_worker_telemetry(self) -> None:
        """(Re)attach trace + interval histogram to every shard worker.

        Called at construction and again after a checkpoint restore
        replaces the workers' services.
        """
        interval_hist = (self._interval_hist
                         if self.registry.enabled else None)
        for worker in self._workers:
            worker.interval_hist = interval_hist
            worker.service.attach_telemetry(self.trace, worker.shard_id)
            # Trigger edges route synchronously: watch fires in a shard
            # drain loop, the sink flips the target's armed flag on its
            # own shard inline (one event loop, so no cross-shard race).
            worker.service.set_trigger_sink(self._on_trigger_edge)

    def checkpoint_age(self) -> float | None:
        """Seconds since the last successful checkpoint (None if never)."""
        last = self._last_checkpoint_monotonic
        return None if last is None else time.monotonic() - last

    @property
    def http_port(self) -> int | None:
        """The bound telemetry HTTP port (None when disabled)."""
        return self._http.port if self._http is not None else None

    def _http_routes(self) -> dict[str, Any]:
        def metrics(params: dict[str, str]) -> tuple[int, str, str]:
            body = render_prometheus(self.registry.snapshot())
            return 200, CONTENT_TYPE_PROMETHEUS, body

        def healthz(params: dict[str, str]) -> tuple[int, str, str]:
            healthy = not self._shutdown_started
            body = json.dumps({
                "ok": healthy,
                "shards": self.config.shards,
                "tasks": len(self._task_shard),
                "uptime_s": time.monotonic() - self._started_monotonic,
            })
            return (200 if healthy else 503), "application/json", body

        def trace_route(params: dict[str, str]) -> tuple[int, str, str]:
            try:
                since = int(params.get("since", "0"))
            except ValueError:
                return 400, "text/plain; charset=utf-8", "bad since\n"
            return (200, "application/x-ndjson",
                    self.trace.to_jsonl(since=since))

        return {"/metrics": metrics, "/healthz": healthz,
                "/trace": trace_route}

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> None:
        """Restore state, start shard workers, bind listen sockets."""
        self._started_monotonic = time.monotonic()
        instrument_samplers(self.registry)
        self._maybe_restore()
        self._wire_worker_telemetry()  # restore replaces worker services
        self._apply_service_config(self._pending_config)
        for worker in self._workers:
            worker.start()
        cfg = self.config
        if cfg.unix_socket is not None:
            cfg.unix_socket.parent.mkdir(parents=True, exist_ok=True)
            if cfg.unix_socket.exists():
                cfg.unix_socket.unlink()
            self._servers.append(await asyncio.start_unix_server(
                self._on_connection, path=str(cfg.unix_socket)))
        if cfg.port is not None:
            server = await asyncio.start_server(
                self._on_connection, host=cfg.host, port=cfg.port)
            self._tcp_port = server.sockets[0].getsockname()[1]
            self._servers.append(server)
        if cfg.http_port is not None:
            self._http = TelemetryHTTPServer(
                self._http_routes(), host=cfg.host, port=cfg.http_port)
            await self._http.start()
        if cfg.selfmon_interval is not None:
            self.selfmon = SelfMonitor(self, registry=self.registry,
                                       trace=self.trace)
            self.selfmon.start(cfg.selfmon_interval)
        if cfg.checkpoint_path is not None:
            self._checkpoint_task = asyncio.get_running_loop().create_task(
                self._checkpoint_loop(), name="checkpoint-loop")

    @property
    def tcp_port(self) -> int | None:
        """The bound TCP port (resolves ``port=0`` to the actual port)."""
        return self._tcp_port

    @property
    def restored_tasks(self) -> int:
        """Number of tasks recovered from the checkpoint at startup."""
        return self._restored_tasks

    def _maybe_restore(self) -> None:
        path = self.config.checkpoint_path
        if path is None or not pathlib.Path(path).exists():
            return
        state = read_checkpoint(path)
        shard_count = int(state.get("shard_count", -1))
        if shard_count != self.config.shards:
            raise CheckpointError(
                f"checkpoint was written with {shard_count} shards but the "
                f"server is configured with {self.config.shards}; "
                f"resharding a checkpoint is not supported")
        snapshots = state.get("shards", [])
        for worker, snapshot in zip(self._workers, snapshots):
            hook = self._alert_hook(worker)
            worker.service = MonitoringService.restore(
                snapshot, on_alert=lambda name, alert, _h=hook: _h(alert),
                soa=self._soa_enabled)
            self._restored_tasks += len(worker.service.task_names)
        self._task_shard = {str(k): int(v) for k, v in
                            state.get("task_shard", {}).items()}

        for counters, worker in zip(state.get("counters", []), self._workers):
            restore_counters(worker, counters)
        # Rebuild the routing table only — the armed flags and watcher
        # debounce state already came back inside the shard snapshots,
        # bit-identical; re-installing would conservatively re-arm.
        for entry in state.get("triggers", []):
            plan = TriggerPlan.from_dict(dict(entry))
            self._trigger_plans[plan.target] = plan
        self.trace.emit("restore", tasks=self._restored_tasks,
                        shards=self.config.shards, path=str(path))

    def _apply_service_config(self, config: dict[str, Any]) -> None:
        if not config:
            return
        if not isinstance(config, dict):
            raise ConfigurationError(
                f"service config must be a dict, got {config!r}")
        self._defaults = dict(config.get("defaults", {}))
        for entry in config.get("tasks", []):
            name = str(entry.get("name", ""))
            if name in self._task_shard:
                continue  # checkpoint wins over the config file
            self._register_task(dict(entry))
        for trigger in config.get("triggers", []):
            reply = self._op_add_trigger(dict(trigger))
            if not reply.get("ok"):
                raise ConfigurationError(str(reply.get("error")))
        for entry in config.get("trigger_plans", []):
            plan = TriggerPlan.from_dict(dict(entry))
            for name in (plan.target, plan.trigger):
                if name not in self._task_shard:
                    raise ConfigurationError(
                        f"trigger plan references unknown task {name!r}")
            if plan.target not in self._trigger_plans:  # checkpoint wins
                self._install_plan(plan)

    def _register_task(self, entry: dict[str, Any]) -> dict[str, Any]:
        name = str(entry.get("name", ""))
        worker = self.worker_for(name)
        spec = register_task_from_config(worker.service, entry,
                                         self._defaults,
                                         on_alert=self._alert_hook(worker),
                                         config=self._adaptation)
        self._task_shard[spec.name] = worker.shard_id
        self.trace.emit("task_registered", task=spec.name,
                        shard=worker.shard_id, threshold=spec.threshold,
                        type=worker.service.task_type(spec.name))
        return {"ok": True, "task": spec.name, "shard": worker.shard_id,
                "type": worker.service.task_type(spec.name)}

    async def shutdown(self) -> None:
        """Graceful stop: quiesce, drain every shard, flush a checkpoint."""
        if self._shutdown_started:
            await self._done.wait()
            return
        self._shutdown_started = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        for conn in list(self._connections):
            conn.cancel()
        if self.selfmon is not None:
            await self.selfmon.stop()
        if self._http is not None:
            await self._http.stop()
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            try:
                await self._checkpoint_task
            except asyncio.CancelledError:
                pass
        for worker in self._workers:
            await worker.stop()
        if self.config.checkpoint_path is not None:
            self.write_checkpoint()
        if (self.config.unix_socket is not None
                and self.config.unix_socket.exists()):
            self.config.unix_socket.unlink()
        self._done.set()

    async def drain(self) -> None:
        """Wait until every queued batch on every shard has been applied."""
        for worker in self._workers:
            await worker.drain()

    async def abort(self) -> None:
        """Hard crash: stop everything with no drain and no final flush.

        The counterpart of :meth:`shutdown` for chaos testing — queued
        batches are abandoned and no checkpoint is written, so the next
        incarnation restores exactly the last durable checkpoint
        (at-most-once delivery, as documented in the module docstring).
        """
        if self._shutdown_started:
            await self._done.wait()
            return
        self._shutdown_started = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        for conn in list(self._connections):
            conn.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self.selfmon is not None:
            await self.selfmon.stop()
        if self._http is not None:
            await self._http.stop()
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            try:
                await self._checkpoint_task
            except asyncio.CancelledError:
                pass
        for worker in self._workers:
            await worker.abort()
        if (self.config.unix_socket is not None
                and self.config.unix_socket.exists()):
            self.config.unix_socket.unlink()
        self._done.set()

    async def serve_forever(self) -> None:
        """Run until :meth:`shutdown` (or SIGTERM/SIGINT) completes."""
        loop = asyncio.get_running_loop()

        def _request_shutdown() -> None:
            loop.create_task(self.shutdown())

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, _request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix platforms / nested loops
        await self._done.wait()

    # ------------------------------------------------------------------
    # Checkpointing

    def runtime_state(self) -> dict[str, Any]:
        """The full runtime state (what checkpoints persist)."""
        state: dict[str, Any] = {
            "shard_count": self.config.shards,
            "task_shard": dict(self._task_shard),
            "shards": [w.service.snapshot() for w in self._workers],
            "counters": [w.stats() for w in self._workers],
        }
        if self._trigger_plans:
            # Only-when-present, like the typed-task snapshot keys:
            # checkpoints without trigger plans stay byte-identical to
            # every earlier release's.
            state["triggers"] = [self._trigger_plans[t].to_dict()
                                 for t in sorted(self._trigger_plans)]
        return state

    def write_checkpoint(self) -> pathlib.Path:
        """Write a checkpoint now; returns the path written."""
        path = self.config.checkpoint_path
        if path is None:
            raise ConfigurationError("no checkpoint_path configured")
        began = time.monotonic()
        written = write_checkpoint(path, self.runtime_state(),
                                   fault_hook=self.fault_hook)
        finished = time.monotonic()
        self._last_checkpoint_monotonic = finished
        self._checkpoint_write.observe(finished - began)
        self.trace.emit("checkpoint_written", path=str(written),
                        write_s=finished - began,
                        tasks=len(self._task_shard))
        return written

    async def _checkpoint_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.checkpoint_interval)
            try:
                self.write_checkpoint()
            except Exception:
                # A transient write failure (disk full, permissions) must
                # not kill the periodic loop — crash recovery would then
                # silently degrade to the last successful checkpoint. Log,
                # count it, and retry next interval. Failure age is
                # visible via the `stats` op.
                self._checkpoint_failures += 1
                self.trace.emit("checkpoint_failed",
                                failures=self._checkpoint_failures)
                logger.exception("periodic checkpoint failed (%d so far); "
                                 "will retry in %gs",
                                 self._checkpoint_failures,
                                 self.config.checkpoint_interval)

    # ------------------------------------------------------------------
    # Wire handling

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        conn = _ConnState()
        try:
            hook = self.fault_hook
            while True:
                try:
                    request = await read_frame(reader, fault_hook=hook)
                except ProtocolError as exc:
                    writer.writelines(encode_frame_parts(
                        _error(str(exc), code="protocol")))
                    await writer.drain()
                    break
                if request is None:
                    break
                self._frames += 1
                if isinstance(request, OfferColumns):
                    if conn.protocol < PROTOCOL_BINARY:
                        writer.writelines(encode_frame_parts(_error(
                            "binary frames require a negotiated "
                            "protocol >= 2 (send a 'hello' op first)",
                            code="protocol")))
                        await writer.drain()
                        break
                    writer.writelines(self._offer_columns(conn, request))
                    await writer.drain()
                    continue
                if not isinstance(request, dict):
                    # Decoded binary frame of a kind the ingest server
                    # has no business receiving (reply / shard fan-out).
                    writer.writelines(encode_frame_parts(_error(
                        "unexpected binary frame kind", code="protocol")))
                    await writer.drain()
                    break
                op = request.get("op")
                if op == "hello":
                    reply = self._op_hello(conn, request)
                elif op == "intern":
                    reply = self._op_intern(conn, request)
                else:
                    reply = self.handle_request(request)
                    if (hook.enabled and op == "offer_batch"
                            and hook.duplicate_frame(request)):
                        # Duplicated delivery: the frame is dispatched
                        # twice but only the primary reply goes back on
                        # the wire — exactly what a client retrying a
                        # lost ACK produces.
                        hook.note_duplicate_reply(
                            self.handle_request(request))
                writer.writelines(encode_frame_parts(reply))
                await writer.drain()
        except (asyncio.CancelledError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def handle_request(self, request: dict[str, Any]) -> dict[str, Any]:
        """Dispatch one decoded request frame to its op handler.

        Synchronous by design: every op either enqueues (data path) or
        reads/mutates shard state inline (control path); nothing awaits,
        so a request can never interleave with another mid-handler.
        """
        op = request.get("op")
        handler = self._OPS.get(op) if isinstance(op, str) else None
        if handler is None:
            return _error(f"unknown op {op!r}", code="unknown-op")
        try:
            return handler(self, request)
        except ReproError as exc:
            return _error(str(exc))
        except (ValueError, TypeError, KeyError) as exc:
            # Malformed field inside an otherwise well-framed request
            # (e.g. aggregate="bogus", non-int step). The connection must
            # get an error reply, never be dropped.
            return _error(f"invalid request: {exc}")

    def _op_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        return {"ok": True, "shards": self.config.shards,
                "tasks": len(self._task_shard),
                "protocol": self.max_protocol}

    def _op_register_task(self, request: dict[str, Any]) -> dict[str, Any]:
        entry = request.get("task")
        if not isinstance(entry, dict):
            return _error("register_task needs a 'task' dict")
        return self._register_task(entry)

    def _op_remove_task(self, request: dict[str, Any]) -> dict[str, Any]:
        name = str(request.get("task", ""))
        if name not in self._task_shard:
            return _error(f"unknown task {name!r}", code="unknown-task")
        worker = self.worker_for(name)
        worker.service.remove_task(name)
        del self._task_shard[name]
        self.trace.emit("task_removed", task=name, shard=worker.shard_id)
        return {"ok": True, "task": name}

    def _op_add_trigger(self, request: dict[str, Any]) -> dict[str, Any]:
        target = str(request.get("target", ""))
        trigger = str(request.get("trigger", ""))
        for name in (target, trigger):
            if name not in self._task_shard:
                return _error(f"unknown task {name!r}", code="unknown-task")
        if self._task_shard[target] != self._task_shard[trigger]:
            return _error(
                f"target {target!r} (shard {self._task_shard[target]}) and "
                f"trigger {trigger!r} (shard {self._task_shard[trigger]}) "
                f"hash to different shards; correlation gating is "
                f"intra-shard", code="cross-shard-trigger")
        worker = self.worker_for(target)
        worker.service.add_trigger(
            target, trigger,
            elevation_level=float(request.get("elevation_level", 0.0)),
            suspend_interval=int(request.get("suspend_interval", 10)))
        return {"ok": True, "target": target, "trigger": trigger}

    # -- trigger channel (repro.triggers, DESIGN.md S32) ----------------

    def _on_trigger_edge(self, event: dict[str, Any]) -> None:
        """Route one watch edge to every guarded target (the sink)."""
        op = event.get("op")
        trigger = event.get("trigger")
        armed = op == "arm"
        for plan in self._trigger_plans.values():
            if plan.trigger != trigger:
                continue
            try:
                self.worker_for(plan.target).service.set_trigger_armed(
                    plan.target, armed)
            except ConfigurationError:
                continue  # target removed since the plan was installed
            self._trigger_edges["arm" if armed else "disarm"] += 1

    def _install_plan(self, plan: TriggerPlan) -> None:
        self.worker_for(plan.trigger).service.install_trigger_plan(plan)
        self.worker_for(plan.target).service.install_trigger_plan(plan)
        self._trigger_plans[plan.target] = plan
        self.trace.emit("trigger_plan_installed", task=plan.target,
                        shard=self._task_shard.get(plan.target),
                        trigger=plan.trigger,
                        elevation_level=plan.elevation_level,
                        suspend_interval=plan.suspend_interval)

    def _op_trigger_install(self, request: dict[str, Any]) -> dict[str, Any]:
        entry = request.get("plan")
        if not isinstance(entry, dict):
            return _error("trigger_install needs a 'plan' dict")
        plan = TriggerPlan.from_dict(entry)
        for name in (plan.target, plan.trigger):
            if name not in self._task_shard:
                return _error(f"unknown task {name!r}", code="unknown-task")
        self._install_plan(plan)
        return {"ok": True, "target": plan.target, "trigger": plan.trigger,
                "plans": len(self._trigger_plans)}

    def _set_trigger_armed(self, request: dict[str, Any],
                           armed: bool) -> dict[str, Any]:
        name = str(request.get("task", ""))
        if name not in self._task_shard:
            return _error(f"unknown task {name!r}", code="unknown-task")
        was = self.worker_for(name).service.set_trigger_armed(name, armed)
        if was != armed:
            self._trigger_edges["arm" if armed else "disarm"] += 1
        return {"ok": True, "task": name, "armed": armed, "was_armed": was}

    def _op_trigger_arm(self, request: dict[str, Any]) -> dict[str, Any]:
        return self._set_trigger_armed(request, True)

    def _op_trigger_disarm(self, request: dict[str, Any]) -> dict[str, Any]:
        return self._set_trigger_armed(request, False)

    def _op_trigger_state(self, request: dict[str, Any]) -> dict[str, Any]:
        name = str(request.get("task", ""))
        if name not in self._task_shard:
            return _error(f"unknown task {name!r}", code="unknown-task")
        status = self.worker_for(name).service.trigger_status(name)
        return {"ok": True, "task": name, "state": status}

    def _op_trigger_plans(self, request: dict[str, Any]) -> dict[str, Any]:
        suspensions, saved = 0, 0.0
        for worker in self._workers:
            s, p = worker.service.trigger_accounting()
            suspensions += s
            saved += p
        return {"ok": True,
                "plans": [self._trigger_plans[t].to_dict()
                          for t in sorted(self._trigger_plans)],
                "edges": dict(self._trigger_edges),
                "suspensions": suspensions,
                "probe_cost_saved": saved}

    def _op_offer_batch(self, request: dict[str, Any]) -> dict[str, Any]:
        instrumented = self.registry.enabled
        began = time.perf_counter() if instrumented else 0.0
        updates = request.get("updates")
        if not isinstance(updates, list):
            return _error("offer_batch needs an 'updates' list")
        if len(updates) > self.config.max_batch:
            return _error(
                f"batch of {len(updates)} exceeds max_batch="
                f"{self.config.max_batch}", code="batch-too-large")
        per_shard: dict[int, list[Any]] = {}
        rejected = 0
        for update in updates:
            if (not isinstance(update, (list, tuple)) or len(update) != 3):
                return _error(
                    "each update must be [task, step, value]")
            step, value = update[1], update[2]
            if (not isinstance(step, (int, float))
                    or not isinstance(value, (int, float))
                    or isinstance(step, bool) or isinstance(value, bool)):
                # Reject before enqueueing: a malformed update must never
                # be ACKed and then fail inside the shard drain loop.
                return _error(
                    f"update step and value must be numbers, got "
                    f"[{update[0]!r}, {step!r}, {value!r}]",
                    code="bad-update")
            shard = self._task_shard.get(str(update[0]))
            if shard is None:
                rejected += 1
                continue
            per_shard.setdefault(shard, []).append(update)
        accepted = 0
        shed = 0
        hook = self.fault_hook
        for shard, items in per_shard.items():
            worker = self._workers[shard]
            if hook.enabled and hook.force_shed(shard):
                # Chaos seam: shed as if the queue were full, so the
                # backpressure reply path is exercised deterministically.
                worker.shed += len(items)
                shed += len(items)
            elif worker.try_enqueue(items):
                accepted += len(items)
            else:
                shed += len(items)
        reply: dict[str, Any] = {"ok": True, "accepted": accepted,
                                 "shed": shed, "rejected": rejected}
        if shed:
            reply["backpressure"] = True
            reply["retry_after_ms"] = self.config.shed_retry_ms
            self.trace.emit("shed", count=shed,
                            batch=len(updates), accepted=accepted)
        if instrumented:
            self._offer_batch_size.observe(len(updates))
            self._offer_latency.observe(time.perf_counter() - began)
        return reply

    # -- binary protocol (negotiation, interning, columnar offers) ------

    @property
    def max_protocol(self) -> int:
        """Highest wire protocol version this server negotiates."""
        return min(self.config.protocol, PROTOCOL_VERSION)

    def _op_hello(self, conn: _ConnState,
                  request: dict[str, Any]) -> dict[str, Any]:
        """Version negotiation: both sides meet at the lower maximum.

        A protocol-1 server has no ``hello`` op at all — clients treat
        its ``unknown-op`` error as "stay on JSON", which is what makes
        the upgrade transparent in both directions.
        """
        try:
            peer_max = int(request.get("max_protocol", PROTOCOL_JSON))
        except (TypeError, ValueError):
            return _error("hello needs an integer 'max_protocol'")
        conn.protocol = max(PROTOCOL_JSON, min(peer_max, self.max_protocol))
        return {"ok": True, "protocol": conn.protocol,
                "server_protocol": self.max_protocol,
                "max_batch": self.config.max_batch}

    def _op_intern(self, conn: _ConnState,
                   request: dict[str, Any]) -> dict[str, Any]:
        """Install ``[index, name]`` pairs in the connection's table.

        Indexes are caller-assigned (so the client's own numbering rides
        the wire), may be re-interned to repoint a slot, and resolve to
        ``(shard, SoA row)`` eagerly — shard assignment is a stable hash
        so it can never go stale, and a stale row degrades to the
        always-correct by-name fallback. Names interned before their task
        is registered stay on the fallback path until re-interned.
        """
        entries = request.get("tasks")
        if not isinstance(entries, list):
            return _error("intern needs a 'tasks' list of [index, name]")
        for entry in entries:
            if (not isinstance(entry, (list, tuple)) or len(entry) != 2
                    or isinstance(entry[0], bool)
                    or not isinstance(entry[0], int)):
                return _error("each intern entry must be [index, name]")
            idx, name = int(entry[0]), str(entry[1])
            if not 0 <= idx < _MAX_INTERN:
                return _error(f"intern index {idx} out of range "
                              f"[0, {_MAX_INTERN})")
            if idx >= len(conn.names):
                conn.names.extend([None] * (idx + 1 - len(conn.names)))
            conn.names[idx] = name
        shards = self.config.shards
        shard = np.empty(len(conn.names), dtype=np.int64)
        row = np.empty(len(conn.names), dtype=np.int64)
        for i, name in enumerate(conn.names):
            if name is None:
                shard[i] = -1
                row[i] = -1
                continue
            shard[i] = shard_for(name, shards)
            service = self._workers[shard[i]].service
            try:
                row[i] = service.soa_row_for(name)
            except ConfigurationError:
                row[i] = -1
        conn.shard = shard
        conn.row = row
        return {"ok": True, "interned": len(entries),
                "table_size": len(conn.names)}

    def _offer_columns(self, conn: _ConnState,
                       cols: OfferColumns) -> tuple[bytes, bytes]:
        """Apply a decoded binary offer batch; returns the reply frame.

        The columnar twin of :meth:`_op_offer_batch`: same routing,
        backpressure and counter semantics, but the offers stay numpy
        columns from the wire to the shard queues.
        """
        instrumented = self.registry.enabled
        began = time.perf_counter() if instrumented else 0.0
        count = len(cols)
        if count > self.config.max_batch:
            return encode_frame_parts(_error(
                f"batch of {count} exceeds max_batch="
                f"{self.config.max_batch}", code="batch-too-large"))
        idx = cols.task_idx.astype(np.int64)
        steps = cols.steps
        values = cols.values
        valid = idx < len(conn.names)
        rejected = 0
        if not valid.all():
            keep = np.flatnonzero(valid)
            rejected = count - len(keep)
            idx = idx[keep]
            steps = steps[keep]
            values = values[keep]
        shards = conn.shard[idx] if len(idx) else conn.shard[:0]
        unknown = shards < 0
        if unknown.any():
            keep = np.flatnonzero(~unknown)
            rejected += int(unknown.sum())
            idx = idx[keep]
            steps = steps[keep]
            values = values[keep]
            shards = shards[keep]
        accepted = 0
        shed = 0
        hook = self.fault_hook
        for shard in np.unique(shards).tolist():
            sel = np.flatnonzero(shards == shard)
            sub_idx = idx[sel]
            batch = ColumnBatch(rows=conn.row[sub_idx],
                                steps=steps[sel], values=values[sel],
                                names=_InternNames(conn.names, sub_idx))
            worker = self._workers[shard]
            if hook.enabled and hook.force_shed(shard):
                worker.shed += len(batch)
                shed += len(batch)
            elif worker.try_enqueue_columns(batch):
                accepted += len(batch)
            else:
                shed += len(batch)
        backpressure = shed > 0
        if backpressure:
            self.trace.emit("shed", count=shed, batch=count,
                            accepted=accepted)
        if instrumented:
            self._offer_batch_size.observe(count)
            self._offer_latency.observe(time.perf_counter() - began)
        return encode_offer_reply(accepted, shed, rejected, backpressure,
                                  self.config.shed_retry_ms
                                  if backpressure else 0)

    def _op_due(self, request: dict[str, Any]) -> dict[str, Any]:
        name = str(request.get("task", ""))
        step = int(request.get("step", 0))
        worker = self.worker_for(name)
        next_due = worker.service.next_due(name)
        return {"ok": True, "due": step >= next_due,
                "next_due": next_due, "shard": worker.shard_id}

    def _op_task_info(self, request: dict[str, Any]) -> dict[str, Any]:
        name = str(request.get("task", ""))
        worker, state = self._find_task(name)
        service = worker.service
        return {
            "ok": True,
            "task": name,
            "shard": worker.shard_id,
            "samples_taken": service.samples_taken(name),
            "alerts": len(state.alerts),
            "interval": service.interval(name),
            "next_due": service.next_due(name),
            "observations": service.observations(name),
            "type": service.task_type(name),
            "estimate": service.task_estimate(name),
        }

    def _op_alerts(self, request: dict[str, Any]) -> dict[str, Any]:
        name = str(request.get("task", ""))
        _, state = self._find_task(name)
        return {"ok": True, "task": name,
                "alerts": [[a.time_index, a.value, a.threshold]
                           for a in state.alerts]}

    def _op_stats(self, request: dict[str, Any]) -> dict[str, Any]:
        shards = [w.stats() for w in self._workers]
        # The totals dict keeps its original short keys: it is the reply's
        # own namespace (consumed by loadgen, replay, the chaos harness),
        # distinct from the per-shard canonical counter snapshots.
        totals = {short: sum(s[canonical] for s in shards)
                  for short, canonical in
                  (("offered", "updates_offered"),
                   ("applied", "updates_applied"),
                   ("consumed", "updates_consumed"),
                   ("shed", "updates_shed"),
                   ("rejected", "updates_rejected"),
                   ("alerts", "alerts_fired"),
                   ("queue_depth", "queue_depth"))}
        totals["tasks"] = len(self._task_shard)
        reply = {"ok": True, "shards": shards, "totals": totals,
                 "frames": self._frames,
                 "protocol": self.max_protocol,
                 "uptime_s": time.monotonic() - self._started_monotonic,
                 "restored_tasks": self._restored_tasks}
        if self.config.checkpoint_path is not None:
            last = self._last_checkpoint_monotonic
            reply["checkpoint"] = {
                "failures": self._checkpoint_failures,
                "last_age_s": (None if last is None
                               else time.monotonic() - last),
            }
        return reply

    def _op_checkpoint(self, request: dict[str, Any]) -> dict[str, Any]:
        path = self.write_checkpoint()
        return {"ok": True, "path": str(path)}

    def _op_telemetry(self, request: dict[str, Any]) -> dict[str, Any]:
        """Full metrics snapshot as JSON (the wire twin of ``/metrics``)."""
        reply: dict[str, Any] = {"ok": True,
                                 "metrics": self.registry.snapshot(),
                                 "trace": {"next_seq": self.trace.next_seq,
                                           "dropped": self.trace.dropped,
                                           "retained": len(self.trace)}}
        if self.selfmon is not None:
            reply["selfmon"] = self.selfmon.stats()
        return reply

    def _op_trace(self, request: dict[str, Any]) -> dict[str, Any]:
        since = int(request.get("since", 0))
        raw_limit = request.get("limit")
        limit = None if raw_limit is None else int(raw_limit)
        return {"ok": True,
                "events": self.trace.drain(since=since, limit=limit),
                "next_seq": self.trace.next_seq,
                "dropped": self.trace.dropped}

    _OPS = {
        "ping": _op_ping,
        "register_task": _op_register_task,
        "remove_task": _op_remove_task,
        "add_trigger": _op_add_trigger,
        "trigger_install": _op_trigger_install,
        "trigger_arm": _op_trigger_arm,
        "trigger_disarm": _op_trigger_disarm,
        "trigger_state": _op_trigger_state,
        "trigger_plans": _op_trigger_plans,
        "offer_batch": _op_offer_batch,
        "due": _op_due,
        "task_info": _op_task_info,
        "alerts": _op_alerts,
        "stats": _op_stats,
        "checkpoint": _op_checkpoint,
        "telemetry": _op_telemetry,
        "trace": _op_trace,
    }


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description="Sharded live-ingestion server for Volley monitoring "
                    "tasks (length-prefixed JSON over TCP/unix socket).")
    parser.add_argument("--config", type=pathlib.Path, default=None,
                        help="JSON config file; may hold a 'runtime' "
                             "section plus defaults/tasks/triggers")
    parser.add_argument("--host", default=None)
    parser.add_argument("--port", type=int, default=None,
                        help="TCP port (0 = ephemeral)")
    parser.add_argument("--unix", type=pathlib.Path, default=None,
                        help="unix-domain socket path to listen on")
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--queue-depth", type=int, default=None)
    parser.add_argument("--max-batch", type=int, default=None)
    parser.add_argument("--checkpoint", type=pathlib.Path, default=None,
                        help="checkpoint file (restored at startup if it "
                             "exists; flushed on shutdown)")
    parser.add_argument("--checkpoint-interval", type=float, default=None,
                        help="seconds between periodic checkpoints")
    parser.add_argument("--http-port", type=int, default=None,
                        help="telemetry HTTP port serving /metrics, "
                             "/healthz and /trace (0 = ephemeral; "
                             "omitted = disabled)")
    parser.add_argument("--selfmon-interval", type=float, default=None,
                        help="seconds between self-monitoring polls "
                             "(omitted = disabled)")
    parser.add_argument("--protocol", type=int, choices=(1, 2),
                        default=None,
                        help="highest wire protocol version to negotiate "
                             "(1 = JSON only, 2 = JSON + binary offers)")
    parser.add_argument("--ready-file", type=pathlib.Path, default=None,
                        help="write {port, unix, http_port, pid} JSON "
                             "once listening")
    return parser


def _runtime_config(args: argparse.Namespace,
                    file_section: dict[str, Any]) -> RuntimeConfig:
    base = RuntimeConfig.from_dict(file_section)
    overrides: dict[str, Any] = {}
    for arg, key in (("host", "host"), ("port", "port"),
                     ("shards", "shards"), ("queue_depth", "queue_depth"),
                     ("max_batch", "max_batch"),
                     ("checkpoint_interval", "checkpoint_interval"),
                     ("http_port", "http_port"),
                     ("selfmon_interval", "selfmon_interval"),
                     ("protocol", "protocol")):
        value = getattr(args, arg)
        if value is not None:
            overrides[key] = value
    if args.unix is not None:
        overrides["unix_socket"] = args.unix
    if args.checkpoint is not None:
        overrides["checkpoint_path"] = args.checkpoint
    if not overrides:
        return base
    merged = {key: getattr(base, key) for key in (
        "shards", "queue_depth", "max_batch", "host", "port", "unix_socket",
        "checkpoint_path", "checkpoint_interval", "shed_retry_ms",
        "http_port", "trace_capacity", "selfmon_interval", "protocol")}
    merged.update(overrides)
    return RuntimeConfig(**merged)


async def _run(args: argparse.Namespace) -> None:
    service_config: dict[str, Any] = {}
    runtime_section: dict[str, Any] = {}
    adaptation: AdaptationConfig | None = None
    if args.config is not None:
        loaded = json.loads(args.config.read_text(encoding="utf-8"))
        if not isinstance(loaded, dict):
            raise ConfigurationError("config file must hold a JSON object")
        runtime_section = dict(loaded.pop("runtime", {}))
        adaptation_section = loaded.pop("adaptation", None)
        if adaptation_section is not None:
            try:
                adaptation = AdaptationConfig(**adaptation_section)
            except TypeError as exc:
                raise ConfigurationError(
                    f"bad adaptation section: {exc}") from None
        service_config = loaded
    server = RuntimeServer(_runtime_config(args, runtime_section),
                           service_config=service_config,
                           adaptation=adaptation)
    await server.start()
    endpoints = []
    if server.tcp_port is not None:
        endpoints.append(f"tcp {server.config.host}:{server.tcp_port}")
    if server.config.unix_socket is not None:
        endpoints.append(f"unix {server.config.unix_socket}")
    if server.http_port is not None:
        endpoints.append(f"http {server.config.host}:{server.http_port}")
    print(f"[runtime] listening on {', '.join(endpoints)} "
          f"({server.config.shards} shards, "
          f"{server.restored_tasks} tasks restored)", flush=True)
    if args.ready_file is not None:
        ready = {"port": server.tcp_port,
                 "unix": (str(server.config.unix_socket)
                          if server.config.unix_socket else None),
                 "http_port": server.http_port,
                 "pid": os.getpid()}
        args.ready_file.write_text(json.dumps(ready), encoding="utf-8")
    await server.serve_forever()
    print("[runtime] shut down cleanly", flush=True)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.runtime``)."""
    args = _build_parser().parse_args(argv)
    try:
        asyncio.run(_run(args))
    except ReproError as exc:
        print(f"[runtime] error: {exc}", file=sys.stderr, flush=True)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
