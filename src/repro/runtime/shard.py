"""Shard workers: one bounded queue + one MonitoringService per shard.

Tasks are partitioned across shards by :func:`shard_for`, a stable
(``PYTHONHASHSEED``-independent) hash of the task name, so the same task
always lands on the same shard — across restarts and across independent
client processes. All updates for a task are therefore applied in arrival
order by a single consumer, which is what keeps the per-task samplers'
strictly-increasing ``time_index`` contract safe without locks.

Backpressure contract: :meth:`ShardWorker.try_enqueue` never blocks. When
the shard's queue is full the batch is *shed* — counted, reported to the
caller, and dropped. The server turns that into an explicit reply with a
retry hint; a lagging shard can never stall the event loop or starve the
other shards.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.cluster.routing import route
from repro.exceptions import ConfigurationError
from repro.service import MonitoringService
from repro.testkit.faults import FaultHook, NOOP_HOOK

__all__ = ["ColumnBatch", "ShardWorker", "restore_counters", "shard_for"]

logger = logging.getLogger(__name__)

Update = Sequence[Any]  # [task_name, step, value]


@dataclass
class ColumnBatch:
    """A decoded binary offer batch, pre-resolved to engine rows.

    ``rows`` holds SoA engine row ids (``-1`` = resolve by name instead);
    ``names`` is parallel to the columns and only consulted for fallback
    positions, so the hot path never materialises per-offer tuples.
    """

    rows: np.ndarray
    steps: np.ndarray
    values: np.ndarray
    names: Sequence[str | None] | None = None

    def __len__(self) -> int:
        return len(self.rows)


def shard_for(name: str, shards: int) -> int:
    """Stable shard index for a task name (CRC32, not ``hash()``).

    Thin alias of :func:`repro.cluster.routing.route`, kept for the
    runtime's historical import surface; both the single-process server
    and the cluster routing tier share the one implementation.
    """
    return route(name, shards)


def restore_counters(worker: "ShardWorker",
                     counters: Mapping[str, Any]) -> None:
    """Load a checkpointed counter dict onto ``worker``.

    Canonical telemetry keys (``updates_offered``, ..., ``alerts_fired``)
    win; the pre-telemetry short aliases (``offered``, ..., ``alerts``)
    are still honoured so checkpoints written before PR 5 restore
    correctly — the aliases live on *only* here, on the restore path.
    """
    def pick(canonical: str, alias: str) -> int:
        return int(counters.get(canonical, counters.get(alias, 0)))

    worker.offered = pick("updates_offered", "offered")
    worker.applied = pick("updates_applied", "applied")
    worker.consumed = pick("updates_consumed", "consumed")
    worker.shed = pick("updates_shed", "shed")
    worker.rejected = pick("updates_rejected", "rejected")
    worker.alerts_fired = pick("alerts_fired", "alerts")


class ShardWorker:
    """One shard's bounded ingest queue and its drain loop.

    The worker owns its :class:`~repro.service.MonitoringService`
    exclusively: control operations (register/remove/trigger) and reads go
    through the owning server on the event loop thread, data-path batches
    go through the queue and are applied by :meth:`_run`. Since everything
    runs on one event loop, service state is never touched concurrently.
    """

    def __init__(self, shard_id: int, service: MonitoringService,
                 queue_depth: int, fault_hook: FaultHook = NOOP_HOOK):
        if queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {queue_depth}")
        self.shard_id = shard_id
        self.service = service
        self.fault_hook = fault_hook
        self._queue: asyncio.Queue[list[Update]] = asyncio.Queue(
            maxsize=queue_depth)
        self._runner: asyncio.Task[None] | None = None
        # Counters exposed via the server's `stats` op.
        self.offered = 0      # updates accepted into the queue
        self.applied = 0      # updates applied to the service
        self.consumed = 0     # updates consumed as scheduled samples
        self.shed = 0         # updates dropped due to backpressure
        self.rejected = 0     # updates for unknown/invalid tasks
        self.alerts_fired = 0
        # Optional telemetry seam: a histogram instrument recording the
        # sampling interval after each consumed update (attached by the
        # owning server when instrumented; None costs one check).
        self.interval_hist: Any = None

    @property
    def depth(self) -> int:
        """Batches currently queued (for stats/backpressure telemetry)."""
        return self._queue.qsize()

    @property
    def capacity(self) -> int:
        """Queue capacity in batches."""
        return self._queue.maxsize

    def try_enqueue(self, updates: list[Update]) -> bool:
        """Queue a batch without blocking; False (and shed) when full."""
        try:
            self._queue.put_nowait(updates)
        except asyncio.QueueFull:
            self.shed += len(updates)
            return False
        self.offered += len(updates)
        return True

    def try_enqueue_columns(self, batch: ColumnBatch) -> bool:
        """Columnar twin of :meth:`try_enqueue` (same backpressure)."""
        try:
            self._queue.put_nowait(batch)
        except asyncio.QueueFull:
            self.shed += len(batch)
            return False
        self.offered += len(batch)
        return True

    def apply(self, updates: list[Update]) -> None:
        """Apply a batch synchronously (the drain loop's work unit).

        Drives the service through its allocation-light
        :meth:`~repro.service.MonitoringService.offer_fast` path — same
        behaviour as ``offer`` (equivalence-tested), minus one decision
        object per consumed update on the hottest loop in the runtime.
        """
        if self.fault_hook.enabled:
            # Chaos seam: may raise to simulate an unexpected internal
            # error taking out the whole batch (the drain loop's
            # reject-and-continue path). Guarded so production pays one
            # attribute load + falsy check per batch.
            self.fault_hook.before_apply(self.shard_id, len(updates))
        offer_fast = self.service.offer_fast
        interval_hist = self.interval_hist
        for name, step, value in updates:
            try:
                interval = offer_fast(str(name), float(value), int(step))
            except ConfigurationError:
                # Unknown task: raced a remove_task that was applied after
                # this batch was queued. Shed-with-count, don't poison the
                # batch.
                self.rejected += 1
                continue
            except (ValueError, TypeError):
                # Non-numeric step/value that slipped past wire validation
                # (or a direct caller). Count it rejected; the rest of the
                # batch must still apply.
                self.rejected += 1
                continue
            self.applied += 1
            if interval is not None:
                self.consumed += 1
                if interval_hist is not None:
                    interval_hist.observe(interval)

    def apply_columns(self, batch: ColumnBatch) -> None:
        """Apply a decoded columnar batch (the binary-path work unit).

        Drives the service through
        :meth:`~repro.service.MonitoringService.offer_columns` — one
        vectorised engine pass plus by-name fallback for stale rows — and
        folds the whole batch's telemetry into count-weighted histogram
        updates instead of one ``observe`` per consumed offer.
        """
        if self.fault_hook.enabled:
            self.fault_hook.before_apply(self.shard_id, len(batch))
        applied, consumed, rejected, intervals = self.service.offer_columns(
            batch.rows, batch.steps, batch.values, batch.names)
        self.applied += applied
        self.consumed += consumed
        self.rejected += rejected
        interval_hist = self.interval_hist
        if interval_hist is not None and len(intervals):
            distinct, counts = np.unique(intervals, return_counts=True)
            for value, count in zip(distinct.tolist(), counts.tolist()):
                interval_hist.observe_repeat(value, count)

    def start(self) -> None:
        """Start the drain loop on the running event loop."""
        if self._runner is None:
            self._runner = asyncio.get_running_loop().create_task(
                self._run(), name=f"shard-{self.shard_id}")

    async def _run(self) -> None:
        while True:
            updates = await self._queue.get()
            try:
                if type(updates) is ColumnBatch:
                    self.apply_columns(updates)
                else:
                    self.apply(updates)
            except Exception:
                # The drain loop is the shard's only consumer: if it dies,
                # acknowledged batches pile up unapplied and shutdown's
                # drain() deadlocks. Reject the batch and keep consuming.
                self.rejected += len(updates)
                logger.exception(
                    "shard %d: dropping batch of %d updates after "
                    "unexpected error", self.shard_id, len(updates))
            finally:
                self._queue.task_done()

    async def drain(self) -> None:
        """Wait until every queued batch has been applied."""
        await self._queue.join()

    async def stop(self) -> None:
        """Drain outstanding batches, then cancel the drain loop.

        A worker whose drain loop is not running (never started, or already
        stopped) is left as-is — draining would deadlock with no consumer.
        """
        if self._runner is None:
            return
        await self.drain()
        self._runner.cancel()
        try:
            await self._runner
        except asyncio.CancelledError:
            pass
        self._runner = None

    async def abort(self) -> None:
        """Hard-stop the drain loop *without* draining (crash simulation).

        Queued batches are abandoned exactly as a process crash would
        abandon them; the chaos harness uses this to exercise the
        at-most-once recovery contract.
        """
        if self._runner is None:
            return
        self._runner.cancel()
        try:
            await self._runner
        except asyncio.CancelledError:
            pass
        self._runner = None

    def stats(self) -> dict[str, Any]:
        """Counter snapshot for the ``stats`` wire op.

        Keys follow the canonical telemetry naming (``updates_offered``,
        ..., ``alerts_fired``). The pre-telemetry short aliases
        (``offered``, ..., ``alerts``), deprecated in PR 5, are gone from
        this snapshot; :func:`restore_counters` still reads them so
        alias-only checkpoints keep restoring.
        """
        return {
            "shard": self.shard_id,
            "tasks": len(self.service.task_names),
            "queue_depth": self.depth,
            "queue_capacity": self.capacity,
            "updates_offered": self.offered,
            "updates_applied": self.applied,
            "updates_consumed": self.consumed,
            "updates_shed": self.shed,
            "updates_rejected": self.rejected,
            "alerts_fired": self.alerts_fired,
        }
