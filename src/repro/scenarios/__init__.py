"""Timeline-driven incident scenarios: compile, replay, score.

The scenario engine closes the loop between the synthetic workload
generators and the live ingestion runtime: a declarative
:class:`~repro.scenarios.timeline.Timeline` (named phases, workload
overlays, ground-truth violation windows) is compiled into per-task
trace streams, replayed through a real
:class:`~repro.runtime.server.RuntimeServer` over the wire, and scored
against its declared ground truth — detection delay, mis-detection rate
vs. the configured error allowance, false-alarm rate and probe cost per
scenario, written to a byte-reproducible ``BENCH_scenarios.json``.

``python -m repro.scenarios run --all --seed 7`` replays the whole
canned catalogue; see :mod:`repro.scenarios.catalog` for the shipped
scenarios and :mod:`repro.scenarios.replay` for chaos-fault layering.
"""

from repro.scenarios.catalog import CANNED, canned_timeline
from repro.scenarios.compiler import (BASE_GENERATORS, CompiledScenario,
                                      GroundTruth, compile_timeline)
from repro.scenarios.replay import (ReplayResult, replay_scenario,
                                    simulate_replay)
from repro.scenarios.scoring import (build_bench, render_report,
                                     score_scenario)
from repro.scenarios.timeline import (OVERLAY_KINDS, Overlay, Phase,
                                      PhaseSpan, ThresholdSpec, Timeline,
                                      TriggerLink, TruthWindow,
                                      WorkloadLayer)

__all__ = [
    "BASE_GENERATORS",
    "CANNED",
    "CompiledScenario",
    "GroundTruth",
    "OVERLAY_KINDS",
    "Overlay",
    "Phase",
    "PhaseSpan",
    "ReplayResult",
    "ThresholdSpec",
    "Timeline",
    "TriggerLink",
    "TruthWindow",
    "WorkloadLayer",
    "build_bench",
    "canned_timeline",
    "compile_timeline",
    "render_report",
    "replay_scenario",
    "score_scenario",
    "simulate_replay",
]
