"""Scenario CLI: ``python -m repro.scenarios run --all --seed 7``.

Subcommands:

* ``list`` — the canned catalogue with fleet/horizon/incident counts.
* ``show NAME`` — one timeline's full declarative form as JSON.
* ``run`` — compile, replay (live server by default) and score one or
  more scenarios; writes ``BENCH_scenarios.json`` and exits non-zero if
  any scenario misses a ground-truth window or breaches its error
  allowance.

The report is a pure function of ``(scenario set, seed, scale factors,
fault layer)`` — running the same command twice produces byte-identical
output, which the CI ``scenarios`` job asserts with a plain ``cmp``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import Any

from repro.scenarios.catalog import CANNED, canned_timeline
from repro.scenarios.compiler import compile_timeline
from repro.scenarios.replay import replay_scenario, simulate_replay
from repro.scenarios.scoring import build_bench, render_report, \
    score_scenario
from repro.testkit.scenarios import SCENARIOS as FAULT_SCENARIOS

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Compile, replay and score declarative incident "
                    "timelines against the live monitoring runtime.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the canned scenario catalogue")

    show = sub.add_parser("show", help="print one timeline as JSON")
    show.add_argument("name", choices=sorted(CANNED))

    run = sub.add_parser("run", help="replay and score scenarios")
    run.add_argument("--scenario", action="append", default=None,
                     choices=sorted(CANNED), metavar="NAME",
                     help="scenario to run (repeatable)")
    run.add_argument("--all", action="store_true",
                     help="run every canned scenario")
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--fleet-scale", type=float, default=1.0,
                     help="fleet-size multiplier (CI uses < 1)")
    run.add_argument("--horizon-scale", type=float, default=1.0,
                     help="phase-duration multiplier (CI uses < 1)")
    run.add_argument("--shards", type=int, default=4)
    run.add_argument("--offline", action="store_true",
                     help="drive the in-process service instead of a "
                          "live server")
    run.add_argument("--faults", default=None,
                     choices=sorted(FAULT_SCENARIOS),
                     help="layer a testkit chaos fault spec onto the "
                          "replay")
    run.add_argument("--cluster-workers", type=int, default=0,
                     help="replay through the multi-process cluster "
                          "runtime with this many workers (0 = "
                          "single-process server)")
    run.add_argument("--cluster-backend", default="subprocess",
                     choices=("inproc", "subprocess"),
                     help="cluster transport backend for "
                          "--cluster-workers")
    run.add_argument("--out", type=pathlib.Path,
                     default=pathlib.Path("BENCH_scenarios.json"))
    return parser


def _cmd_list() -> int:
    for name in sorted(CANNED):
        timeline = canned_timeline(name)
        windows = sum(len(ph.truth) for ph in timeline.phases)
        print(f"{name:22s} tasks={timeline.tasks:4d} "
              f"horizon={timeline.horizon:4d} phases={len(timeline.phases)} "
              f"declared-incidents={windows}  {timeline.description}")
    return 0


def _cmd_show(name: str) -> int:
    doc = canned_timeline(name).to_dict()
    print(json.dumps(doc, sort_keys=True, indent=2))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = sorted(CANNED) if args.all else sorted(set(args.scenario or ()))
    if not names:
        print("nothing to run: pass --all or --scenario NAME",
              file=sys.stderr)
        return 2
    fault_spec = (FAULT_SCENARIOS[args.faults]
                  if args.faults is not None else None)
    if args.cluster_workers and args.offline:
        print("--cluster-workers needs a live replay; drop --offline",
              file=sys.stderr)
        return 2

    reports: list[dict[str, Any]] = []
    for name in names:
        timeline = canned_timeline(name)
        if args.fleet_scale != 1.0 or args.horizon_scale != 1.0:
            timeline = timeline.scaled(fleet=args.fleet_scale,
                                       horizon=args.horizon_scale)
        compiled = compile_timeline(timeline, args.seed)
        if args.offline:
            result = simulate_replay(compiled, mode="volley")
        else:
            result = replay_scenario(
                compiled, shards=args.shards, fault_spec=fault_spec,
                cluster_workers=args.cluster_workers,
                cluster_backend=args.cluster_backend)
        report = score_scenario(compiled, result)
        reports.append(report)
        det = report["detection"]
        mis = report["misdetection"]
        cost = report["cost"]
        print(f"[scenarios] {name}: "
              f"windows {det['windows_detected']}/{det['windows_scoreable']}"
              f" detected (mean delay {det['mean_delay_steps']} steps), "
              f"misdetection {mis['rate']:.4f} vs err {mis['err']} "
              f"({'ok' if mis['within_err'] else 'BREACH'}), "
              f"cost saving {cost['cost_saving']:.3f} -> "
              f"{'pass' if report['passed'] else 'FAIL'}", flush=True)

    bench = build_bench(reports, {
        "seed": args.seed,
        "fleet_scale": args.fleet_scale,
        "horizon_scale": args.horizon_scale,
        "shards": args.shards,
        "mode": "offline" if args.offline else "live",
        "faults": args.faults,
        "cluster_workers": args.cluster_workers,
    })
    args.out.write_text(render_report(bench), encoding="utf-8")
    totals = bench["totals"]
    print(f"[scenarios] {totals['passed']}/{totals['scenarios']} scenarios "
          f"passed; mean misdetection {totals['mean_misdetection']:.4f}; "
          f"mean cost saving {totals['mean_cost_saving']:.3f} -> "
          f"{args.out}", flush=True)
    return 0 if bench["passed"] else 1


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "show":
            return _cmd_show(args.name)
        return _cmd_run(args)
    except BrokenPipeError:
        # Normal pipeline teardown (e.g. `show NAME | head`): point
        # stdout at devnull so interpreter exit doesn't re-raise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
