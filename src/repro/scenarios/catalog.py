"""Canned incident scenarios (the shipped timeline catalogue).

Five multi-phase incidents over the paper's three workload domains,
styled after the staged DDoS exercise timelines: each is a pure
:class:`~repro.scenarios.timeline.Timeline` value, so ``(seed, name)``
fully reproduces its run. Fleet sizes sum to a few thousand tasks at
full scale; ``Timeline.scaled`` produces the reduced CI variants.

* ``ddos-wave-adaptive`` — network ``rho`` fleet; probing below the
  threshold, a first SYN-flood wave against half the fleet, partial
  mitigation, then a stronger second wave as the attacker adapts.
* ``flash-crowd`` — WorldCup-style web objects; a match-time crowd
  multiplies every object's rate and adds absolute load on top.
* ``cascade-failure`` — latency fleet; an incipient drift in a small
  group, then a rolling cascade (staggered onsets) into saturation.
* ``diurnal-baseline`` — quiet network fleet, no declared incidents:
  the false-alarm/cost baseline and the golden-file scenario.
* ``entropy-flood`` — flow-entropy fleet with a *lower* threshold; a
  SYN flood of near-identical packets collapses entropy (the signature
  from the distributed entropy-monitoring literature).
"""

from __future__ import annotations

from repro.scenarios.timeline import (Overlay, Phase, ThresholdSpec,
                                      Timeline, TruthWindow, WorkloadLayer)

__all__ = ["CANNED", "canned_timeline"]

# Responsive adaptation for incident replays: shorter patience and an
# earlier Chebyshev onset than the library defaults, so intervals both
# grow during calm phases and collapse quickly when likelihood rises.
_ADAPT = {"patience": 5, "min_samples": 5, "stats_restart": 200}


def _ddos_wave_adaptive() -> Timeline:
    return Timeline(
        name="ddos-wave-adaptive",
        description="Two-wave SYN flood with attacker adaptation over a "
                    "diurnal rho fleet",
        tasks=512,
        base=WorkloadLayer("traffic", {
            "base_handshakes": 2000.0, "diurnal_period": 720,
            "burst_prob": 0.0005, "phase_spread": 1.0}),
        phases=(
            Phase("calm", 80),
            # Reconnaissance: elevated but sub-threshold SYN excess.
            Phase("probe", 40, overlays=(
                Overlay("ramp", peak=60.0, coverage=0.5, jitter=0.05),)),
            Phase("wave1", 70, overlays=(
                Overlay("spike", peak=260.0, start=0, length=60,
                        ramp_steps=8, coverage=0.5, jitter=0.05),),
                  truth=(TruthWindow(start=0, length=60, coverage=0.5),)),
            # Mitigation bites: residual excess stays below threshold.
            Phase("mitigation", 30, overlays=(
                Overlay("decay", peak=80.0, coverage=0.5, jitter=0.05),)),
            # The attacker adapts: wider botnet, higher rate.
            Phase("wave2-adapted", 80, overlays=(
                Overlay("spike", peak=340.0, start=10, length=60,
                        ramp_steps=6, coverage=0.8, jitter=0.05),),
                  truth=(TruthWindow(start=10, length=60, coverage=0.8),)),
            Phase("recovery", 60),
        ),
        threshold=ThresholdSpec("absolute", 120.0),
        err=0.05,
        default_interval=15.0,
        max_interval=10,
        adaptation=dict(_ADAPT),
    )


def _flash_crowd() -> Timeline:
    return Timeline(
        name="flash-crowd",
        description="Match-time flash crowd over Zipf-popular web objects",
        tasks=384,
        base=WorkloadLayer("weblogs", {
            "peak_rate": 20000.0, "num_objects": 384,
            "diurnal_period": 360, "diurnal_depth": 0.9,
            "flash_prob": 0.0}),
        phases=(
            Phase("night", 90),
            Phase("morning-ramp", 60),
            # The crowd multiplies every object's rate and adds absolute
            # request volume on top, so even cold objects cross their
            # (selectivity-derived) thresholds.
            Phase("match-flash", 60, overlays=(
                Overlay("scale", peak=5.0, start=0, length=55,
                        ramp_steps=6),
                Overlay("spike", peak=120.0, start=0, length=55,
                        ramp_steps=6, jitter=0.05),),
                  truth=(TruthWindow(start=0, length=55),)),
            Phase("cooldown", 50, overlays=(
                Overlay("decay", peak=40.0, length=30, jitter=0.05),)),
            Phase("evening", 100),
        ),
        threshold=ThresholdSpec("selectivity", 2.0),
        err=0.05,
        default_interval=1.0,
        max_interval=10,
        adaptation=dict(_ADAPT),
    )


def _cascade_failure() -> Timeline:
    return Timeline(
        name="cascade-failure",
        description="Incipient latency drift cascading into a rolling "
                    "fleet-wide saturation",
        tasks=640,
        base=WorkloadLayer("ar1", {"mean": 40.0, "phi": 0.9,
                                   "sigma": 3.0}),
        phases=(
            Phase("steady", 60),
            # A small group drifts up but stays below the threshold.
            Phase("incipient", 40, overlays=(
                Overlay("ramp", peak=35.0, coverage=0.15, jitter=0.05),)),
            # The failure rolls through 60% of the fleet: onsets are
            # staggered across 60 steps (dependency-chain collapse).
            Phase("cascade", 120, overlays=(
                Overlay("spike", peak=90.0, start=0, length=50,
                        ramp_steps=5, coverage=0.6, spread=60,
                        jitter=0.05),),
                  truth=(TruthWindow(start=0, length=50, coverage=0.6,
                                     spread=60),)),
            Phase("saturated", 40, overlays=(
                Overlay("step", peak=90.0, coverage=0.6, jitter=0.05),),
                  truth=(TruthWindow(start=0, length=40, coverage=0.6),)),
            Phase("rollback", 60, overlays=(
                Overlay("decay", peak=90.0, length=25, coverage=0.6,
                        jitter=0.05),)),
        ),
        threshold=ThresholdSpec("absolute", 100.0),
        err=0.05,
        default_interval=5.0,
        max_interval=10,
        adaptation=dict(_ADAPT),
    )


def _diurnal_baseline() -> Timeline:
    return Timeline(
        name="diurnal-baseline",
        description="Quiet diurnal fleet with no incidents: false-alarm "
                    "and probe-cost baseline",
        tasks=256,
        base=WorkloadLayer("traffic", {
            "base_handshakes": 1500.0, "diurnal_period": 360,
            "burst_prob": 0.001, "phase_spread": 1.0}),
        phases=(Phase("day-cycle", 360),),
        threshold=ThresholdSpec("selectivity", 1.0),
        err=0.05,
        default_interval=15.0,
        max_interval=10,
        adaptation=dict(_ADAPT),
    )


def _entropy_flood() -> Timeline:
    return Timeline(
        name="entropy-flood",
        description="SYN flood of near-identical packets collapsing flow "
                    "entropy below a lower threshold",
        tasks=320,
        base=WorkloadLayer("ar1", {"mean": 12.0, "phi": 0.9,
                                   "sigma": 0.3}),
        phases=(
            Phase("normal", 90),
            # The flood's packets are near-identical, so source-address
            # entropy collapses far below the healthy band.
            Phase("flood-onset", 80, overlays=(
                Overlay("entropy_shift", peak=6.0, start=0, length=70,
                        ramp_steps=8, coverage=0.4, jitter=0.05,
                        floor=0.5),),
                  truth=(TruthWindow(start=2, length=66, coverage=0.4),)),
            # Scrubbing brings entropy back up through the threshold.
            Phase("scrubbing", 50, overlays=(
                Overlay("entropy_shift", peak=3.0, start=0, length=20,
                        ramp_steps=2, coverage=0.4, jitter=0.05,
                        floor=0.5),)),
            Phase("aftermath", 80),
        ),
        threshold=ThresholdSpec("absolute", 9.0),
        err=0.05,
        default_interval=15.0,
        max_interval=10,
        direction="lower",
        adaptation=dict(_ADAPT),
    )


CANNED = {
    "cascade-failure": _cascade_failure,
    "ddos-wave-adaptive": _ddos_wave_adaptive,
    "diurnal-baseline": _diurnal_baseline,
    "entropy-flood": _entropy_flood,
    "flash-crowd": _flash_crowd,
}
"""Canonical scenario name -> timeline factory."""


def canned_timeline(name: str) -> Timeline:
    """The canned timeline for ``name`` (a fresh value each call)."""
    try:
        factory = CANNED[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r} "
            f"(expected one of {sorted(CANNED)})") from None
    return factory()
