"""Canned incident scenarios (the shipped timeline catalogue).

Seven multi-phase incidents over the paper's three workload domains,
styled after the staged DDoS exercise timelines: each is a pure
:class:`~repro.scenarios.timeline.Timeline` value, so ``(seed, name)``
fully reproduces its run. Fleet sizes sum to a few thousand tasks at
full scale; ``Timeline.scaled`` produces the reduced CI variants.

* ``ddos-wave-adaptive`` — network ``rho`` fleet; probing below the
  threshold, a first SYN-flood wave against half the fleet, partial
  mitigation, then a stronger second wave as the attacker adapts.
* ``flash-crowd`` — WorldCup-style web objects; a match-time crowd
  multiplies every object's rate and adds absolute load on top.
* ``cascade-failure`` — latency fleet; an incipient drift in a small
  group, then a rolling cascade (staggered onsets) into saturation.
* ``diurnal-baseline`` — quiet network fleet, no declared incidents:
  the false-alarm/cost baseline and the golden-file scenario.
* ``entropy-flood`` — windowed-entropy tasks (``task_type="entropy"``)
  with a *lower* threshold; a SYN flood of near-identical packets
  collapses the stream's dispersion and the substrate's entropy drains
  below the healthy band (the signature from the distributed
  entropy-monitoring literature).
* ``p99-regression`` — sketch-backed quantile tasks
  (``task_type="quantile"``): a bad deploy pushes p99 latency over its
  SLO while the median barely moves, so only the exceedance-rate
  predicate sees it.
* ``ddos-trigger`` — correlated monitoring (``repro.triggers``): one
  cheap aggregate SYN-rate task guards every expensive per-victim
  inspection task, which idles at a long suspend interval until the
  trigger's elevation crossing re-arms the fleet just ahead of the
  flood's threshold violations.
"""

from __future__ import annotations

from repro.scenarios.timeline import (Overlay, Phase, ThresholdSpec,
                                      Timeline, TriggerLink, TruthWindow,
                                      WorkloadLayer)

__all__ = ["CANNED", "canned_timeline"]

# Responsive adaptation for incident replays: shorter patience and an
# earlier Chebyshev onset than the library defaults, so intervals both
# grow during calm phases and collapse quickly when likelihood rises.
_ADAPT = {"patience": 5, "min_samples": 5, "stats_restart": 200}


def _ddos_wave_adaptive() -> Timeline:
    return Timeline(
        name="ddos-wave-adaptive",
        description="Two-wave SYN flood with attacker adaptation over a "
                    "diurnal rho fleet",
        tasks=512,
        base=WorkloadLayer("traffic", {
            "base_handshakes": 2000.0, "diurnal_period": 720,
            "burst_prob": 0.0005, "phase_spread": 1.0}),
        phases=(
            Phase("calm", 80),
            # Reconnaissance: elevated but sub-threshold SYN excess.
            Phase("probe", 40, overlays=(
                Overlay("ramp", peak=60.0, coverage=0.5, jitter=0.05),)),
            Phase("wave1", 70, overlays=(
                Overlay("spike", peak=260.0, start=0, length=60,
                        ramp_steps=8, coverage=0.5, jitter=0.05),),
                  truth=(TruthWindow(start=0, length=60, coverage=0.5),)),
            # Mitigation bites: residual excess stays below threshold.
            Phase("mitigation", 30, overlays=(
                Overlay("decay", peak=80.0, coverage=0.5, jitter=0.05),)),
            # The attacker adapts: wider botnet, higher rate.
            Phase("wave2-adapted", 80, overlays=(
                Overlay("spike", peak=340.0, start=10, length=60,
                        ramp_steps=6, coverage=0.8, jitter=0.05),),
                  truth=(TruthWindow(start=10, length=60, coverage=0.8),)),
            Phase("recovery", 60),
        ),
        threshold=ThresholdSpec("absolute", 120.0),
        err=0.05,
        default_interval=15.0,
        max_interval=10,
        adaptation=dict(_ADAPT),
    )


def _flash_crowd() -> Timeline:
    return Timeline(
        name="flash-crowd",
        description="Match-time flash crowd over Zipf-popular web objects",
        tasks=384,
        base=WorkloadLayer("weblogs", {
            "peak_rate": 20000.0, "num_objects": 384,
            "diurnal_period": 360, "diurnal_depth": 0.9,
            "flash_prob": 0.0}),
        phases=(
            Phase("night", 90),
            Phase("morning-ramp", 60),
            # The crowd multiplies every object's rate and adds absolute
            # request volume on top, so even cold objects cross their
            # (selectivity-derived) thresholds.
            Phase("match-flash", 60, overlays=(
                Overlay("scale", peak=5.0, start=0, length=55,
                        ramp_steps=6),
                Overlay("spike", peak=120.0, start=0, length=55,
                        ramp_steps=6, jitter=0.05),),
                  truth=(TruthWindow(start=0, length=55),)),
            Phase("cooldown", 50, overlays=(
                Overlay("decay", peak=40.0, length=30, jitter=0.05),)),
            Phase("evening", 100),
        ),
        threshold=ThresholdSpec("selectivity", 2.0),
        err=0.05,
        default_interval=1.0,
        max_interval=10,
        adaptation=dict(_ADAPT),
    )


def _cascade_failure() -> Timeline:
    return Timeline(
        name="cascade-failure",
        description="Incipient latency drift cascading into a rolling "
                    "fleet-wide saturation",
        tasks=640,
        base=WorkloadLayer("ar1", {"mean": 40.0, "phi": 0.9,
                                   "sigma": 3.0}),
        phases=(
            Phase("steady", 60),
            # A small group drifts up but stays below the threshold.
            Phase("incipient", 40, overlays=(
                Overlay("ramp", peak=35.0, coverage=0.15, jitter=0.05),)),
            # The failure rolls through 60% of the fleet: onsets are
            # staggered across 60 steps (dependency-chain collapse).
            Phase("cascade", 120, overlays=(
                Overlay("spike", peak=90.0, start=0, length=50,
                        ramp_steps=5, coverage=0.6, spread=60,
                        jitter=0.05),),
                  truth=(TruthWindow(start=0, length=50, coverage=0.6,
                                     spread=60),)),
            Phase("saturated", 40, overlays=(
                Overlay("step", peak=90.0, coverage=0.6, jitter=0.05),),
                  truth=(TruthWindow(start=0, length=40, coverage=0.6),)),
            Phase("rollback", 60, overlays=(
                Overlay("decay", peak=90.0, length=25, coverage=0.6,
                        jitter=0.05),)),
        ),
        threshold=ThresholdSpec("absolute", 100.0),
        err=0.05,
        default_interval=5.0,
        max_interval=10,
        adaptation=dict(_ADAPT),
    )


def _diurnal_baseline() -> Timeline:
    return Timeline(
        name="diurnal-baseline",
        description="Quiet diurnal fleet with no incidents: false-alarm "
                    "and probe-cost baseline",
        tasks=256,
        base=WorkloadLayer("traffic", {
            "base_handshakes": 1500.0, "diurnal_period": 360,
            "burst_prob": 0.001, "phase_spread": 1.0}),
        phases=(Phase("day-cycle", 360),),
        threshold=ThresholdSpec("selectivity", 1.0),
        err=0.05,
        default_interval=15.0,
        max_interval=10,
        adaptation=dict(_ADAPT),
    )


def _entropy_flood() -> Timeline:
    return Timeline(
        name="entropy-flood",
        description="SYN flood of near-identical packets collapsing "
                    "windowed source entropy below a lower threshold",
        tasks=320,
        # Source-address dispersion stream: healthy traffic spreads over
        # many 16-wide bins, so windowed entropy sits around 4 bits.
        base=WorkloadLayer("ar1", {"mean": 128.0, "phi": 0.6,
                                   "sigma": 40.0}),
        phases=(
            Phase("normal", 90),
            # The flood's packets are near-identical: the stream
            # collapses onto a handful of bins and the entropy substrate
            # drains toward zero as its window turns over.
            Phase("flood-onset", 110, overlays=(
                Overlay("scale", peak=0.04, start=0, length=60,
                        coverage=0.4, jitter=0.05),),
                  truth=(TruthWindow(start=20, length=88, coverage=0.4),)),
            # Scrubbing restores source diversity; the entropy window
            # refills with spread-out symbols and climbs back up.
            Phase("scrubbing", 50),
            Phase("aftermath", 70),
        ),
        threshold=ThresholdSpec("absolute", 2.0),
        err=0.05,
        default_interval=15.0,
        max_interval=8,
        direction="lower",
        adaptation=dict(_ADAPT),
        task_type="entropy",
        task_params={"entropy_window": 48, "bin_width": 16.0},
    )


def _p99_regression() -> Timeline:
    return Timeline(
        name="p99-regression",
        description="Tail-latency regression: a bad deploy pushes p99 "
                    "over its SLO while the median barely moves",
        tasks=384,
        # Latency stream: mean ~40 ms, stationary sd ~6.9 ms, so the
        # 80 ms SLO sits ~5.8 sigma out — calm tail mass is zero and
        # every threshold crossing is incident-caused.
        base=WorkloadLayer("ar1", {"mean": 40.0, "phi": 0.9,
                                   "sigma": 3.0}),
        phases=(
            Phase("steady", 80),
            # Canary drift: a small group runs hotter but stays clear of
            # the SLO, so the p99 predicate must not fire.
            Phase("canary", 40, overlays=(
                Overlay("ramp", peak=20.0, coverage=0.1, jitter=0.05),)),
            # Full rollout: half the fleet's latency jumps ~70 ms; the
            # exceedance rate blows through 1 - q at the onset and stays
            # elevated until the rotating sketch evicts the incident
            # (up to two sketch epochs past the overlay end).
            Phase("regression", 170, overlays=(
                Overlay("spike", peak=70.0, start=0, length=60,
                        ramp_steps=6, coverage=0.5, jitter=0.05),),
                  truth=(TruthWindow(start=4, length=160, coverage=0.5),)),
            Phase("rollback", 70),
        ),
        threshold=ThresholdSpec("absolute", 80.0),
        err=0.05,
        default_interval=5.0,
        max_interval=8,
        adaptation=dict(_ADAPT),
        task_type="quantile",
        task_params={"quantile": 0.99, "sketch_window": 64},
    )


def _ddos_trigger() -> Timeline:
    return Timeline(
        name="ddos-trigger",
        description="Cheap aggregate SYN-rate trigger guarding expensive "
                    "per-victim inspection tasks across the fleet",
        tasks=96,
        # Every stream sees the same flood geometry (coverage 1.0), so
        # rank 0 — the cheap aggregate — is a perfect necessary-condition
        # trigger for the per-victim tasks it guards.
        base=WorkloadLayer("ar1", {"mean": 40.0, "phi": 0.9,
                                   "sigma": 3.0}),
        phases=(
            # The guard disarms on the first calm observation; the whole
            # guarded sub-fleet idles at the suspend interval from here.
            Phase("healthy", 140),
            Phase("flood", 100, overlays=(
                Overlay("spike", peak=90.0, start=10, length=80,
                        ramp_steps=6, jitter=0.05),),
                  truth=(TruthWindow(start=10, length=85),)),
            # The flood decays, the trigger drops through its hysteresis
            # band, and the fleet returns to suspended sampling.
            Phase("quiet", 120),
        ),
        threshold=ThresholdSpec("absolute", 100.0),
        err=0.05,
        default_interval=1.0,
        max_interval=4,
        adaptation=dict(_ADAPT),
        # Elevation at 65: ~3.6 sigma above the healthy band (no noise
        # flapping) yet crossed two ramp steps before the first actual
        # threshold violation, so targets re-arm ahead of the incident.
        triggers=(TriggerLink(trigger=0, elevation_level=65.0,
                              suspend_interval=12, hysteresis=0.1,
                              min_hold=2),),
    )


CANNED = {
    "cascade-failure": _cascade_failure,
    "ddos-trigger": _ddos_trigger,
    "ddos-wave-adaptive": _ddos_wave_adaptive,
    "diurnal-baseline": _diurnal_baseline,
    "entropy-flood": _entropy_flood,
    "flash-crowd": _flash_crowd,
    "p99-regression": _p99_regression,
}
"""Canonical scenario name -> timeline factory."""


def canned_timeline(name: str) -> Timeline:
    """The canned timeline for ``name`` (a fresh value each call)."""
    try:
        factory = CANNED[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r} "
            f"(expected one of {sorted(CANNED)})") from None
    return factory()
