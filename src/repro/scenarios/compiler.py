"""Lowering timelines into concrete per-task trace streams.

:func:`compile_timeline` turns a ``(seed, timeline)`` pair into a
:class:`CompiledScenario`: a dense ``(horizon, tasks)`` value matrix, a
per-task threshold vector, absolute phase spans, and the absolute
ground-truth windows per task. Every random draw comes from a
:func:`repro.workloads.substream` keyed by the seed, the timeline name
and the entity (task rank, overlay), so compilation is a pure function
of its inputs: order of evaluation, fleet size changes elsewhere, or
process boundaries never reshuffle a stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.accuracy import truth_alert_indices
from repro.core.substrates import (DEFAULT_ENTROPY_WINDOW,
                                   DEFAULT_SKETCH_WINDOW, EntropyEstimator,
                                   QuantileEstimator)
from repro.exceptions import ConfigurationError
from repro.telemetry.histogram import DEFAULT_RELATIVE_ERROR
from repro.scenarios.timeline import Overlay, PhaseSpan, Timeline
from repro.triggers.plan import TriggerPlan
from repro.workloads.base import substream
from repro.workloads.synthetic import (AR1Generator, DiurnalGenerator,
                                       RandomWalkGenerator,
                                       SpikeTrainGenerator)
from repro.workloads.thresholds import threshold_for_selectivity
from repro.workloads.traffic import TrafficDifferenceGenerator
from repro.workloads.weblogs import WebWorkloadGenerator

__all__ = ["BASE_GENERATORS", "CompiledScenario", "GroundTruth",
           "compile_timeline"]

BASE_GENERATORS = ("traffic", "weblogs", "ar1", "random_walk", "diurnal",
                   "spikes")
"""Base-layer generator names the compiler can resolve."""

_PHASE_AWARE = ("traffic", "weblogs", "diurnal")


@dataclass(frozen=True, slots=True)
class GroundTruth:
    """One task's declared violation window on the absolute grid."""

    task: int
    start: int
    end: int  # exclusive


class CompiledScenario:
    """A timeline lowered onto the grid, ready to replay and score."""

    __slots__ = ("timeline", "seed", "values", "thresholds", "spans",
                 "windows", "task_names", "trigger_levels", "_monitored")

    def __init__(self, timeline: Timeline, seed: int, values: np.ndarray,
                 thresholds: np.ndarray, spans: tuple[PhaseSpan, ...],
                 windows: tuple[GroundTruth, ...],
                 trigger_levels: tuple[float, ...] = ()):
        self.timeline = timeline
        self.seed = int(seed)
        self.values = values
        self.thresholds = thresholds
        self.spans = spans
        self.windows = windows
        self.task_names = [f"{timeline.name}-{i:05d}"
                           for i in range(timeline.tasks)]
        self.trigger_levels = trigger_levels
        self._monitored: dict[int, np.ndarray] = {}

    @property
    def n_steps(self) -> int:
        return int(self.values.shape[0])

    @property
    def n_tasks(self) -> int:
        return int(self.values.shape[1])

    def sampler_threshold(self, task: int) -> float:
        """The threshold on the *monitored* statistic for ``task``.

        For value and entropy timelines this is the compiled per-task
        threshold itself. For quantile timelines the monitored statistic
        is the exceedance rate ``P(X > T)`` and the predicate
        ``p_q(X) > T`` becomes ``exceedance > 1 - q`` — the derived
        Bernoulli threshold the sampler actually watches.
        """
        if self.timeline.task_type == "quantile":
            return 1.0 - float(self.timeline.task_params["quantile"])
        return float(self.thresholds[task])

    def monitored_column(self, task: int) -> np.ndarray:
        """Full-resolution monitored statistic for ``task`` (cached).

        For value timelines this is the raw stream. For typed timelines
        the column is produced by the *same* substrate the service runs —
        updates are pushed at every grid step in replay, so a full-rate
        substrate pass here is the exact ground-truth twin of the live
        task's internal state.
        """
        if self.timeline.task_type == "value":
            return self.values[:, task]
        cached = self._monitored.get(task)
        if cached is None:
            cached = _substrate_column(self.timeline,
                                       self.values[:, task],
                                       float(self.thresholds[task]))
            self._monitored[task] = cached
        return cached

    def truth_indices(self, task: int) -> np.ndarray:
        """Grid points where ``task`` violates its threshold (sorted).

        Truth is defined on the monitored statistic: raw values for
        value timelines, the substrate-derived exceedance/entropy trace
        (against the derived sampler threshold) for typed ones.
        """
        return truth_alert_indices(self.monitored_column(task),
                                   self.sampler_threshold(task),
                                   self.timeline.direction_enum)

    def windows_for(self, task: int) -> list[tuple[int, int]]:
        """This task's ground-truth windows as ``(start, end)`` pairs."""
        return [(w.start, w.end) for w in self.windows if w.task == task]

    def trigger_plans(self) -> list[TriggerPlan]:
        """The timeline's trigger links as concrete installable plans.

        Each fleet-level :class:`~repro.scenarios.timeline.TriggerLink`
        expands into one :class:`~repro.triggers.plan.TriggerPlan` per
        guarded rank, with the compiled elevation level (quantile-derived
        levels were resolved against the pre-overlay base at compile
        time, like selectivity thresholds).
        """
        plans: list[TriggerPlan] = []
        for li, link in enumerate(self.timeline.triggers):
            targets = (link.targets if link.targets is not None
                       else tuple(t for t in range(self.n_tasks)
                                  if t != link.trigger))
            for t in targets:
                plans.append(TriggerPlan(
                    target=self.task_names[t],
                    trigger=self.task_names[link.trigger],
                    elevation_level=float(self.trigger_levels[li]),
                    suspend_interval=link.suspend_interval,
                    hysteresis=link.hysteresis,
                    min_hold=link.min_hold))
        return plans

    def guarded_tasks(self) -> list[int]:
        """Fleet ranks guarded by at least one trigger link (sorted)."""
        guarded: set[int] = set()
        for link in self.timeline.triggers:
            if link.targets is not None:
                guarded.update(link.targets)
            else:
                guarded.update(t for t in range(self.n_tasks)
                               if t != link.trigger)
        return sorted(guarded)


def compile_timeline(timeline: Timeline, seed: int) -> CompiledScenario:
    """Lower a timeline into per-task streams; pure in ``(seed, timeline)``."""
    n_steps = timeline.horizon
    n_tasks = timeline.tasks
    spans = timeline.phase_spans()

    base = np.empty((n_steps, n_tasks), dtype=float)
    for t in range(n_tasks):
        rng = substream(seed, "scenario", timeline.name, "base", t)
        base[:, t] = _base_column(timeline, t, n_steps, rng)

    thresholds = _thresholds(timeline, base)
    # Quantile-derived elevation levels come from the pre-overlay base,
    # like selectivity thresholds: the "elevated range" is defined
    # against background behaviour, not against the incident itself.
    trigger_levels = tuple(
        float(link.elevation_level) if link.elevation_level is not None
        else float(np.quantile(base[:, link.trigger],
                               link.elevation_quantile))
        for link in timeline.triggers)

    values = base  # overlays applied in place; base percentiles are done
    for pi, (phase, span) in enumerate(zip(timeline.phases, spans)):
        for oi, ov in enumerate(phase.overlays):
            covered = timeline.covered(ov.coverage)
            length = ov.length if ov.length is not None \
                else phase.duration - ov.start
            profile = _profile(ov, length)
            for rank in range(covered):
                offset = Timeline.onset_offset(ov.spread, rank, covered)
                lo = span.start + ov.start + offset
                shaped = profile
                if ov.jitter > 0.0:
                    jrng = substream(seed, "scenario", timeline.name,
                                     "overlay", pi, oi, rank)
                    shaped = profile * jrng.normal(1.0, ov.jitter, length)
                seg = values[lo:lo + length, rank]
                if ov.kind == "scale":
                    seg *= shaped
                elif ov.kind == "entropy_shift":
                    np.subtract(seg, shaped, out=seg)
                    np.maximum(seg, ov.floor, out=seg)
                else:
                    seg += shaped

    windows = []
    for phase, span in zip(timeline.phases, spans):
        for w in phase.truth:
            covered = timeline.covered(w.coverage)
            for rank in range(covered):
                offset = Timeline.onset_offset(w.spread, rank, covered)
                lo = span.start + w.start + offset
                windows.append(GroundTruth(rank, lo, lo + w.length))
    windows.sort(key=lambda w: (w.task, w.start, w.end))

    return CompiledScenario(timeline, seed, values, thresholds, spans,
                            tuple(windows), trigger_levels)


def _substrate_column(timeline: Timeline, values: np.ndarray,
                      threshold: float) -> np.ndarray:
    """Run a task-type substrate over one full-resolution column."""
    params = timeline.task_params
    n = len(values)
    out = np.empty(n, dtype=float)
    if timeline.task_type == "quantile":
        est = QuantileEstimator(
            float(params["quantile"]),
            window=int(params.get("sketch_window", DEFAULT_SKETCH_WINDOW)),
            relative_error=float(params.get("relative_error",
                                            DEFAULT_RELATIVE_ERROR)))
        for i in range(n):
            est.update(float(values[i]))
            out[i] = est.exceedance(threshold)
        return out
    est = EntropyEstimator(
        window=int(params.get("entropy_window", DEFAULT_ENTROPY_WINDOW)),
        bin_width=float(params.get("bin_width", 1.0)))
    for i in range(n):
        est.update(float(values[i]))
        out[i] = est.entropy()
    return out


def _base_column(timeline: Timeline, task: int, n_steps: int,
                 rng: np.random.Generator) -> np.ndarray:
    """One task's base stream (pre-overlay)."""
    layer = timeline.base
    params = dict(layer.params)
    kind = layer.generator
    phase_spread = float(params.pop("phase_spread", 0.0))
    phase = (float(params.pop("phase", 0.0))
             + phase_spread * task / timeline.tasks) % 1.0
    if kind not in BASE_GENERATORS:
        raise ConfigurationError(
            f"unknown base generator {kind!r} "
            f"(expected one of {BASE_GENERATORS})")
    if kind not in _PHASE_AWARE and (phase_spread or phase):
        raise ConfigurationError(
            f"base generator {kind!r} takes no phase/phase_spread")
    try:
        if kind == "traffic":
            return TrafficDifferenceGenerator(
                phase=phase, **params).generate(n_steps, rng)
        if kind == "weblogs":
            gen = WebWorkloadGenerator(**params)
            rank = task % gen.num_objects
            return gen.access_rate_trace(rank, n_steps, rng,
                                         phase=phase).values
        if kind == "ar1":
            return AR1Generator(**params).generate(n_steps, rng)
        if kind == "random_walk":
            return RandomWalkGenerator(**params).generate(n_steps, rng)
        if kind == "diurnal":
            return DiurnalGenerator(phase=phase,
                                    **params).generate(n_steps, rng)
        return SpikeTrainGenerator(**params).generate(n_steps, rng)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad params for base generator {kind!r}: {exc}") from exc


def _thresholds(timeline: Timeline, base: np.ndarray) -> np.ndarray:
    spec = timeline.threshold
    n_tasks = base.shape[1]
    if spec.kind == "absolute":
        return np.full(n_tasks, float(spec.value))
    return np.array([
        threshold_for_selectivity(base[:, t], spec.value,
                                  timeline.direction_enum)
        for t in range(n_tasks)])


def _profile(ov: Overlay, length: int) -> np.ndarray:
    """The overlay's magnitude profile over its footprint."""
    if ov.kind == "ramp":
        return ov.peak * np.arange(1, length + 1, dtype=float) / length
    if ov.kind == "decay":
        return ov.peak * np.arange(length, 0, -1, dtype=float) / length
    if ov.kind == "step":
        return np.full(length, float(ov.peak))
    if ov.kind == "scale":
        return np.full(length, float(ov.peak))
    # spike / entropy_shift: ramp up, hold, ramp down (SYN-flood shape).
    ramp = min(ov.ramp_steps, max(1, length // 2))
    up = ov.peak * np.arange(1, ramp + 1, dtype=float) / ramp
    hold = max(0, length - 2 * ramp)
    shape = np.concatenate([up, np.full(hold, float(ov.peak)), up[::-1]])
    return shape[:length]
