"""Replaying compiled scenarios against the live runtime.

:func:`replay_scenario` is the fleet-scale path: it spins up a real
:class:`~repro.runtime.server.RuntimeServer` on an ephemeral loopback
port inside one event loop, registers the whole fleet over the wire,
feeds one ``offer_batch`` frame per grid step through the loadgen path,
polls the decision-trace ring incrementally, and collects every task's
alerts, sample count and final interval back over the wire. A testkit
:class:`~repro.testkit.faults.FaultSpec` can be layered on top: the
fault hook arms only for the feed (registration and final collection
stay clean), connection-killing faults are survived by reconnecting
without resending (at-most-once, like a real collector), and everything
stays a deterministic function of ``(timeline, seed, spec)``.

:func:`simulate_replay` is the offline twin used by the scorer's
mutation checks: it drives the same per-task update sequence directly
through a :class:`~repro.service.MonitoringService` (``volley`` mode),
or through two deliberately broken samplers — ``always`` (samples every
grid point) and ``never`` (samples nothing) — that a correct scorer
must score as maximal-cost/zero-delay and as a mis-detection breach.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from repro.config import RuntimeConfig
from repro.core.adaptation import AdaptationConfig
from repro.core.task import TaskSpec
from repro.exceptions import ConfigurationError, ProtocolError
from repro.runtime.client import AsyncRuntimeClient
from repro.runtime.server import RuntimeServer
from repro.scenarios.compiler import CompiledScenario
from repro.service import MonitoringService
from repro.testkit.faults import (FaultPlan, FaultSpec, NOOP_HOOK,
                                  PlanFaultHook)

__all__ = ["ReplayResult", "replay_scenario", "simulate_replay"]

SIM_MODES = ("volley", "always", "never")

_COUNTER_KEYS = ("offered", "applied", "consumed", "shed", "rejected",
                 "alerts")


@dataclass
class ReplayResult:
    """Everything a replay observed, per task and in aggregate.

    Deliberately free of wall-clock, ports and latencies so a scored
    report built from it is byte-reproducible.
    """

    mode: str
    samples: list[int]
    intervals: list[int]
    alert_steps: list[list[int]]
    counters: dict[str, int]
    trace_events: dict[str, int] = field(default_factory=dict)
    trace_dropped: int = 0
    reconnects: int = 0
    lost_updates: int = 0
    injected: dict[str, int] | None = None
    phase_samples: list[list[int]] | None = None
    triggers: dict[str, Any] | None = None


def _adaptation(timeline_overrides: dict[str, Any]) -> AdaptationConfig:
    try:
        return AdaptationConfig(**timeline_overrides)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad adaptation overrides {timeline_overrides}: {exc}") from exc


def replay_scenario(compiled: CompiledScenario, shards: int = 4,
                    fault_spec: FaultSpec | None = None,
                    fault_seed: int | None = None,
                    trace_capacity: int = 65536,
                    cluster_workers: int = 0,
                    cluster_backend: str = "subprocess") -> ReplayResult:
    """Replay a compiled scenario through a live runtime server.

    With ``cluster_workers > 0`` the scenario replays through the
    multi-process cluster runtime (:mod:`repro.cluster`) instead of a
    single-process server — the sampler decisions, alerts and scoring
    must come out identical, which is exactly what the CI cluster-smoke
    job asserts. Fault injection hooks live inside the single-process
    server's shard loop, so faults and clusters are mutually exclusive.
    """
    if fault_spec is not None and fault_spec.crash_fractions:
        raise ConfigurationError(
            "crash_fractions are not supported by scenario replay; use "
            "the testkit conformance driver for crash/restart scenarios")
    if cluster_workers and fault_spec is not None:
        raise ConfigurationError(
            "fault injection is not supported by cluster replay; fault "
            "hooks are a single-process server feature (chaos against "
            "the cluster is the testkit SIGKILL matrix)")
    return asyncio.run(_replay(compiled, shards, fault_spec, fault_seed,
                               trace_capacity, int(cluster_workers),
                               cluster_backend))


async def _replay(compiled: CompiledScenario, shards: int,
                  fault_spec: FaultSpec | None, fault_seed: int | None,
                  trace_capacity: int, cluster_workers: int,
                  cluster_backend: str) -> ReplayResult:
    timeline = compiled.timeline
    n_steps, n_tasks = compiled.values.shape

    hook = NOOP_HOOK
    plan: FaultPlan | None = None
    if fault_spec is not None:
        plan = FaultPlan(compiled.seed if fault_seed is None
                         else int(fault_seed), fault_spec)
        hook = PlanFaultHook(plan)
        hook.armed = False
        hook.checkpoint_armed = False

    if cluster_workers:
        from repro.cluster.server import ClusterServer
        from repro.config import ClusterConfig

        cluster_config = ClusterConfig(
            workers=cluster_workers,
            shards=max(shards, cluster_workers),
            backend=cluster_backend, port=0,
            queue_depth=max(1024, n_steps + 16),
            max_batch=max(8192, n_tasks),
            trace_capacity=trace_capacity)
        server = ClusterServer(cluster_config,
                               adaptation=_adaptation(timeline.adaptation))
    else:
        config = RuntimeConfig(
            shards=shards, port=0,
            queue_depth=max(1024, n_steps + 16),
            max_batch=max(8192, n_tasks),
            trace_capacity=trace_capacity,
            checkpoint_interval=3600.0)
        server = RuntimeServer(config,
                               adaptation=_adaptation(timeline.adaptation),
                               fault_hook=hook)
    await server.start()
    assert server.tcp_port is not None
    client = AsyncRuntimeClient(port=server.tcp_port)

    trace_events: dict[str, int] = {}
    trace_state = {"cursor": 0, "dropped": 0}
    stats = {"reconnects": 0, "lost": 0}

    async def reconnect() -> None:
        await client.close()
        stats["reconnects"] += 1

    async def poll_trace() -> None:
        # The ring keeps events until overwritten, so a failed poll loses
        # nothing — the cursor stays put and the next poll catches up.
        try:
            reply = await client.trace(since=trace_state["cursor"])
        except (ProtocolError, ConnectionError, OSError):
            await reconnect()
            return
        trace_state["cursor"] = int(reply["next_seq"])
        trace_state["dropped"] = int(reply["dropped"])
        for event in reply["events"]:
            kind = str(event.get("kind", "?"))
            trace_events[kind] = trace_events.get(kind, 0) + 1

    # Typed timelines register through the same declarative config keys
    # the wire schema exposes; the server derives the sampler-facing
    # spec (e.g. the 1 - q exceedance threshold) at registration.
    typed_keys: dict[str, Any] = {}
    if timeline.task_type != "value":
        typed_keys["type"] = timeline.task_type
        typed_keys.update(timeline.task_params)

    plans = compiled.trigger_plans()
    boundaries = ({span.end for span in compiled.spans} if plans
                  else set())
    phase_samples: list[list[int]] = []

    try:
        for t, name in enumerate(compiled.task_names):
            await client.register_task(
                name, float(compiled.thresholds[t]),
                error_allowance=timeline.err,
                default_interval=timeline.default_interval,
                max_interval=timeline.max_interval,
                direction=timeline.direction,
                **typed_keys)
        for trigger_plan in plans:
            reply = await client.request({"op": "trigger_install",
                                          "plan": trigger_plan.to_dict()})
            if not reply.get("ok"):
                raise ConfigurationError(
                    f"cannot install trigger plan for "
                    f"{trigger_plan.target!r}: {reply.get('error')}")

        skewed = (plan is not None and fault_spec is not None
                  and fault_spec.clock_skew_rate > 0.0
                  and fault_spec.clock_skew_max > 0)
        # Poll often enough that the ring can never wrap between polls
        # even if every update produced an event.
        poll_every = max(1, trace_capacity // (4 * n_tasks))
        if hook is not NOOP_HOOK:
            hook.armed = True
        values = compiled.values
        names = compiled.task_names
        max_batch = max(8192, n_tasks)
        for step in range(n_steps):
            row = values[step]
            if skewed:
                assert plan is not None
                batch = [[names[t], step + plan.skew(t, step),
                          float(row[t])] for t in range(n_tasks)]
            else:
                batch = [[names[t], step, float(row[t])]
                         for t in range(n_tasks)]
            for lo in range(0, n_tasks, max_batch):
                chunk = batch[lo:lo + max_batch]
                try:
                    await client.offer_batch(chunk)
                except (ProtocolError, ConnectionError, OSError):
                    # At-most-once: a collector whose connection died
                    # mid-frame does not know what landed — drop, not
                    # resend, exactly like the chaos conformance driver.
                    await reconnect()
                    stats["lost"] += len(chunk)
            if plans and cluster_workers:
                # Cluster edges are pump-propagated (not synchronous like
                # the single-process sink); pumping every step keeps the
                # guard's edge latency at one grid step and the run a
                # deterministic function of the inputs, heartbeat or not.
                await client.request({"op": "trigger_plans"})
            if (step + 1) in boundaries:
                # Phase-boundary sample snapshots feed the scorer's
                # per-phase probe-saving accounting for guarded fleets.
                await server.drain()
                snap = []
                for name in names:
                    info = await client.task_info(name)
                    snap.append(int(info["samples_taken"]))
                phase_samples.append(snap)
            if (step + 1) % poll_every == 0:
                await poll_trace()

        # Shard drain runs while the hook is still armed (apply faults
        # land deterministically), then the collection phase is clean.
        await server.drain()
        if hook is not NOOP_HOOK:
            hook.armed = False
        await poll_trace()

        server_stats = await client.stats()
        counters = {key: int(server_stats["totals"][key])
                    for key in _COUNTER_KEYS}

        trigger_stats: dict[str, Any] | None = None
        if plans:
            reply = await client.request({"op": "trigger_plans"})
            if reply.get("ok"):
                trigger_stats = {
                    "plans": len(reply.get("plans", ())),
                    "edges": dict(reply.get("edges", {})),
                    "suspensions": int(reply.get("suspensions", 0)),
                    "probe_cost_saved": float(
                        reply.get("probe_cost_saved", 0.0)),
                }

        samples = [0] * n_tasks
        intervals = [0] * n_tasks
        alert_steps: list[list[int]] = [[] for _ in range(n_tasks)]
        for t, name in enumerate(names):
            info = await client.task_info(name)
            samples[t] = int(info["samples_taken"])
            intervals[t] = int(info["interval"])
            raised = await client.alerts(name)
            alert_steps[t] = sorted({int(a[0]) for a in raised})
    finally:
        await client.close()
        await server.shutdown()

    return ReplayResult(
        mode="live",
        samples=samples,
        intervals=intervals,
        alert_steps=alert_steps,
        counters=counters,
        trace_events=dict(sorted(trace_events.items())),
        trace_dropped=trace_state["dropped"],
        reconnects=stats["reconnects"],
        lost_updates=stats["lost"],
        injected=(dict(hook.injected)
                  if isinstance(hook, PlanFaultHook) else None),
        phase_samples=phase_samples if plans else None,
        triggers=trigger_stats,
    )


def simulate_replay(compiled: CompiledScenario,
                    mode: str = "volley") -> ReplayResult:
    """Offline replay: the in-process sampler, or a planted-broken one.

    ``volley`` drives the real :class:`~repro.service.MonitoringService`
    with the exact update sequence the live replay sends, so its alerts
    and sample counts must match a fault-free :func:`replay_scenario`
    bit for bit. ``always`` and ``never`` are the scorer mutation
    probes: a sampler that samples every grid point (zero detection
    delay, maximal cost) and one that never samples (total
    mis-detection).
    """
    if mode not in SIM_MODES:
        raise ConfigurationError(
            f"unknown simulate mode {mode!r} (expected one of {SIM_MODES})")
    timeline = compiled.timeline
    n_steps, n_tasks = compiled.values.shape

    has_triggers = bool(timeline.triggers)
    if mode == "always":
        alert_steps = [compiled.truth_indices(t).tolist()
                       for t in range(n_tasks)]
        return ReplayResult(
            mode="sim-always",
            samples=[n_steps] * n_tasks,
            intervals=[1] * n_tasks,
            alert_steps=alert_steps,
            counters=_sim_counters(n_steps, n_tasks, n_steps * n_tasks,
                                   sum(len(a) for a in alert_steps)),
            phase_samples=([[span.end] * n_tasks
                            for span in compiled.spans]
                           if has_triggers else None))
    if mode == "never":
        return ReplayResult(
            mode="sim-never",
            samples=[0] * n_tasks,
            intervals=[timeline.max_interval] * n_tasks,
            alert_steps=[[] for _ in range(n_tasks)],
            counters=_sim_counters(n_steps, n_tasks, 0, 0),
            phase_samples=([[0] * n_tasks for _ in compiled.spans]
                           if has_triggers else None))

    service = MonitoringService(_adaptation(timeline.adaptation))
    direction = timeline.direction_enum
    params = timeline.task_params
    for t, name in enumerate(compiled.task_names):
        common = dict(error_allowance=timeline.err,
                      default_interval=timeline.default_interval,
                      max_interval=timeline.max_interval,
                      direction=direction)
        if timeline.task_type == "quantile":
            service.add_quantile_task(
                name, threshold=float(compiled.thresholds[t]),
                quantile=float(params["quantile"]),
                **_substrate_kwargs(params, "quantile"), **common)
        elif timeline.task_type == "entropy":
            service.add_entropy_task(
                name, threshold=float(compiled.thresholds[t]),
                **_substrate_kwargs(params, "entropy"), **common)
        else:
            service.add_task(name, TaskSpec(
                threshold=float(compiled.thresholds[t]),
                name=name, **common))
    values = compiled.values
    names = compiled.task_names

    # Trigger plans route synchronously here — the exact twin of the
    # single-process server's sink (RuntimeServer._on_trigger_edge).
    plans = compiled.trigger_plans()
    edges = {"arm": 0, "disarm": 0}
    if plans:
        by_trigger: dict[str, list] = {}
        for trigger_plan in plans:
            service.install_trigger_plan(trigger_plan)
            by_trigger.setdefault(trigger_plan.trigger,
                                  []).append(trigger_plan)

        def _route_edge(event: dict[str, Any]) -> None:
            armed = event["op"] == "arm"
            for routed in by_trigger.get(str(event["trigger"]), ()):
                service.set_trigger_armed(routed.target, armed)
                edges["arm" if armed else "disarm"] += 1

        service.set_trigger_sink(_route_edge)
    boundaries = ({span.end for span in compiled.spans} if plans
                  else set())
    phase_samples: list[list[int]] = []

    for step in range(n_steps):
        row = values[step]
        for t in range(n_tasks):
            service.offer_fast(names[t], float(row[t]), step)
        if (step + 1) in boundaries:
            phase_samples.append([service.samples_taken(name)
                                  for name in names])
    samples = [service.samples_taken(name) for name in names]
    alert_steps = [sorted({a.time_index for a in service.alerts(name)})
                   for name in names]
    trigger_stats: dict[str, Any] | None = None
    if plans:
        suspensions, saved = service.trigger_accounting()
        trigger_stats = {"plans": len(plans), "edges": dict(edges),
                         "suspensions": suspensions,
                         "probe_cost_saved": saved}
    return ReplayResult(
        mode="sim-volley",
        samples=samples,
        intervals=[service.interval(name) for name in names],
        alert_steps=alert_steps,
        counters=_sim_counters(n_steps, n_tasks, sum(samples),
                               sum(len(a) for a in alert_steps)),
        phase_samples=phase_samples if plans else None,
        triggers=trigger_stats)


def _substrate_kwargs(params: dict[str, Any], kind: str) -> dict[str, Any]:
    """Optional substrate kwargs present in a timeline's task_params."""
    wanted = (("sketch_window", "relative_error") if kind == "quantile"
              else ("entropy_window", "bin_width"))
    return {key: params[key] for key in wanted if key in params}


def _sim_counters(n_steps: int, n_tasks: int, consumed: int,
                  alerts: int) -> dict[str, int]:
    offered = n_steps * n_tasks
    return {"offered": offered, "applied": offered, "consumed": consumed,
            "shed": 0, "rejected": 0, "alerts": alerts}
