"""Scoring a replay against a scenario's ground truth.

The scorer joins what the runtime detected (per-task alert steps,
sample counts — collected over the wire or from the offline simulator)
against what the compiled timeline declares (per-task threshold
crossings and ground-truth incident windows) and emits one report per
scenario:

* **detection delay** — per declared window, grid steps from the first
  *actual* threshold crossing inside the window to the first alert in
  it. Measuring from the first crossing (not the window edge) makes a
  perfect always-sampler score exactly zero, which is what the mutation
  check pins down.
* **mis-detection rate** — the paper's point-level metric: the fraction
  of violating grid points that were never sampled, compared against
  the configured error allowance ``err``.
* **false-alarm rate** — alerts raised outside every declared window
  (background-noise crossings), per benign grid point.
* **probe cost** — samples taken vs. the periodic-``Id`` baseline
  (sampling ratio / cost saving).

Reports contain only deterministic quantities — no wall-clock, ports or
latencies — and every float is rounded before serialisation, so
:func:`render_report` output is byte-reproducible from
``(timeline, seed)`` alone.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.scenarios.compiler import CompiledScenario
from repro.scenarios.replay import ReplayResult

__all__ = ["build_bench", "render_report", "score_scenario"]


def _round(x: float) -> float:
    return round(float(x), 9)


def score_scenario(compiled: CompiledScenario,
                   result: ReplayResult) -> dict[str, Any]:
    """Score one replay; the report is a pure function of its inputs."""
    timeline = compiled.timeline
    n_steps, n_tasks = compiled.values.shape

    truth_points = 0
    detected_points = 0
    false_alarms = 0
    benign_steps = 0
    delays: list[int] = []
    windows_total = len(compiled.windows)
    windows_missed = 0
    windows_undetectable = 0

    for t in range(n_tasks):
        truth = compiled.truth_indices(t)
        alerts = np.asarray(result.alert_steps[t], dtype=int)
        truth_points += int(truth.size)
        detected_points += int(np.intersect1d(alerts, truth,
                                              assume_unique=True).size)

        windows = compiled.windows_for(t)
        for start, end in windows:
            in_window = truth[(truth >= start) & (truth < end)]
            if in_window.size == 0:
                # The overlay never actually crossed the threshold here
                # (e.g. a night-time near-zero stream): no sampler could
                # detect it, so it is excluded from delay/miss scoring
                # but counted so nothing disappears silently.
                windows_undetectable += 1
                continue
            first_truth = int(in_window[0])
            hits = alerts[(alerts >= first_truth) & (alerts < end)]
            if hits.size == 0:
                windows_missed += 1
            else:
                delays.append(int(hits[0]) - first_truth)

        covered = np.zeros(n_steps, dtype=bool)
        for start, end in windows:
            covered[start:end] = True
        benign_steps += int(n_steps - np.count_nonzero(covered))
        if alerts.size:
            # Clock-skew faults can push an alert's step off the grid;
            # off-grid alerts are false alarms by definition.
            on_grid = alerts[(alerts >= 0) & (alerts < n_steps)]
            false_alarms += int(np.count_nonzero(~covered[on_grid]))
            false_alarms += int(alerts.size - on_grid.size)

    misdetection = (0.0 if truth_points == 0
                    else 1.0 - detected_points / truth_points)
    within_err = misdetection <= timeline.err
    samples = int(sum(result.samples))
    grid_points = n_steps * n_tasks
    sampling_ratio = samples / grid_points
    delays_sorted = sorted(delays)
    scoreable = windows_total - windows_undetectable
    detected_windows = len(delays)

    def _delay_at(q: float) -> float:
        if not delays_sorted:
            return 0.0
        index = min(len(delays_sorted) - 1,
                    max(0, int(np.ceil(q * len(delays_sorted))) - 1))
        return float(delays_sorted[index])

    mean_delay = (float(np.mean(delays_sorted)) if delays_sorted else 0.0)
    passed = bool(within_err and windows_missed == 0)

    config: dict[str, Any] = {
        "err": _round(timeline.err),
        "default_interval": _round(timeline.default_interval),
        "max_interval": timeline.max_interval,
        "direction": timeline.direction,
        "threshold": timeline.threshold.to_dict(),
    }
    # Typed keys appear only for non-value timelines so value-scenario
    # reports (and the golden-file pin) stay byte-identical.
    if timeline.task_type != "value":
        config["task_type"] = timeline.task_type
        config["task_params"] = dict(timeline.task_params)

    report: dict[str, Any] = {
        "scenario": timeline.name,
        "seed": compiled.seed,
        "mode": result.mode,
        "fleet": {"tasks": n_tasks, "steps": n_steps,
                  "grid_points": grid_points},
        "config": config,
        "phases": [{"name": s.name, "start": s.start, "end": s.end}
                   for s in compiled.spans],
        "truth": {
            "windows": windows_total,
            "undetectable_windows": windows_undetectable,
            "violation_points": truth_points,
        },
        "detection": {
            "windows_scoreable": scoreable,
            "windows_detected": detected_windows,
            "windows_missed": windows_missed,
            "mean_delay_steps": _round(mean_delay),
            "p95_delay_steps": _round(_delay_at(0.95)),
            "max_delay_steps": (float(delays_sorted[-1])
                                if delays_sorted else 0.0),
            "mean_delay_seconds": _round(
                mean_delay * timeline.default_interval),
        },
        "misdetection": {
            "rate": _round(misdetection),
            "err": _round(timeline.err),
            "within_err": bool(within_err),
            "truth_points": truth_points,
            "detected_points": detected_points,
        },
        "false_alarms": {
            "alerts_outside_windows": false_alarms,
            "benign_steps": benign_steps,
            "rate": _round(false_alarms / benign_steps
                           if benign_steps else 0.0),
        },
        "cost": {
            "samples": samples,
            "grid_points": grid_points,
            "sampling_ratio": _round(sampling_ratio),
            "cost_saving": _round(1.0 - sampling_ratio),
        },
        "runtime": {
            "counters": dict(result.counters),
            "trace_events": dict(result.trace_events),
            "trace_dropped": result.trace_dropped,
            "reconnects": result.reconnects,
            "lost_updates": result.lost_updates,
            "injected": result.injected,
        },
        "passed": passed,
    }
    triggers = _score_triggers(compiled, result)
    if triggers is not None:
        report["triggers"] = triggers
    return report


def _score_triggers(compiled: CompiledScenario,
                    result: ReplayResult) -> dict[str, Any] | None:
    """Probe-saving accounting for correlation-guarded fleets.

    The guard's value proposition is entirely in *healthy* phases
    (phases that declare no ground-truth windows): a disarmed target
    idles at its suspend interval, so the guarded sub-fleet's sampling
    drops well below the full-rate baseline there. Incident-phase
    fidelity is already covered by the misdetection/delay sections.
    """
    timeline = compiled.timeline
    if not timeline.triggers or result.phase_samples is None:
        return None
    guarded = compiled.guarded_tasks()
    spans = compiled.spans
    healthy = [i for i, phase in enumerate(timeline.phases)
               if not phase.truth]
    healthy_steps = 0
    healthy_samples = 0
    for i in healthy:
        span = spans[i]
        healthy_steps += (span.end - span.start) * len(guarded)
        for t in guarded:
            before = result.phase_samples[i - 1][t] if i else 0
            healthy_samples += result.phase_samples[i][t] - before
    saving = (1.0 - healthy_samples / healthy_steps
              if healthy_steps else 0.0)
    section: dict[str, Any] = {
        "plans": len(compiled.trigger_plans()),
        "guarded_tasks": len(guarded),
        "healthy_phases": [timeline.phases[i].name for i in healthy],
        "healthy_steps": healthy_steps,
        "healthy_samples": healthy_samples,
        "healthy_saving": _round(saving),
    }
    if result.triggers is not None:
        section["runtime"] = dict(result.triggers)
    return section


def render_report(report: dict[str, Any]) -> str:
    """Canonical byte-stable serialisation (same discipline as testkit)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def build_bench(reports: list[dict[str, Any]],
                meta: dict[str, Any]) -> dict[str, Any]:
    """Assemble ``BENCH_scenarios.json`` from per-scenario reports."""
    ordered = sorted(reports, key=lambda r: r["scenario"])
    n = len(ordered)
    doc: dict[str, Any] = {"bench_scenarios_version": 1}
    doc.update(meta)
    doc["scenarios"] = ordered
    doc["totals"] = {
        "scenarios": n,
        "passed": sum(1 for r in ordered if r["passed"]),
        "failed": sum(1 for r in ordered if not r["passed"]),
        "windows": sum(r["truth"]["windows"] for r in ordered),
        "windows_missed": sum(r["detection"]["windows_missed"]
                              for r in ordered),
        "mean_misdetection": _round(
            sum(r["misdetection"]["rate"] for r in ordered) / n if n
            else 0.0),
        "mean_sampling_ratio": _round(
            sum(r["cost"]["sampling_ratio"] for r in ordered) / n if n
            else 0.0),
        "mean_cost_saving": _round(
            sum(r["cost"]["cost_saving"] for r in ordered) / n if n
            else 0.0),
    }
    doc["passed"] = all(r["passed"] for r in ordered)
    return doc
