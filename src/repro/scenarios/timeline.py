"""Declarative incident timelines (the scenario engine's source language).

A :class:`Timeline` describes a fleet-scale incident the way the staged
DDoS exercise scripts do: a sequence of named :class:`Phase` objects
("calm", "probe", "wave1", ...), each with a duration in default-interval
grid steps, zero or more workload :class:`Overlay` layers (ramps, spikes,
decays, entropy collapses) painted on top of a shared base workload, and
declared ground-truth :class:`TruthWindow` spans in which the incident is
supposed to violate the monitoring threshold.

Everything is validated fail-closed at construction: phase durations
partition the horizon by definition, and every overlay/window footprint
(including its onset spread across the affected sub-fleet) must fit
inside its phase. Compilation into concrete per-task traces is the job of
:mod:`repro.scenarios.compiler`; a ``(seed, timeline)`` pair fully
determines a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Mapping

from repro.core.substrates import TASK_TYPES
from repro.exceptions import ConfigurationError
from repro.types import ThresholdDirection

__all__ = [
    "OVERLAY_KINDS",
    "Overlay",
    "Phase",
    "PhaseSpan",
    "ThresholdSpec",
    "Timeline",
    "TriggerLink",
    "TruthWindow",
    "WorkloadLayer",
]

OVERLAY_KINDS = ("ramp", "decay", "step", "spike", "scale", "entropy_shift")
"""Supported overlay shapes.

``ramp`` rises linearly 0 -> peak; ``decay`` falls peak -> 0; ``step``
holds at peak; ``spike`` ramps up, holds, ramps down (SYN-flood shape);
``scale`` multiplies the base by ``peak`` (flash-crowd shape);
``entropy_shift`` *subtracts* a spike-shaped amount, clamped at
``floor`` — the entropy-collapse signature of a flood of near-identical
packets.
"""

_THRESHOLD_KINDS = ("absolute", "selectivity")


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ConfigurationError(message)


@dataclass(frozen=True, slots=True)
class Overlay:
    """One workload layer painted over a phase's base traffic.

    Args:
        kind: shape, one of :data:`OVERLAY_KINDS`.
        peak: magnitude — additive units for the additive kinds, a
            multiplicative factor for ``scale``, the subtracted depth for
            ``entropy_shift``.
        start: onset offset from the phase start, in grid steps.
        length: footprint length in steps (``None`` = to the phase end).
        ramp_steps: shoulder length for ``spike``/``entropy_shift``.
        coverage: fraction of the fleet affected; the affected tasks are
            the first ``ceil(coverage * tasks)`` ranks, so nested
            incidents (incipient group inside the cascade group) overlap.
        spread: total steps over which affected-task onsets are staggered
            (rank 0 starts at ``start``, the last affected rank at
            ``start + spread``) — rolling/cascading failures.
        jitter: per-step multiplicative noise sigma on the profile.
        floor: clamp applied after ``entropy_shift`` subtraction.
    """

    kind: str
    peak: float
    start: int = 0
    length: int | None = None
    ramp_steps: int = 4
    coverage: float = 1.0
    spread: int = 0
    jitter: float = 0.0
    floor: float = 0.0

    def __post_init__(self) -> None:
        _require(self.kind in OVERLAY_KINDS,
                 f"unknown overlay kind {self.kind!r} "
                 f"(expected one of {OVERLAY_KINDS})")
        _require(self.start >= 0,
                 f"overlay start must be >= 0, got {self.start}")
        _require(self.length is None or self.length >= 1,
                 f"overlay length must be >= 1, got {self.length}")
        _require(self.ramp_steps >= 1,
                 f"ramp_steps must be >= 1, got {self.ramp_steps}")
        _require(0.0 < self.coverage <= 1.0,
                 f"coverage must be in (0, 1], got {self.coverage}")
        _require(self.spread >= 0,
                 f"spread must be >= 0, got {self.spread}")
        _require(self.spread == 0 or self.length is not None,
                 "an overlay with spread > 0 needs an explicit length")
        _require(self.jitter >= 0.0,
                 f"jitter must be >= 0, got {self.jitter}")
        if self.kind == "scale":
            _require(self.peak > 0.0,
                     f"scale overlays need peak > 0, got {self.peak}")

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in
                dataclass_fields(self)}

    @classmethod
    def from_dict(cls, entry: Mapping[str, Any]) -> "Overlay":
        return cls(**_known_kwargs(cls, entry))


@dataclass(frozen=True, slots=True)
class TruthWindow:
    """A declared ground-truth violation span, relative to its phase.

    The scorer joins detected alerts against these windows; coverage and
    spread follow the same sub-fleet semantics as :class:`Overlay`, so a
    window is normally authored with the same geometry as the overlay
    that causes it.
    """

    start: int
    length: int
    coverage: float = 1.0
    spread: int = 0

    def __post_init__(self) -> None:
        _require(self.start >= 0,
                 f"window start must be >= 0, got {self.start}")
        _require(self.length >= 1,
                 f"window length must be >= 1, got {self.length}")
        _require(0.0 < self.coverage <= 1.0,
                 f"coverage must be in (0, 1], got {self.coverage}")
        _require(self.spread >= 0,
                 f"spread must be >= 0, got {self.spread}")

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in
                dataclass_fields(self)}

    @classmethod
    def from_dict(cls, entry: Mapping[str, Any]) -> "TruthWindow":
        return cls(**_known_kwargs(cls, entry))


@dataclass(frozen=True, slots=True)
class TriggerLink:
    """A declarative correlation guard over the fleet (DESIGN.md S32).

    One cheap task (by fleet rank) guards a set of expensive targets:
    while the trigger's stream sits below its elevation level, every
    target idles at ``suspend_interval`` instead of its full
    violation-likelihood rate — the paper's SS-A state correlation.

    Args:
        trigger: fleet rank of the cheap trigger task.
        targets: guarded fleet ranks (``None`` = every other rank).
        elevation_quantile: when ``elevation_level`` is ``None``, the
            level is this quantile of the trigger's *base* (pre-overlay)
            trace — the paper's elevated-range rule, derived the same
            way selectivity thresholds are.
        elevation_level: absolute elevation level (overrides the
            quantile rule).
        suspend_interval: idle sampling interval while disarmed.
        hysteresis: relative dead band below the level before disarming.
        min_hold: minimum steps between arm/disarm transitions.
    """

    trigger: int
    targets: tuple[int, ...] | None = None
    elevation_quantile: float = 0.8
    elevation_level: float | None = None
    suspend_interval: int = 10
    hysteresis: float = 0.1
    min_hold: int = 5

    def __post_init__(self) -> None:
        _require(self.trigger >= 0,
                 f"trigger rank must be >= 0, got {self.trigger}")
        if self.targets is not None:
            object.__setattr__(self, "targets",
                               tuple(int(t) for t in self.targets))
            _require(len(self.targets) >= 1,
                     "explicit targets must be non-empty (use None for "
                     "the whole fleet)")
            _require(all(t >= 0 for t in self.targets),
                     f"target ranks must be >= 0, got {self.targets}")
            _require(self.trigger not in self.targets,
                     f"trigger rank {self.trigger} cannot guard itself")
        _require(0.0 < self.elevation_quantile < 1.0,
                 f"elevation_quantile must be in (0, 1), "
                 f"got {self.elevation_quantile}")
        _require(self.suspend_interval >= 2,
                 f"suspend_interval must be >= 2, "
                 f"got {self.suspend_interval}")
        _require(0.0 <= self.hysteresis < 1.0,
                 f"hysteresis must be in [0, 1), got {self.hysteresis}")
        _require(self.min_hold >= 0,
                 f"min_hold must be >= 0, got {self.min_hold}")

    def to_dict(self) -> dict[str, Any]:
        entry = {f.name: getattr(self, f.name) for f in
                 dataclass_fields(self)}
        if entry["targets"] is not None:
            entry["targets"] = list(entry["targets"])
        return entry

    @classmethod
    def from_dict(cls, entry: Mapping[str, Any]) -> "TriggerLink":
        kwargs = _known_kwargs(cls, entry)
        if kwargs.get("targets") is not None:
            kwargs["targets"] = tuple(int(t) for t in kwargs["targets"])
        return cls(**kwargs)


@dataclass(frozen=True, slots=True)
class Phase:
    """A named span of the timeline with its overlays and truth windows."""

    name: str
    duration: int
    overlays: tuple[Overlay, ...] = ()
    truth: tuple[TruthWindow, ...] = ()

    def __post_init__(self) -> None:
        _require(bool(self.name), "phase name must be non-empty")
        _require(self.duration >= 1,
                 f"phase duration must be >= 1, got {self.duration}")
        object.__setattr__(self, "overlays", tuple(self.overlays))
        object.__setattr__(self, "truth", tuple(self.truth))
        for ov in self.overlays:
            span = ov.length if ov.length is not None \
                else self.duration - ov.start
            _require(ov.start < self.duration,
                     f"phase {self.name!r}: overlay starts at {ov.start} "
                     f"past duration {self.duration}")
            _require(ov.start + ov.spread + span <= self.duration,
                     f"phase {self.name!r}: overlay footprint "
                     f"{ov.start}+{ov.spread}+{span} exceeds duration "
                     f"{self.duration}")
        for w in self.truth:
            _require(w.start + w.spread + w.length <= self.duration,
                     f"phase {self.name!r}: truth window "
                     f"{w.start}+{w.spread}+{w.length} exceeds duration "
                     f"{self.duration}")

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "duration": self.duration,
                "overlays": [ov.to_dict() for ov in self.overlays],
                "truth": [w.to_dict() for w in self.truth]}

    @classmethod
    def from_dict(cls, entry: Mapping[str, Any]) -> "Phase":
        return cls(name=str(entry["name"]),
                   duration=int(entry["duration"]),
                   overlays=tuple(Overlay.from_dict(o)
                                  for o in entry.get("overlays", [])),
                   truth=tuple(TruthWindow.from_dict(w)
                               for w in entry.get("truth", [])))


@dataclass(frozen=True)
class WorkloadLayer:
    """The base workload every task carries: a generator name + params.

    Generator names are resolved by the compiler's registry
    (:data:`repro.scenarios.compiler.BASE_GENERATORS`); params are passed
    to the generator constructor. The special params ``phase`` and
    ``phase_spread`` set the per-task diurnal phase offset for the
    phase-aware generators.
    """

    generator: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require(bool(self.generator),
                 "base generator name must be non-empty")
        object.__setattr__(self, "params", dict(self.params))

    def to_dict(self) -> dict[str, Any]:
        return {"generator": self.generator, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, entry: Mapping[str, Any]) -> "WorkloadLayer":
        return cls(generator=str(entry["generator"]),
                   params=dict(entry.get("params", {})))


@dataclass(frozen=True, slots=True)
class ThresholdSpec:
    """How per-task thresholds are derived.

    ``absolute`` applies ``value`` to every task; ``selectivity`` derives
    each task's threshold from its own *base* (pre-overlay) trace so that
    ``value`` percent of background points violate — the paper's SV-A
    rule, which keeps Zipf-skewed fleets comparable under one spec.
    """

    kind: str = "absolute"
    value: float = 0.0

    def __post_init__(self) -> None:
        _require(self.kind in _THRESHOLD_KINDS,
                 f"unknown threshold kind {self.kind!r} "
                 f"(expected one of {_THRESHOLD_KINDS})")
        if self.kind == "selectivity":
            _require(0.0 < self.value < 100.0,
                     f"selectivity must be in (0, 100), got {self.value}")

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    @classmethod
    def from_dict(cls, entry: Mapping[str, Any]) -> "ThresholdSpec":
        return cls(kind=str(entry.get("kind", "absolute")),
                   value=float(entry.get("value", 0.0)))


@dataclass(frozen=True, slots=True)
class PhaseSpan:
    """A phase's absolute position on the compiled grid (end exclusive)."""

    name: str
    start: int
    end: int


@dataclass(frozen=True)
class Timeline:
    """A complete declarative incident scenario.

    Attributes:
        name: scenario identifier (also the task-name prefix).
        description: one-line human summary.
        tasks: fleet size — number of monitoring tasks replayed.
        base: shared base workload layer.
        phases: ordered phases; durations partition the horizon exactly.
        threshold: per-task threshold derivation rule.
        err: Volley error allowance per task.
        default_interval: grid step in seconds (``Id``), metadata for
            the seconds-denominated scores.
        max_interval: Volley maximum sampling interval (``Im``).
        direction: ``"upper"`` or ``"lower"`` violation side.
        adaptation: optional overrides for
            :class:`~repro.core.adaptation.AdaptationConfig` fields.
        task_type: what each fleet task monitors — ``"value"`` (the
            scalar stream itself), ``"quantile"`` (a sketch-backed
            ``p_q(X) > T`` predicate) or ``"entropy"`` (windowed
            empirical entropy of the stream). The threshold spec applies
            to the *task-type* statistic: a raw-value threshold for
            quantile tasks (the sketch's tail boundary), an entropy
            level in bits for entropy tasks.
        task_params: substrate parameters for non-value task types
            (``quantile``/``sketch_window``/``relative_error`` or
            ``entropy_window``/``bin_width``), the same knobs the config
            schema exposes.
        triggers: declarative correlation guards
            (:class:`TriggerLink`); the replayer installs the compiled
            plans through the trigger channel before feeding.
    """

    name: str
    description: str
    tasks: int
    base: WorkloadLayer
    phases: tuple[Phase, ...]
    threshold: ThresholdSpec
    err: float = 0.01
    default_interval: float = 1.0
    max_interval: int = 10
    direction: str = "upper"
    adaptation: dict[str, Any] = field(default_factory=dict)
    task_type: str = "value"
    task_params: dict[str, Any] = field(default_factory=dict)
    triggers: tuple[TriggerLink, ...] = ()

    def __post_init__(self) -> None:
        _require(bool(self.name), "timeline name must be non-empty")
        _require(self.tasks >= 1,
                 f"tasks must be >= 1, got {self.tasks}")
        object.__setattr__(self, "phases", tuple(self.phases))
        _require(len(self.phases) >= 1, "timeline needs at least one phase")
        names = [ph.name for ph in self.phases]
        _require(len(set(names)) == len(names),
                 f"duplicate phase names in {self.name!r}: {names}")
        _require(0.0 < self.err < 1.0,
                 f"err must be in (0, 1), got {self.err}")
        _require(self.default_interval > 0,
                 f"default_interval must be > 0, got {self.default_interval}")
        _require(self.max_interval >= 1,
                 f"max_interval must be >= 1, got {self.max_interval}")
        _require(self.direction in ("upper", "lower"),
                 f"direction must be 'upper' or 'lower', "
                 f"got {self.direction!r}")
        object.__setattr__(self, "adaptation", dict(self.adaptation))
        _require(self.task_type in TASK_TYPES,
                 f"task_type must be one of {TASK_TYPES}, "
                 f"got {self.task_type!r}")
        object.__setattr__(self, "task_params", dict(self.task_params))
        allowed = {"value": set(),
                   "quantile": {"quantile", "sketch_window",
                                "relative_error"},
                   "entropy": {"entropy_window", "bin_width"}}[
                       self.task_type]
        unknown = set(self.task_params) - allowed
        _require(not unknown,
                 f"task_params key(s) {sorted(unknown)} do not apply to "
                 f"task_type {self.task_type!r}")
        _require(self.task_type != "quantile"
                 or "quantile" in self.task_params,
                 f"timeline {self.name!r}: quantile task_type needs a "
                 f"'quantile' param")
        object.__setattr__(self, "triggers", tuple(self.triggers))
        for link in self.triggers:
            ranks = (link.trigger,) + (link.targets or ())
            _require(all(r < self.tasks for r in ranks),
                     f"timeline {self.name!r}: trigger link ranks "
                     f"{sorted(set(ranks))} must be < tasks={self.tasks}")

    # -- derived geometry ------------------------------------------------

    @property
    def horizon(self) -> int:
        """Total grid steps; the phase durations partition ``[0, horizon)``."""
        return sum(ph.duration for ph in self.phases)

    @property
    def direction_enum(self) -> ThresholdDirection:
        return ThresholdDirection(self.direction)

    def phase_spans(self) -> tuple[PhaseSpan, ...]:
        """Absolute ``[start, end)`` span of every phase, in order."""
        spans = []
        cursor = 0
        for ph in self.phases:
            spans.append(PhaseSpan(ph.name, cursor, cursor + ph.duration))
            cursor += ph.duration
        return tuple(spans)

    def covered(self, coverage: float) -> int:
        """Number of affected tasks for a coverage fraction (>= 1)."""
        return max(1, min(self.tasks, round(coverage * self.tasks)))

    @staticmethod
    def onset_offset(spread: int, rank: int, covered: int) -> int:
        """Deterministic onset stagger of affected rank ``rank``."""
        if spread == 0 or covered <= 1:
            return 0
        return (spread * rank) // (covered - 1)

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        entry = {
            "name": self.name,
            "description": self.description,
            "tasks": self.tasks,
            "base": self.base.to_dict(),
            "phases": [ph.to_dict() for ph in self.phases],
            "threshold": self.threshold.to_dict(),
            "err": self.err,
            "default_interval": self.default_interval,
            "max_interval": self.max_interval,
            "direction": self.direction,
            "adaptation": dict(self.adaptation),
        }
        # Typed keys are emitted only for non-value timelines so existing
        # value-timeline serialisations stay byte-identical (golden pins).
        if self.task_type != "value":
            entry["task_type"] = self.task_type
            entry["task_params"] = dict(self.task_params)
        if self.triggers:
            entry["triggers"] = [link.to_dict() for link in self.triggers]
        return entry

    @classmethod
    def from_dict(cls, entry: Mapping[str, Any]) -> "Timeline":
        return cls(
            name=str(entry["name"]),
            description=str(entry.get("description", "")),
            tasks=int(entry["tasks"]),
            base=WorkloadLayer.from_dict(entry["base"]),
            phases=tuple(Phase.from_dict(p) for p in entry["phases"]),
            threshold=ThresholdSpec.from_dict(entry.get("threshold", {})),
            err=float(entry.get("err", 0.01)),
            default_interval=float(entry.get("default_interval", 1.0)),
            max_interval=int(entry.get("max_interval", 10)),
            direction=str(entry.get("direction", "upper")),
            adaptation=dict(entry.get("adaptation", {})),
            task_type=str(entry.get("task_type", "value")),
            task_params=dict(entry.get("task_params", {})),
            triggers=tuple(TriggerLink.from_dict(link)
                           for link in entry.get("triggers", [])),
        )

    # -- derived timelines -----------------------------------------------

    def scaled(self, fleet: float = 1.0, horizon: float = 1.0) -> "Timeline":
        """A reduced (or enlarged) copy for CI-scale runs.

        Fleet size and every phase/overlay/window span are rescaled and
        re-clamped so the result is always a valid timeline; scaling by
        1.0 returns an equal timeline.
        """
        _require(fleet > 0 and horizon > 0,
                 f"scale factors must be > 0, got {fleet}, {horizon}")
        tasks = max(4, round(self.tasks * fleet))
        phases = []
        for ph in self.phases:
            duration = max(4, round(ph.duration * horizon))
            overlays = []
            for ov in ph.overlays:
                start, length, spread = _fit_segment(
                    round(ov.start * horizon),
                    None if ov.length is None
                    else max(1, round(ov.length * horizon)),
                    round(ov.spread * horizon), duration)
                overlays.append(Overlay(
                    kind=ov.kind, peak=ov.peak, start=start, length=length,
                    ramp_steps=max(1, round(ov.ramp_steps * horizon)),
                    coverage=ov.coverage, spread=spread, jitter=ov.jitter,
                    floor=ov.floor))
            truth = []
            for w in ph.truth:
                start, length, spread = _fit_segment(
                    round(w.start * horizon),
                    max(1, round(w.length * horizon)),
                    round(w.spread * horizon), duration)
                truth.append(TruthWindow(start=start, length=length,
                                         coverage=w.coverage, spread=spread))
            phases.append(Phase(name=ph.name, duration=duration,
                                overlays=tuple(overlays),
                                truth=tuple(truth)))
        task_params = dict(self.task_params)
        # Substrate windows are horizon-denominated state: shrink them
        # with the grid so CI-scale runs keep the same relative recency.
        if "sketch_window" in task_params:
            task_params["sketch_window"] = max(
                8, round(task_params["sketch_window"] * horizon))
        if "entropy_window" in task_params:
            task_params["entropy_window"] = max(
                4, round(task_params["entropy_window"] * horizon))
        # Trigger links survive only if their ranks still exist in the
        # rescaled fleet; explicit target lists are trimmed likewise.
        triggers = []
        for link in self.triggers:
            if link.trigger >= tasks:
                continue
            targets = link.targets
            if targets is not None:
                targets = tuple(t for t in targets if t < tasks)
                if not targets:
                    continue
            triggers.append(TriggerLink(
                trigger=link.trigger, targets=targets,
                elevation_quantile=link.elevation_quantile,
                elevation_level=link.elevation_level,
                suspend_interval=link.suspend_interval,
                hysteresis=link.hysteresis, min_hold=link.min_hold))
        return Timeline(
            name=self.name, description=self.description, tasks=tasks,
            base=self.base, phases=tuple(phases), threshold=self.threshold,
            err=self.err, default_interval=self.default_interval,
            max_interval=self.max_interval, direction=self.direction,
            adaptation=dict(self.adaptation),
            task_type=self.task_type, task_params=task_params,
            triggers=tuple(triggers))


def _fit_segment(start: int, length: int | None, spread: int,
                 duration: int) -> tuple[int, int | None, int]:
    """Clamp a scaled ``(start, length, spread)`` into a phase duration."""
    start = max(0, min(start, duration - 1))
    if length is None:
        return start, None, 0
    length = max(1, min(length, duration - start))
    spread = max(0, min(spread, duration - start - length))
    return start, length, spread


def _known_kwargs(cls: type, entry: Mapping[str, Any]) -> dict[str, Any]:
    known = {f.name for f in dataclass_fields(cls)}
    unknown = set(entry) - known
    if unknown:
        raise ConfigurationError(
            f"unknown {cls.__name__} key(s) {sorted(unknown)}")
    return dict(entry)
