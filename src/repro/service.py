"""Streaming monitoring service facade.

The experiment runners consume precomputed traces; a deployment consumes
*live* values. :class:`MonitoringService` is the push-based entry point a
downstream user wires into their collection pipeline:

* register tasks (instantaneous or windowed-aggregate, upper or lower
  thresholds, optionally guarded by a correlation trigger);
* push every collected value with :meth:`offer` — the service tells the
  caller whether the value was *consumed* as a scheduled sample and when
  the task wants its next sample, so callers can skip collection work for
  values the schedule does not need;
* receive alert callbacks the moment a sampled value violates.

The service is the integration surface: everything underneath is the same
violation-likelihood machinery the experiments use.

Example::

    service = MonitoringService()
    service.add_task("ddos", TaskSpec(threshold=1000.0,
                                      error_allowance=0.01,
                                      max_interval=10),
                     on_alert=lambda a: print("ALERT", a))
    for step, rho in enumerate(stream):
        if service.due("ddos", step):
            service.offer("ddos", rho, step)   # costed sampling op
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.adaptation import (AdaptationConfig, SamplingDecision,
                                   ViolationLikelihoodSampler)
from repro.core.task import TaskSpec
from repro.core.windowed import AggregateKind
from repro.exceptions import ConfigurationError
from repro.types import Alert

__all__ = ["MonitoringService", "TaskState"]

AlertCallback = Callable[[Alert], None]


@dataclass
class TaskState:
    """Bookkeeping for one registered task.

    Attributes:
        name: task identifier.
        task: the threshold task.
        sampler: the adaptive sampler driving the schedule.
        next_due: grid step of the next wanted sample.
        samples_taken: sampling operations consumed so far.
        alerts: alerts raised so far.
        trigger_task: name of the task gating this one (or ``None``).
        trigger_level: elevation level of the gating metric.
        suspend_interval: idle interval while the trigger is cold.
        window / window_kind: aggregation settings (window 1 = instant).
        on_alert: callback invoked on every alert.
    """

    name: str
    task: TaskSpec
    sampler: ViolationLikelihoodSampler
    next_due: int = 0
    samples_taken: int = 0
    alerts: list[Alert] = field(default_factory=list)
    trigger_task: str | None = None
    trigger_level: float = 0.0
    suspend_interval: int = 10
    window: int = 1
    window_kind: AggregateKind = AggregateKind.MEAN
    on_alert: AlertCallback | None = None
    _window_values: list[tuple[int, float]] = field(default_factory=list)

    def aggregate(self, step: int, value: float) -> float:
        """Fold a raw observation into the task's windowed aggregate."""
        if self.window <= 1:
            return value
        self._window_values.append((step, value))
        lo = step - self.window + 1
        self._window_values = [(s, v) for s, v in self._window_values
                               if s >= lo]
        values = [v for _, v in self._window_values]
        if self.window_kind is AggregateKind.MEAN:
            return sum(values) / len(values)
        if self.window_kind is AggregateKind.SUM:
            return sum(values)
        if self.window_kind is AggregateKind.MAX:
            return max(values)
        return min(values)


class MonitoringService:
    """Push-based multi-task monitoring front end."""

    def __init__(self, config: AdaptationConfig | None = None):
        self._config = config or AdaptationConfig()
        self._tasks: dict[str, TaskState] = {}
        self._last_seen: dict[str, float] = {}

    @property
    def task_names(self) -> list[str]:
        """Registered task identifiers."""
        return list(self._tasks)

    def add_task(self, name: str, task: TaskSpec,
                 on_alert: AlertCallback | None = None,
                 window: int = 1,
                 window_kind: AggregateKind = AggregateKind.MEAN,
                 config: AdaptationConfig | None = None) -> None:
        """Register a monitoring task.

        Args:
            name: unique identifier.
            task: threshold task (threshold, allowance, intervals).
            on_alert: invoked synchronously for every violation observed.
            window: aggregation window in default intervals (1 = react to
                the instantaneous value).
            window_kind: aggregation function for ``window > 1``.
            config: per-task adaptation tunables (service default
                otherwise).
        """
        if name in self._tasks:
            raise ConfigurationError(f"task {name!r} already registered")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        sampler = ViolationLikelihoodSampler(task, config or self._config)
        self._tasks[name] = TaskState(name=name, task=task,
                                      sampler=sampler, window=window,
                                      window_kind=window_kind,
                                      on_alert=on_alert)

    def add_trigger(self, target: str, trigger: str, elevation_level: float,
                    suspend_interval: int = 10) -> None:
        """Gate ``target``'s sampling on ``trigger``'s last seen value.

        While the most recent value offered for ``trigger`` sits below
        ``elevation_level`` the target idles at ``suspend_interval``
        (paper SII-A's state-correlation scheme; typically configured from
        a :class:`repro.core.correlation.TriggerRule`).
        """
        state = self._state(target)
        self._state(trigger)  # must exist
        if suspend_interval < 1:
            raise ConfigurationError(
                f"suspend_interval must be >= 1, got {suspend_interval}")
        state.trigger_task = trigger
        state.trigger_level = elevation_level
        state.suspend_interval = suspend_interval

    def _state(self, name: str) -> TaskState:
        try:
            return self._tasks[name]
        except KeyError:
            raise ConfigurationError(f"unknown task {name!r}") from None

    def due(self, name: str, step: int) -> bool:
        """Whether the task wants a sampling operation at ``step``.

        Callers may skip the (expensive) collection work whenever this is
        False — that skipping *is* the saving.
        """
        return step >= self._state(name).next_due

    def next_due(self, name: str) -> int:
        """Grid step of the task's next wanted sample."""
        return self._state(name).next_due

    def offer(self, name: str, value: float, step: int,
              ) -> SamplingDecision | None:
        """Push a collected value for a task.

        Returns the sampling decision when the value was consumed as a
        scheduled sample, or ``None`` when the task was not due (the
        value still refreshes trigger state for tasks gated on this one).

        Alerts fire synchronously through the task's callback.
        """
        state = self._state(name)
        self._last_seen[name] = value
        if step < state.next_due:
            return None

        monitored = state.aggregate(step, value)
        decision = state.sampler.observe(monitored, step)
        state.samples_taken += 1

        interval = decision.next_interval
        if state.trigger_task is not None:
            trigger_value = self._last_seen.get(state.trigger_task)
            if (trigger_value is not None
                    and trigger_value < state.trigger_level):
                interval = max(interval, state.suspend_interval)
        state.next_due = step + max(1, interval)

        if decision.violation:
            alert = Alert(time_index=step, value=monitored,
                          threshold=state.task.threshold)
            state.alerts.append(alert)
            if state.on_alert is not None:
                state.on_alert(alert)
        return decision

    def alerts(self, name: str) -> list[Alert]:
        """Alerts raised by a task so far (chronological)."""
        return list(self._state(name).alerts)

    def samples_taken(self, name: str) -> int:
        """Sampling operations consumed by a task so far."""
        return self._state(name).samples_taken

    def interval(self, name: str) -> int:
        """A task's current sampling interval (in default intervals)."""
        return self._state(name).sampler.interval
