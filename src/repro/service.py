"""Streaming monitoring service facade.

The experiment runners consume precomputed traces; a deployment consumes
*live* values. :class:`MonitoringService` is the push-based entry point a
downstream user wires into their collection pipeline:

* register tasks (instantaneous or windowed-aggregate, upper or lower
  thresholds, optionally guarded by a correlation trigger — plus the
  sketch-backed quantile-threshold and streaming-entropy types, see
  :meth:`MonitoringService.add_quantile_task` /
  :meth:`MonitoringService.add_entropy_task`);
* push every collected value with :meth:`offer` — the service tells the
  caller whether the value was *consumed* as a scheduled sample and when
  the task wants its next sample, so callers can skip collection work for
  values the schedule does not need;
* receive alert callbacks the moment a sampled value violates.

The service is the integration surface: everything underneath is the same
violation-likelihood machinery the experiments use.

Example::

    service = MonitoringService()
    service.add_task("ddos", TaskSpec(threshold=1000.0,
                                      error_allowance=0.01,
                                      max_interval=10),
                     on_alert=lambda a: print("ALERT", a))
    for step, rho in enumerate(stream):
        if service.due("ddos", step):
            service.offer("ddos", rho, step)   # costed sampling op
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.adaptation import (AdaptationConfig, SamplingDecision,
                                   ViolationLikelihoodSampler)
from repro.core.substrates import (DEFAULT_ENTROPY_WINDOW,
                                   DEFAULT_SKETCH_WINDOW, EntropyEstimator,
                                   QuantileEstimator)
from repro.core.task import TaskSpec
from repro.core.windowed import AggregateKind
from repro.telemetry.histogram import DEFAULT_RELATIVE_ERROR
from repro.exceptions import ConfigurationError
from repro.triggers.channel import TriggerWatcher
from repro.types import Alert, ThresholdDirection

__all__ = ["MonitoringService", "TaskState", "SNAPSHOT_VERSION"]

AlertCallback = Callable[[Alert], None]

SNAPSHOT_VERSION = 1
"""Format version stamped into :meth:`MonitoringService.snapshot` dicts."""


@dataclass
class TaskState:
    """Bookkeeping for one registered task.

    Attributes:
        name: task identifier.
        task: the threshold task.
        sampler: the adaptive sampler driving the schedule.
        next_due: grid step of the next wanted sample.
        samples_taken: sampling operations consumed so far.
        alerts: alerts raised so far.
        trigger_task: name of the task gating this one (or ``None``).
        trigger_level: elevation level of the gating metric.
        suspend_interval: idle interval while the trigger is cold.
        remote_trigger: name of a (possibly non-local) task whose
            arm/disarm edges gate this one through the trigger channel
            (``repro.triggers``), or ``None``. Unlike ``trigger_task``
            the gating signal is the explicit :attr:`trigger_armed`
            flag, not a last-seen value — the trigger may live on
            another shard or worker.
        trigger_armed: the remote guard's state; ``True`` (the
            conservative default) samples at full violation-likelihood
            rate, ``False`` floors the interval at
            :attr:`suspend_interval`.
        trigger_suspensions: consumed offers whose schedule the disarmed
            guard actually deferred (probe-cost-saved accounting).
        watch: a :class:`~repro.triggers.channel.TriggerWatcher`
            attached to this task's offered-value stream, emitting the
            arm/disarm edges the channel routes; ``None`` when the task
            guards nothing.
        window / window_kind: aggregation settings (window 1 = instant).
        on_alert: callback invoked on every alert.
        soa_row: row index in the service's SoA engine, or ``-1`` when the
            task is driven by its scalar sampler. While ``>= 0`` the
            engine columns are authoritative for sampler state, schedule
            position and last-offered value; the scalar fields here are
            synced back on snapshot/eviction.
        task_type: ``"value"`` (scalar, the default), ``"quantile"`` or
            ``"entropy"``. Non-value tasks carry a ``substrate`` whose
            derived statistic — exceedance rate / windowed entropy — is
            what the sampler watches; they stay on the scalar path (the
            SoA engine never adopts them).
        value_threshold: quantile tasks only — the raw value threshold
            ``T`` of ``p_q(X) > T``; the sampler's spec threshold is the
            derived exceedance bound ``1 - q``.
        substrate: the per-task sketch/estimator state, or ``None``.
    """

    name: str
    task: TaskSpec
    sampler: ViolationLikelihoodSampler
    soa_row: int = -1
    next_due: int = 0
    samples_taken: int = 0
    alerts: list[Alert] = field(default_factory=list)
    trigger_task: str | None = None
    trigger_level: float = 0.0
    suspend_interval: int = 10
    remote_trigger: str | None = None
    trigger_armed: bool = True
    trigger_suspensions: int = 0
    watch: TriggerWatcher | None = None
    window: int = 1
    window_kind: AggregateKind = AggregateKind.MEAN
    on_alert: AlertCallback | None = None
    task_type: str = "value"
    value_threshold: float = 0.0
    substrate: Any = None
    _window_values: deque[tuple[int, float]] = field(default_factory=deque)
    _window_sum: float = 0.0

    def aggregate(self, step: int, value: float) -> float:
        """Fold a raw observation into the task's windowed aggregate.

        The window buffer is a deque with head-pruning and a running sum:
        appending and evicting expired entries is O(1) amortized, so
        windowed tasks stay cheap on the hot ingest path (MAX/MIN still
        scan the — window-bounded — buffer, as eviction order is by step,
        not by value).
        """
        if self.window <= 1:
            return value
        buf = self._window_values
        buf.append((step, value))
        self._window_sum += value
        lo = step - self.window + 1
        while buf and buf[0][0] < lo:
            _, old = buf.popleft()
            self._window_sum -= old
        if self.window_kind is AggregateKind.MEAN:
            return self._window_sum / len(buf)
        if self.window_kind is AggregateKind.SUM:
            return self._window_sum
        if self.window_kind is AggregateKind.MAX:
            return max(v for _, v in buf)
        return min(v for _, v in buf)

    def absorb(self, value: float) -> None:
        """Feed one offered value into a non-value task's substrate.

        Sketch/entropy substrates absorb *every* offered value, due or
        not: in the push model updates arrive regardless, and what the
        schedule gates is the (costed) evaluation of the derived
        statistic. This keeps the substrate's state equal to a
        full-resolution reference's, so the sampler's mis-detection
        story reduces to the scalar case on the derived stream.
        """
        self.substrate.update(value)

    def monitored(self, step: int, value: float) -> float:
        """The sampler-facing statistic for one consumed offer."""
        if self.task_type == "value":
            return self.aggregate(step, value)
        if self.task_type == "quantile":
            return self.substrate.exceedance(self.value_threshold)
        return self.substrate.entropy()

    def make_alert(self, step: int, monitored: float) -> Alert:
        """The alert for a violation at ``step``.

        Value and entropy tasks report the monitored statistic against
        the spec threshold. Quantile tasks alert in the *value* frame —
        the estimated ``p_q`` against the raw threshold ``T`` — because
        that is the predicate the operator registered; the exceedance
        rate the sampler watches is an internal derivation.
        """
        if self.task_type == "quantile":
            return Alert(time_index=step,
                         value=self.substrate.quantile_value(),
                         threshold=self.value_threshold)
        return Alert(time_index=step, value=monitored,
                     threshold=self.task.threshold)

    def state_dict(self) -> dict[str, Any]:
        """The task's full mutable + declarative state, JSON-able.

        Everything :meth:`MonitoringService.restore` needs to resume this
        task exactly: the spec, adaptation config, schedule position,
        sampler internals, alert history, trigger wiring and window buffer.
        The ``on_alert`` callback is *not* serialisable — restoring callers
        re-attach their own.
        """
        state: dict[str, Any] = {
            "name": self.name,
            "spec": _spec_to_dict(self.task),
            "adaptation": _adaptation_to_dict(self.sampler.config),
            "window": self.window,
            "window_kind": self.window_kind.value,
            "next_due": self.next_due,
            "samples_taken": self.samples_taken,
            "alerts": [[a.time_index, a.value, a.threshold]
                       for a in self.alerts],
            "trigger_task": self.trigger_task,
            "trigger_level": self.trigger_level,
            "suspend_interval": self.suspend_interval,
            "window_values": [[s, v] for s, v in self._window_values],
            # The running sum is serialised verbatim (not recomputed from
            # the buffer on restore) so a restored task's aggregates are
            # bit-identical to an uninterrupted run's, floating-point
            # accumulation history included.
            "window_sum": self._window_sum,
            "sampler": self.sampler.state_dict(),
        }
        if self.task_type != "value":
            # Typed-task keys are emitted only when present so value-task
            # snapshots stay byte-identical to every earlier release.
            state["type"] = self.task_type
            state["value_threshold"] = self.value_threshold
            state["substrate"] = self.substrate.state_dict()
        # Trigger-channel keys follow the same only-when-present rule:
        # the armed flag and watcher debounce state ride the ordinary
        # checkpoint so guards survive migration and failover
        # bit-identically, while unguarded snapshots never change shape.
        if self.remote_trigger is not None:
            state["remote_trigger"] = self.remote_trigger
            state["trigger_armed"] = self.trigger_armed
            state["trigger_suspensions"] = self.trigger_suspensions
        if self.watch is not None:
            state["watch"] = self.watch.state_dict()
        return state

    @classmethod
    def from_state_dict(cls, state: dict[str, Any],
                        on_alert: AlertCallback | None = None) -> "TaskState":
        """Rebuild a task (spec, sampler and all) from :meth:`state_dict`."""
        spec = _spec_from_dict(state["spec"])
        config = _adaptation_from_dict(state["adaptation"])
        sampler = ViolationLikelihoodSampler(spec, config)
        sampler.load_state_dict(state["sampler"])
        task_type = str(state.get("type", "value"))
        substrate: Any = None
        if task_type == "quantile":
            substrate = QuantileEstimator.from_state_dict(state["substrate"])
        elif task_type == "entropy":
            substrate = EntropyEstimator.from_state_dict(state["substrate"])
        elif task_type != "value":
            raise ConfigurationError(
                f"unknown task type {task_type!r} in snapshot entry "
                f"{state.get('name')!r}")
        task_state = cls(
            name=str(state["name"]),
            task=spec,
            sampler=sampler,
            task_type=task_type,
            value_threshold=float(state.get("value_threshold", 0.0)),
            substrate=substrate,
            next_due=int(state["next_due"]),
            samples_taken=int(state["samples_taken"]),
            alerts=[Alert(time_index=int(t), value=float(v),
                          threshold=float(thr))
                    for t, v, thr in state.get("alerts", [])],
            trigger_task=state.get("trigger_task"),
            trigger_level=float(state.get("trigger_level", 0.0)),
            suspend_interval=int(state.get("suspend_interval", 10)),
            remote_trigger=state.get("remote_trigger"),
            trigger_armed=bool(state.get("trigger_armed", True)),
            trigger_suspensions=int(state.get("trigger_suspensions", 0)),
            watch=(TriggerWatcher.from_state_dict(state["watch"])
                   if "watch" in state else None),
            window=int(state["window"]),
            window_kind=AggregateKind(state["window_kind"]),
            on_alert=on_alert,
        )
        for s, v in state.get("window_values", []):
            task_state._window_values.append((int(s), float(v)))
        if "window_sum" in state:
            task_state._window_sum = float(state["window_sum"])
        else:
            task_state._window_sum = sum(
                v for _, v in task_state._window_values)
        return task_state


def _spec_to_dict(spec: TaskSpec) -> dict[str, Any]:
    return {
        "threshold": spec.threshold,
        "error_allowance": spec.error_allowance,
        "default_interval": spec.default_interval,
        "max_interval": spec.max_interval,
        "direction": spec.direction.value,
        "name": spec.name,
    }


def _spec_from_dict(entry: dict[str, Any]) -> TaskSpec:
    return TaskSpec(
        threshold=float(entry["threshold"]),
        error_allowance=float(entry["error_allowance"]),
        default_interval=float(entry["default_interval"]),
        max_interval=int(entry["max_interval"]),
        direction=ThresholdDirection(entry["direction"]),
        name=str(entry.get("name", "")),
    )


def _adaptation_to_dict(config: AdaptationConfig) -> dict[str, Any]:
    return {f.name: getattr(config, f.name)
            for f in dataclass_fields(AdaptationConfig)}


def _adaptation_from_dict(entry: dict[str, Any]) -> AdaptationConfig:
    return AdaptationConfig(**entry)


class MonitoringService:
    """Push-based multi-task monitoring front end."""

    # Telemetry defaults (class attributes): a service with no attached
    # trace pays one ``is not None`` check per decision-worthy event.
    # Traces are deliberately not part of snapshot()/restore() — like
    # alert callbacks, the owner re-attaches after a restore.
    _trace = None
    _trace_shard: int | str | None = None
    # Trigger-edge sink (same lifecycle as traces): the owning runtime
    # attaches a callable for synchronous in-process routing; cluster
    # workers leave it unset and the coordinator drains the buffer.
    _trigger_sink: Callable[[dict[str, Any]], None] | None = None

    def __init__(self, config: AdaptationConfig | None = None,
                 soa: bool = False):
        self._config = config or AdaptationConfig()
        self._tasks: dict[str, TaskState] = {}
        self._last_seen: dict[str, float] = {}
        self._trigger_events: deque[dict[str, Any]] = deque(maxlen=1024)
        self._soa = None
        self._soa_rows: dict[int, TaskState] = {}
        if soa:
            from repro.core.soa import SoaSamplerEngine
            self._soa = SoaSamplerEngine()

    # -- SoA engine plumbing (DESIGN.md S31) ----------------------------
    #
    # With ``soa=True`` eligible tasks (window == 1, no trigger wiring)
    # are backed by rows of a shared :class:`~repro.core.soa
    # .SoaSamplerEngine` instead of per-offer scalar stepping. The engine
    # columns are then authoritative; tasks that gain trigger wiring are
    # *evicted* back to their scalar sampler via the state_dict
    # round-trip, so behaviour — and snapshots — are identical either way.

    def _soa_eligible(self, state: TaskState) -> bool:
        if self._soa is None or state.window > 1:
            return False
        if state.task_type != "value":
            # Sketch/entropy tasks carry non-columnar substrate state;
            # they always run the scalar path.
            return False
        if state.trigger_task is not None:
            return False
        if state.remote_trigger is not None or state.watch is not None:
            # Channel-guarded tasks need the scalar path's armed-flag
            # gating; watched tasks need per-offer edge detection.
            return False
        return all(other.trigger_task != state.name
                   for other in self._tasks.values())

    def _adopt_soa(self, state: TaskState,
                   config: AdaptationConfig) -> None:
        engine = self._soa
        assert engine is not None
        row = engine.add_task(state.task, config)
        engine.load_row_state(row, state.sampler.state_dict())
        engine.next_due[row] = state.next_due
        engine.samples_taken[row] = state.samples_taken
        last = self._last_seen.get(state.name)
        if last is not None:
            engine.last_offered[row] = last
            engine.has_offered[row] = True
        state.soa_row = row
        self._soa_rows[row] = state

    def _sync_soa(self, state: TaskState) -> None:
        """Copy a row's authoritative state back onto the scalar fields."""
        engine = self._soa
        row = state.soa_row
        state.sampler.load_state_dict(engine.row_state_dict(row))
        state.next_due = int(engine.next_due[row])
        state.samples_taken = int(engine.samples_taken[row])
        if engine.has_offered[row]:
            self._last_seen[state.name] = float(engine.last_offered[row])

    def _evict_soa(self, state: TaskState) -> None:
        if state.soa_row < 0:
            return
        self._sync_soa(state)
        self._soa.deactivate(state.soa_row)
        self._soa_rows.pop(state.soa_row, None)
        state.soa_row = -1

    @property
    def soa_engine(self):
        """The service's SoA engine, or ``None`` (scalar-only service)."""
        return self._soa

    def soa_row_for(self, name: str) -> int:
        """The task's engine row, or ``-1`` when scalar-driven."""
        return self._state(name).soa_row

    def attach_telemetry(self, trace: Any,
                         shard: int | str | None = None) -> None:
        """Attach a decision trace (``repro.telemetry.trace``).

        Once attached, interval adaptations (grow/reset) and violations
        observed by :meth:`offer` / :meth:`offer_fast` are emitted as
        structured trace events tagged with ``shard``. Pass ``None`` to
        detach.
        """
        self._trace = trace if trace is not None and trace.enabled else None
        self._trace_shard = shard

    @property
    def task_names(self) -> list[str]:
        """Registered task identifiers."""
        return list(self._tasks)

    def add_task(self, name: str, task: TaskSpec,
                 on_alert: AlertCallback | None = None,
                 window: int = 1,
                 window_kind: AggregateKind = AggregateKind.MEAN,
                 config: AdaptationConfig | None = None) -> None:
        """Register a monitoring task.

        Args:
            name: unique identifier.
            task: threshold task (threshold, allowance, intervals).
            on_alert: invoked synchronously for every violation observed.
            window: aggregation window in default intervals (1 = react to
                the instantaneous value).
            window_kind: aggregation function for ``window > 1``.
            config: per-task adaptation tunables (service default
                otherwise).
        """
        if name in self._tasks:
            raise ConfigurationError(f"task {name!r} already registered")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        sampler = ViolationLikelihoodSampler(task, config or self._config)
        state = TaskState(name=name, task=task,
                          sampler=sampler, window=window,
                          window_kind=window_kind,
                          on_alert=on_alert)
        self._tasks[name] = state
        if self._soa_eligible(state):
            self._adopt_soa(state, config or self._config)

    def add_quantile_task(self, name: str, *, threshold: float,
                          quantile: float,
                          error_allowance: float = 0.01,
                          default_interval: float = 1.0,
                          max_interval: int = 10,
                          direction: ThresholdDirection =
                          ThresholdDirection.UPPER,
                          sketch_window: int = DEFAULT_SKETCH_WINDOW,
                          relative_error: float = DEFAULT_RELATIVE_ERROR,
                          on_alert: AlertCallback | None = None,
                          config: AdaptationConfig | None = None) -> None:
        """Register a quantile-threshold task ``p_q(X) > threshold``.

        The sampler never sees raw values. Its monitored statistic is
        the substrate's windowed *exceedance rate* ``P(X > threshold)``,
        compared against the derived threshold ``1 - quantile`` —
        ``p_q(X) > T`` holds exactly when more than ``1 - q`` of the
        window sits above ``T``. The indicator ``1{x > T}`` is a
        Bernoulli stream, so the rate's delta statistics feed the
        Cantelli/Gaussian violation-likelihood kernels and the AIMD
        interval adaptation unchanged. ``direction="lower"`` flips the
        predicate to ``p_q(X) < threshold`` (exceedance below
        ``1 - q``).

        Every offered value updates the sketch (O(1)); the schedule
        gates the derived-statistic evaluation and alerting. Alerts
        report the estimated quantile against ``threshold`` — the
        predicate the caller registered — not the internal rate.

        Args:
            name: unique identifier.
            threshold: raw value threshold ``T``.
            quantile: tracked ``q`` in (0, 1), e.g. 0.99 for p99.
            sketch_window: observations per sketch epoch (queries span
                one sealed epoch plus the current one).
            relative_error: sketch accuracy ``alpha``.
            (remaining args as :meth:`add_task`.)
        """
        if name in self._tasks:
            raise ConfigurationError(f"task {name!r} already registered")
        substrate = QuantileEstimator(quantile=quantile,
                                      window=sketch_window,
                                      relative_error=relative_error)
        spec = TaskSpec(threshold=1.0 - substrate.quantile,
                        error_allowance=error_allowance,
                        default_interval=default_interval,
                        max_interval=max_interval,
                        direction=direction, name=name)
        sampler = ViolationLikelihoodSampler(spec, config or self._config)
        self._tasks[name] = TaskState(
            name=name, task=spec, sampler=sampler, on_alert=on_alert,
            task_type="quantile", value_threshold=float(threshold),
            substrate=substrate)

    def add_entropy_task(self, name: str, *, threshold: float,
                         error_allowance: float = 0.01,
                         default_interval: float = 1.0,
                         max_interval: int = 10,
                         direction: ThresholdDirection =
                         ThresholdDirection.LOWER,
                         entropy_window: int = DEFAULT_ENTROPY_WINDOW,
                         bin_width: float = 1.0,
                         on_alert: AlertCallback | None = None,
                         config: AdaptationConfig | None = None) -> None:
        """Register a streaming-entropy task (default: drop-below).

        The monitored statistic is the windowed empirical entropy (bits)
        of the offered values binned at ``bin_width`` — a smooth scalar
        stream, so the violation-likelihood machinery applies to it
        directly. The default ``direction="lower"`` alerts when entropy
        collapses below ``threshold`` (the SYN-flood signature of the
        distributed entropy-monitoring literature).

        Every offered value updates the window; the schedule gates the
        entropy evaluation and alerting.

        Args:
            name: unique identifier.
            threshold: entropy threshold in bits.
            entropy_window: sliding-window length in observations.
            bin_width: symbolisation bin width for the offered values.
            (remaining args as :meth:`add_task`.)
        """
        if name in self._tasks:
            raise ConfigurationError(f"task {name!r} already registered")
        substrate = EntropyEstimator(window=entropy_window,
                                     bin_width=bin_width)
        spec = TaskSpec(threshold=float(threshold),
                        error_allowance=error_allowance,
                        default_interval=default_interval,
                        max_interval=max_interval,
                        direction=direction, name=name)
        sampler = ViolationLikelihoodSampler(spec, config or self._config)
        self._tasks[name] = TaskState(
            name=name, task=spec, sampler=sampler, on_alert=on_alert,
            task_type="entropy", substrate=substrate)

    def remove_task(self, name: str) -> None:
        """Unregister a task (live-runtime tenant churn).

        Any task gated on the removed one loses its trigger and falls back
        to pure violation-likelihood scheduling — a dangling trigger would
        otherwise freeze the dependent task at its suspend interval using a
        stale last-seen value. The removed task's last-seen entry is
        dropped for the same reason.

        Raises :class:`~repro.exceptions.ConfigurationError` when the task
        is unknown.
        """
        state = self._state(name)  # must exist
        if state.soa_row >= 0:
            self._soa.deactivate(state.soa_row)
            self._soa_rows.pop(state.soa_row, None)
            state.soa_row = -1
        del self._tasks[name]
        self._last_seen.pop(name, None)
        for other in self._tasks.values():
            if other.trigger_task == name:
                other.trigger_task = None
                other.trigger_level = 0.0
            if other.remote_trigger == name:
                # A locally-registered guard loses its edge source; fall
                # back to full-rate sampling rather than freezing the
                # target at whatever armed state the last edge left.
                other.remote_trigger = None
                other.trigger_armed = True

    def add_trigger(self, target: str, trigger: str, elevation_level: float,
                    suspend_interval: int = 10) -> None:
        """Gate ``target``'s sampling on ``trigger``'s last seen value.

        While the most recent value offered for ``trigger`` sits below
        ``elevation_level`` the target idles at ``suspend_interval``
        (paper SII-A's state-correlation scheme; typically configured from
        a :class:`repro.core.correlation.TriggerRule`).
        """
        state = self._state(target)
        trigger_state = self._state(trigger)  # must exist
        if suspend_interval < 1:
            raise ConfigurationError(
                f"suspend_interval must be >= 1, got {suspend_interval}")
        # Trigger wiring needs the scalar path's last-seen gating on both
        # ends — evict either side from the SoA engine first.
        self._evict_soa(state)
        self._evict_soa(trigger_state)
        state.trigger_task = trigger
        state.trigger_level = elevation_level
        state.suspend_interval = suspend_interval

    # -- trigger channel (repro.triggers, DESIGN.md S32) ----------------
    #
    # ``add_trigger`` gates on a co-located task's last-seen value; the
    # channel methods below gate on explicit arm/disarm *edges* instead,
    # so the trigger task may live on any shard or worker. A watch on
    # the trigger side turns its offered values into edges; the armed
    # flag on the target side is flipped by whoever routes them (the
    # runtime server in-process, the cluster coordinator across
    # workers).

    def add_remote_trigger(self, target: str, trigger: str,
                           elevation_level: float,
                           suspend_interval: int = 10) -> None:
        """Guard ``target`` on channel edges from (possibly remote)
        ``trigger``.

        Unlike :meth:`add_trigger` the trigger need not be registered on
        this service. Re-installing the same pair is idempotent and
        *preserves* the current armed state — post-failover re-installs
        must not silently re-arm a deliberately disarmed guard.
        """
        state = self._state(target)
        if not trigger:
            raise ConfigurationError("trigger name must be non-empty")
        if trigger == target:
            raise ConfigurationError(
                f"task {target!r} cannot trigger itself")
        if suspend_interval < 1:
            raise ConfigurationError(
                f"suspend_interval must be >= 1, got {suspend_interval}")
        self._evict_soa(state)
        fresh = state.remote_trigger != trigger
        state.remote_trigger = trigger
        state.trigger_level = float(elevation_level)
        state.suspend_interval = int(suspend_interval)
        if fresh:
            state.trigger_armed = True

    def add_trigger_watch(self, trigger: str, level: float,
                          hysteresis: float = 0.1,
                          min_hold: int = 5) -> None:
        """Watch ``trigger``'s offered values for arm/disarm edges.

        Every offer — due or not — feeds the watcher, so edge latency is
        one collection period, not one sampling interval. Re-installing
        an identical watch keeps the existing debounce state; changed
        parameters replace the watcher (conservatively re-armed).
        """
        state = self._state(trigger)
        self._evict_soa(state)
        if state.watch is not None:
            current = state.watch.state_dict()
            if (current["level"] == float(level)
                    and current["hysteresis"] == float(hysteresis)
                    and current["min_hold"] == int(min_hold)):
                return
        state.watch = TriggerWatcher(level, hysteresis=hysteresis,
                                     min_hold=min_hold)

    def install_trigger_plan(self, plan: Any) -> None:
        """Wire whichever sides of a ``TriggerPlan`` live on this service.

        A plan's trigger and target may land on different shards; each
        shard's service installs only its local half (watch on the
        trigger task, remote guard on the target task).
        """
        if plan.trigger in self._tasks:
            self.add_trigger_watch(plan.trigger, plan.elevation_level,
                                   hysteresis=plan.hysteresis,
                                   min_hold=plan.min_hold)
        if plan.target in self._tasks:
            self.add_remote_trigger(plan.target, plan.trigger,
                                    plan.elevation_level,
                                    suspend_interval=plan.suspend_interval)

    def set_trigger_armed(self, target: str, armed: bool) -> bool:
        """Flip a guarded task's armed flag; returns the previous state.

        Emits a ``trigger_armed`` / ``trigger_disarmed`` trace event on
        actual transitions (the channel's SelfMonitor-style audit trail).
        """
        state = self._state(target)
        if state.remote_trigger is None:
            raise ConfigurationError(
                f"task {target!r} has no remote trigger")
        prev = state.trigger_armed
        state.trigger_armed = bool(armed)
        if prev != state.trigger_armed:
            if state.trigger_armed:
                # Full-rate resume: while disarmed the suspend gate may
                # have parked next_due up to suspend_interval ahead and
                # let the sampler keep a grown interval earned on the
                # healthy stream. The arm edge signals a suspected
                # incident, so the guard probes again at the very next
                # offer and at the default rate.
                state.sampler.resume_full_rate()
                state.next_due = 0
            if self._trace is not None:
                self._trace.emit(
                    "trigger_armed" if state.trigger_armed
                    else "trigger_disarmed",
                    task=target, shard=self._trace_shard,
                    trigger=state.remote_trigger)
        return prev

    def trigger_status(self, name: str) -> dict[str, Any]:
        """The task's channel wiring: guard state and/or watch state.

        Empty dict for tasks outside the channel; ``trigger`` / ``armed``
        / ``suspend_interval`` / ``suspensions`` for guarded targets,
        ``watch`` (the watcher's state_dict) for edge sources.
        """
        state = self._state(name)
        status: dict[str, Any] = {}
        if state.remote_trigger is not None:
            status["trigger"] = state.remote_trigger
            status["armed"] = state.trigger_armed
            status["suspend_interval"] = state.suspend_interval
            status["suspensions"] = state.trigger_suspensions
        if state.watch is not None:
            status["watch"] = state.watch.state_dict()
        return status

    def trigger_suspensions(self, name: str) -> int:
        """Consumed offers the disarmed guard deferred so far."""
        return self._state(name).trigger_suspensions

    def trigger_accounting(self) -> tuple[int, float]:
        """``(suspensions, est_probes_saved)`` across guarded tasks.

        Each suspension pushes the guarded task's next probe out to
        ``suspend_interval`` instead of the full violation-likelihood
        rate, skipping up to ``suspend_interval - 1`` probe collections —
        the estimate the ``volley_trigger_probe_cost_saved`` gauge
        exports (an upper bound; the sampler may already have been
        backed off).
        """
        suspensions = 0
        saved = 0.0
        for state in self._tasks.values():
            if state.remote_trigger is None:
                continue
            suspensions += state.trigger_suspensions
            saved += state.trigger_suspensions * (state.suspend_interval - 1)
        return suspensions, saved

    def set_trigger_sink(self, sink: Callable[[dict[str, Any]], None]
                         | None) -> None:
        """Attach a callable receiving each arm/disarm edge synchronously.

        Like traces and alert callbacks, sinks are not serialised —
        owners re-attach after restore. Buffered delivery via
        :meth:`drain_trigger_events` works with or without a sink.
        """
        self._trigger_sink = sink

    def drain_trigger_events(self) -> list[dict[str, Any]]:
        """Pop the buffered arm/disarm edges (oldest first).

        Each event is ``{"op": "arm"|"disarm", "trigger": name,
        "step": int, "value": float}``. The cluster coordinator polls
        this per worker. With a sink attached edges are delivered
        synchronously instead of buffered (so an in-process runtime
        never accumulates events nobody drains); without one the buffer
        is a bounded ring — edges evicted unread are lost, like trace
        events under a storm.
        """
        events = list(self._trigger_events)
        self._trigger_events.clear()
        return events

    def _watch_edge(self, state: TaskState, value: float,
                    step: int) -> None:
        edge = state.watch.observe(value, step)
        if edge is None:
            return
        event = {"op": edge, "trigger": state.name,
                 "step": int(step), "value": float(value)}
        if self._trigger_sink is not None:
            self._trigger_sink(event)
        else:
            self._trigger_events.append(event)

    def _state(self, name: str) -> TaskState:
        try:
            return self._tasks[name]
        except KeyError:
            raise ConfigurationError(f"unknown task {name!r}") from None

    def due(self, name: str, step: int) -> bool:
        """Whether the task wants a sampling operation at ``step``.

        Callers may skip the (expensive) collection work whenever this is
        False — that skipping *is* the saving.
        """
        state = self._state(name)
        if state.soa_row >= 0:
            return step >= int(self._soa.next_due[state.soa_row])
        return step >= state.next_due

    def next_due(self, name: str) -> int:
        """Grid step of the task's next wanted sample."""
        state = self._state(name)
        if state.soa_row >= 0:
            return int(self._soa.next_due[state.soa_row])
        return state.next_due

    def offer(self, name: str, value: float, step: int,
              ) -> SamplingDecision | None:
        """Push a collected value for a task.

        Returns the sampling decision when the value was consumed as a
        scheduled sample, or ``None`` when the task was not due (the
        value still refreshes trigger state for tasks gated on this one).

        Alerts fire synchronously through the task's callback.
        """
        state = self._state(name)
        if state.soa_row >= 0:
            interval = self._offer_soa(state, value, step)
            if interval is None:
                return None
            engine = self._soa
            flags = int(engine.last_flags[state.soa_row])
            return SamplingDecision(
                next_interval=interval,
                misdetection_bound=float(engine.last_beta[state.soa_row]),
                grew=bool(flags & 1), reset=bool(flags & 2),
                violation=bool(flags & 4))
        self._last_seen[name] = value
        if state.watch is not None:
            self._watch_edge(state, value, step)
        if state.task_type != "value":
            state.absorb(value)
        if step < state.next_due:
            return None

        monitored = state.monitored(step, value)
        decision = state.sampler.observe(monitored, step)
        state.samples_taken += 1

        interval = decision.next_interval
        if state.trigger_task is not None:
            trigger_value = self._last_seen.get(state.trigger_task)
            if (trigger_value is not None
                    and trigger_value < state.trigger_level):
                interval = max(interval, state.suspend_interval)
        if (state.remote_trigger is not None and not state.trigger_armed
                and state.suspend_interval > interval):
            interval = state.suspend_interval
            state.trigger_suspensions += 1
        state.next_due = step + max(1, interval)

        alert = None
        if decision.violation:
            alert = state.make_alert(step, monitored)
            state.alerts.append(alert)
            if state.on_alert is not None:
                state.on_alert(alert)
        trace = self._trace
        if trace is not None:
            if decision.grew or decision.reset:
                trace.emit("interval_adapted", task=name,
                           shard=self._trace_shard, step=step,
                           interval=decision.next_interval,
                           grew=decision.grew, reset=decision.reset,
                           beta=decision.misdetection_bound)
            if alert is not None:
                trace.emit("violation", task=name,
                           shard=self._trace_shard, step=step,
                           value=alert.value,
                           threshold=alert.threshold)
        return decision

    def offer_fast(self, name: str, value: float, step: int) -> int | None:
        """Allocation-light twin of :meth:`offer` (DESIGN.md S27).

        Identical behaviour — aggregation, trigger gating, schedule
        advance, alert callbacks and counters — but the sampler is driven
        through its fused
        :meth:`~repro.core.adaptation.ViolationLikelihoodSampler.observe_fast`
        path and no :class:`~repro.core.adaptation.SamplingDecision` is
        constructed. Returns the sampler's next interval (the pre-gating
        value :meth:`offer` reports in its decision) when the value was
        consumed as a scheduled sample, ``None`` when the task was not
        due. This is the runtime shard drain loop's data path.
        """
        state = self._state(name)
        if state.soa_row >= 0:
            return self._offer_soa(state, value, step)
        self._last_seen[name] = value
        if state.watch is not None:
            self._watch_edge(state, value, step)
        if state.task_type != "value":
            state.absorb(value)
        if step < state.next_due:
            return None

        monitored = state.monitored(step, value)
        sampler = state.sampler
        raw_interval = sampler.observe_fast(monitored, step)
        state.samples_taken += 1

        interval = raw_interval
        if state.trigger_task is not None:
            trigger_value = self._last_seen.get(state.trigger_task)
            if (trigger_value is not None
                    and trigger_value < state.trigger_level):
                interval = max(interval, state.suspend_interval)
        if (state.remote_trigger is not None and not state.trigger_armed
                and state.suspend_interval > interval):
            interval = state.suspend_interval
            state.trigger_suspensions += 1
        state.next_due = step + max(1, interval)

        alert = None
        if sampler.last_violation:
            alert = state.make_alert(step, monitored)
            state.alerts.append(alert)
            if state.on_alert is not None:
                state.on_alert(alert)
        trace = self._trace
        if trace is not None:
            grew = sampler.last_grew
            reset = sampler.last_reset
            if grew or reset:
                trace.emit("interval_adapted", task=name,
                           shard=self._trace_shard, step=step,
                           interval=raw_interval, grew=grew, reset=reset,
                           beta=sampler.last_misdetection_bound)
            if alert is not None:
                trace.emit("violation", task=name,
                           shard=self._trace_shard, step=step,
                           value=alert.value,
                           threshold=alert.threshold)
        return raw_interval

    def _offer_soa(self, state: TaskState, value: float,
                   step: int) -> int | None:
        """SoA-row twin of :meth:`offer_fast` (identical behaviour)."""
        engine = self._soa
        row = state.soa_row
        engine.last_offered[row] = value
        engine.has_offered[row] = True
        if step < engine.next_due[row]:
            return None
        interval = engine.observe_one(row, value, step)
        engine.samples_taken[row] += 1
        # No trigger gating by construction (trigger wiring evicts).
        engine.next_due[row] = step + max(1, interval)
        self._soa_events(state, step, value, interval,
                         int(engine.last_flags[row]),
                         float(engine.last_beta[row]))
        return interval

    def _soa_events(self, state: TaskState, step: int, monitored: float,
                    interval: int, flags: int, beta: float) -> None:
        """Alert + trace fan-out for one consumed SoA offer."""
        if flags & 4:
            alert = Alert(time_index=step, value=monitored,
                          threshold=state.task.threshold)
            state.alerts.append(alert)
            if state.on_alert is not None:
                state.on_alert(alert)
        trace = self._trace
        if trace is not None:
            if flags & 3:
                trace.emit("interval_adapted", task=state.name,
                           shard=self._trace_shard, step=step,
                           interval=interval, grew=bool(flags & 1),
                           reset=bool(flags & 2), beta=beta)
            if flags & 4:
                trace.emit("violation", task=state.name,
                           shard=self._trace_shard, step=step,
                           value=monitored,
                           threshold=state.task.threshold)

    def offer_columns(self, rows: Any, steps: Any, values: Any,
                      names: Sequence[str | None] | None = None,
                      ) -> tuple[int, int, int, np.ndarray]:
        """Apply a decoded columnar offer batch (the binary hot path).

        ``rows`` are engine row ids (``-1`` = not engine-managed); rows
        that are negative or no longer active fall back to the scalar
        by-name path through ``names`` (parallel to the columns), which is
        always correct — an unknown or missing name counts as rejected,
        mirroring the per-offer error contract of :meth:`offer_fast`.

        Returns ``(applied, consumed, rejected, consumed_intervals)``;
        ``applied`` includes not-due offers, ``consumed_intervals`` holds
        one post-adaptation interval per consumed offer (for telemetry
        histograms).
        """
        engine = self._soa
        if engine is None:
            raise ConfigurationError(
                "offer_columns requires an SoA-enabled service")
        rows = np.asarray(rows, dtype=np.int64)
        steps = np.asarray(steps, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        neg_pos = np.flatnonzero(rows < 0)
        if len(neg_pos):
            keep = np.flatnonzero(rows >= 0)
            res = engine.run_columns(rows[keep], steps[keep], values[keep])
            # Ascending merge keeps per-task arrival order on the
            # fallback path.
            fb_positions = np.sort(np.concatenate(
                [neg_pos, keep[res.fallback]]))
        else:
            res = engine.run_columns(rows, steps, values)
            fb_positions = res.fallback
        applied, consumed = res.applied, res.consumed
        rejected = res.rejected
        fb_intervals: list[int] = []
        for pos in fb_positions.tolist():
            name = None if names is None else names[pos]
            if name is None:
                rejected += 1
                continue
            try:
                interval = self.offer_fast(name, float(values[pos]),
                                           int(steps[pos]))
            except (ConfigurationError, ValueError, TypeError):
                rejected += 1
                continue
            applied += 1
            if interval is not None:
                consumed += 1
                fb_intervals.append(interval)
        if len(res.viol_rows):
            soa_rows = self._soa_rows
            for row, step, value in zip(res.viol_rows.tolist(),
                                        res.viol_steps.tolist(),
                                        res.viol_values.tolist()):
                state = soa_rows.get(row)
                if state is None:
                    continue
                alert = Alert(time_index=step, value=value,
                              threshold=state.task.threshold)
                state.alerts.append(alert)
                if state.on_alert is not None:
                    state.on_alert(alert)
        trace = self._trace
        if trace is not None:
            for i in range(len(res.adapt_rows)):
                state = self._soa_rows.get(int(res.adapt_rows[i]))
                if state is None:
                    continue
                flags = int(res.adapt_flags[i])
                trace.emit("interval_adapted", task=state.name,
                           shard=self._trace_shard,
                           step=int(res.adapt_steps[i]),
                           interval=int(res.adapt_intervals[i]),
                           grew=bool(flags & 1), reset=bool(flags & 2),
                           beta=float(res.adapt_betas[i]))
            for i in range(len(res.viol_rows)):
                state = self._soa_rows.get(int(res.viol_rows[i]))
                if state is None:
                    continue
                trace.emit("violation", task=state.name,
                           shard=self._trace_shard,
                           step=int(res.viol_steps[i]),
                           value=float(res.viol_values[i]),
                           threshold=state.task.threshold)
        intervals = res.consumed_intervals
        if fb_intervals:
            intervals = np.concatenate(
                [intervals, np.asarray(fb_intervals, dtype=np.int64)])
        return applied, consumed, rejected, intervals

    def alerts(self, name: str) -> list[Alert]:
        """Alerts raised by a task so far (chronological)."""
        return list(self._state(name).alerts)

    def samples_taken(self, name: str) -> int:
        """Sampling operations consumed by a task so far."""
        state = self._state(name)
        if state.soa_row >= 0:
            return int(self._soa.samples_taken[state.soa_row])
        return state.samples_taken

    def interval(self, name: str) -> int:
        """A task's current sampling interval (in default intervals)."""
        state = self._state(name)
        if state.soa_row >= 0:
            return int(self._soa.interval[state.soa_row])
        return state.sampler.interval

    def observations(self, name: str) -> int:
        """Values offered while the task was due (sampler observations)."""
        state = self._state(name)
        if state.soa_row >= 0:
            return int(self._soa.observations[state.soa_row])
        return state.sampler.observations

    def task_type(self, name: str) -> str:
        """A task's type: ``"value"``, ``"quantile"`` or ``"entropy"``."""
        return self._state(name).task_type

    def task_estimate(self, name: str) -> float | None:
        """The current substrate estimate behind a typed task.

        Quantile tasks report the estimated ``p_q`` (value frame),
        entropy tasks the windowed entropy in bits; ``None`` for scalar
        tasks — exported through the runtime's ``task_info`` op so
        operators can see what the predicate currently evaluates to
        without waiting for an alert.
        """
        state = self._state(name)
        if state.task_type == "quantile":
            return float(state.substrate.quantile_value())
        if state.task_type == "entropy":
            return float(state.substrate.entropy())
        return None

    def task_type_counts(self) -> dict[str, int]:
        """Registered tasks per task type (telemetry gauge fodder)."""
        counts: dict[str, int] = {}
        for state in self._tasks.values():
            counts[state.task_type] = counts.get(state.task_type, 0) + 1
        return counts

    def snapshot(self) -> dict[str, Any]:
        """Serialise the full service state to a JSON-able dict.

        Captures every registered task's spec, adaptation config, schedule
        position, sampler statistics (Welford state, current interval,
        patience streak), alert history, trigger wiring, window buffers and
        the trigger last-seen map — everything :meth:`restore` needs to
        resume with identical behaviour. Alert callbacks are not captured.

        SoA-backed tasks are synced back to their scalar fields first, so
        the snapshot format — and its fingerprint — is identical whether
        the service ran columnar or scalar.
        """
        for state in self._soa_rows.values():
            self._sync_soa(state)
        return {
            "version": SNAPSHOT_VERSION,
            "adaptation": _adaptation_to_dict(self._config),
            "tasks": [state.state_dict() for state in self._tasks.values()],
            "last_seen": dict(self._last_seen),
        }

    @classmethod
    def restore(cls, snapshot: dict[str, Any],
                on_alert: Callable[[str, Alert], None] | None = None,
                soa: bool = False) -> "MonitoringService":
        """Rebuild a service from a :meth:`snapshot` dict.

        Args:
            snapshot: a dict produced by :meth:`snapshot`.
            on_alert: optional ``(task_name, alert)`` callback attached to
                every restored task (callbacks cannot be serialised, so
                they are re-wired here).
            soa: adopt eligible restored tasks into an SoA engine
                (columnar hot path); snapshots carry no trace of the flag,
                so any snapshot restores either way.

        A restored service produces the same decision/alert stream as one
        that was never interrupted, given the same subsequent offers.
        """
        version = snapshot.get("version")
        if version != SNAPSHOT_VERSION:
            raise ConfigurationError(
                f"unsupported snapshot version {version!r}; "
                f"expected {SNAPSHOT_VERSION}")
        service = cls(_adaptation_from_dict(snapshot["adaptation"]),
                      soa=soa)
        for entry in snapshot.get("tasks", []):
            name = str(entry["name"])
            callback: AlertCallback | None = None
            if on_alert is not None:
                def callback(alert: Alert, _name: str = name) -> None:
                    on_alert(_name, alert)
            if name in service._tasks:
                raise ConfigurationError(
                    f"snapshot contains duplicate task {name!r}")
            service._tasks[name] = TaskState.from_state_dict(
                entry, on_alert=callback)
        for state in service._tasks.values():
            if (state.trigger_task is not None
                    and state.trigger_task not in service._tasks):
                raise ConfigurationError(
                    f"snapshot task {state.name!r} references missing "
                    f"trigger {state.trigger_task!r}")
        service._last_seen = {str(k): float(v) for k, v in
                              snapshot.get("last_seen", {}).items()}
        if service._soa is not None:
            for state in service._tasks.values():
                if service._soa_eligible(state):
                    service._adopt_soa(state, state.sampler.config)
        return service
