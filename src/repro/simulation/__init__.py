"""Discrete-event simulation substrate (DESIGN.md S8).

:class:`SimulationEngine` executes callbacks in simulated time on a
deterministic event heap; :class:`RandomStreams` hands out reproducible
per-entity randomness. The datacenter testbed is built on these.
"""

from repro.simulation.clock import SimulationClock
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event, EventQueue
from repro.simulation.randomness import RandomStreams

__all__ = ["Event", "EventQueue", "RandomStreams", "SimulationClock",
           "SimulationEngine"]
