"""Simulated wall-clock time.

The paper assumes NTP-synchronised clocks across nodes (SII); in the
simulator a single :class:`SimulationClock` plays that role. Time is a
float in seconds and only ever moves forward.
"""

from __future__ import annotations

from repro.exceptions import SimulationError

__all__ = ["SimulationClock"]


class SimulationClock:
    """Monotonically advancing simulated time.

    The engine owns the clock; entities read :attr:`now` and must never
    set it directly.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move time forward to ``t``.

        Raises:
            SimulationError: if ``t`` lies in the past — an event queue
                handing out out-of-order events is a programming error
                worth failing loudly on.
        """
        if t < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {t} < {self._now}")
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationClock(now={self._now:.3f})"
