"""Discrete-event simulation engine (DESIGN.md S8).

A deliberately small, deterministic engine: callbacks scheduled on an
event heap, a forward-only clock, and helpers for periodic processes. The
datacenter testbed (:mod:`repro.datacenter`) builds monitors, coordinators
and cost accounting on top of it.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import SimulationError
from repro.simulation.clock import SimulationClock
from repro.simulation.events import Event, EventQueue

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """Run callbacks in simulated time.

    Typical use::

        engine = SimulationEngine()
        engine.schedule(10.0, lambda: print("at t=10"))
        engine.schedule_every(15.0, sample_once)   # periodic process
        engine.run_until(3600.0)
    """

    def __init__(self, start_time: float = 0.0):
        self._clock = SimulationClock(start_time)
        self._queue = EventQueue()
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._clock.now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-run, not-cancelled events."""
        return len(self._queue)

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self._queue.push(self._clock.now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute simulated time ``time``."""
        if time < self._clock.now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < {self._clock.now}")
        return self._queue.push(time, action)

    def schedule_every(self, period: float, action: Callable[[], None],
                       first_delay: float | None = None) -> Event:
        """Run ``action`` every ``period`` seconds until the run ends.

        ``action`` may raise ``StopIteration`` to terminate its own
        periodic rescheduling. Returns the handle of the *first*
        occurrence (cancelling it before it fires stops the chain).
        """
        if period <= 0:
            raise SimulationError(f"period must be > 0, got {period}")

        def tick() -> None:
            try:
                action()
            except StopIteration:
                return
            self.schedule(period, tick)

        delay = period if first_delay is None else first_delay
        return self.schedule(delay, tick)

    def step(self) -> bool:
        """Execute the next pending event; returns False when none remain."""
        next_time = self._queue.peek_time()
        if next_time is None:
            return False
        event = self._queue.pop()
        self._clock.advance_to(event.time)
        event.action()
        self._events_processed += 1
        return True

    def run_until(self, end_time: float) -> None:
        """Run all events with ``time <= end_time``; clock ends at
        ``end_time`` even if the queue drains earlier."""
        if end_time < self._clock.now:
            raise SimulationError(
                f"end_time {end_time} is in the past "
                f"(now={self._clock.now})")
        while True:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > end_time:
                break
            self.step()
        self._clock.advance_to(end_time)

    def run(self, max_events: int | None = None) -> int:
        """Run until the queue drains (or ``max_events``); returns the
        number of events executed by this call."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        return executed
