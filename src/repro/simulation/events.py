"""Event queue for the discrete-event engine.

Events are ``(time, sequence, action)`` triples kept in a binary heap; the
sequence number makes ordering total and FIFO-stable for simultaneous
events, so simulations are deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, seq)``; the action itself never participates
    in comparisons.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute time ``time``; returns a handle
        that supports :meth:`Event.cancel`."""
        if time < 0:
            raise SimulationError(f"event time must be >= 0, got {time}")
        event = Event(time=time, seq=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest pending (non-cancelled) event.

        Raises:
            SimulationError: when the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        raise SimulationError("pop from an empty event queue")

    def peek_time(self) -> float | None:
        """Time of the earliest pending event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
