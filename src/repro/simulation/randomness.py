"""Seeded per-entity random streams.

Large simulations need independent, reproducible randomness per entity
(VM traffic, per-metric noise, flag draws) so that adding or removing one
entity does not reshuffle every other stream. :class:`RandomStreams`
derives a child ``numpy`` generator per ``(namespace, index)`` key from a
single master seed using ``SeedSequence`` spawning keyed by a stable CRC
of the namespace.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Factory of named, reproducible random generators.

    Args:
        master_seed: single integer seed controlling the whole simulation.
    """

    def __init__(self, master_seed: int = 0):
        self._master_seed = int(master_seed)

    @property
    def master_seed(self) -> int:
        """The master seed the streams derive from."""
        return self._master_seed

    def stream(self, namespace: str, index: int = 0) -> np.random.Generator:
        """A generator unique to ``(namespace, index)``.

        Repeated calls with the same key return generators with identical
        state; different keys are statistically independent.
        """
        digest = zlib.crc32(namespace.encode("utf-8"))
        seq = np.random.SeedSequence([self._master_seed, digest, int(index)])
        return np.random.default_rng(seq)
