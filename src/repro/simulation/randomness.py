"""Seeded per-entity random streams.

Large simulations need independent, reproducible randomness per entity
(VM traffic, per-metric noise, flag draws) so that adding or removing one
entity does not reshuffle every other stream. :class:`RandomStreams`
derives a child ``numpy`` generator per ``(namespace, index)`` key from a
single master seed using ``SeedSequence`` spawning keyed by a stable CRC
of the namespace.

For keys richer than an integer index (e.g. the content hash of a sweep
job), :meth:`RandomStreams.stream_for` and :meth:`RandomStreams.derive`
accept arbitrary parts and fold them through SHA-256, which is stable
across processes, platforms and ``PYTHONHASHSEED`` — the property the
parallel sweep layer (:mod:`repro.experiments.parallel`) relies on to
make results independent of worker count and completion order.
"""

from __future__ import annotations

import hashlib
import zlib

import numpy as np

__all__ = ["RandomStreams"]


def _key_words(namespace: str, parts: tuple[object, ...]) -> list[int]:
    """Stable 32-bit words hashing ``(namespace, *parts)``.

    Parts are rendered with ``repr`` after type-tagging, so ``1`` and
    ``"1"`` key different streams.
    """
    digest = hashlib.sha256()
    digest.update(namespace.encode("utf-8"))
    for part in parts:
        digest.update(b"\x00")
        digest.update(type(part).__name__.encode("utf-8"))
        digest.update(b"\x01")
        digest.update(repr(part).encode("utf-8"))
    raw = digest.digest()
    return [int.from_bytes(raw[i:i + 4], "big") for i in range(0, 16, 4)]


class RandomStreams:
    """Factory of named, reproducible random generators.

    Args:
        master_seed: single integer seed controlling the whole simulation.
    """

    def __init__(self, master_seed: int = 0):
        self._master_seed = int(master_seed)

    @property
    def master_seed(self) -> int:
        """The master seed the streams derive from."""
        return self._master_seed

    def stream(self, namespace: str, index: int = 0) -> np.random.Generator:
        """A generator unique to ``(namespace, index)``.

        Repeated calls with the same key return generators with identical
        state; different keys are statistically independent.
        """
        digest = zlib.crc32(namespace.encode("utf-8"))
        seq = np.random.SeedSequence([self._master_seed, digest, int(index)])
        return np.random.default_rng(seq)

    def stream_for(self, namespace: str,
                   *parts: object) -> np.random.Generator:
        """A generator keyed by arbitrary parts (strings, ints, ...).

        Like :meth:`stream` but the key can be any tuple of simple
        values with stable ``repr``\\ s; the same ``(namespace, parts)``
        always yields an identically seeded generator in any process.
        """
        words = _key_words(namespace, parts)
        seq = np.random.SeedSequence([self._master_seed] + words)
        return np.random.default_rng(seq)

    def derive(self, namespace: str, *parts: object) -> "RandomStreams":
        """A child :class:`RandomStreams` keyed by ``(namespace, parts)``.

        Lets a subsystem (e.g. one sweep job) own a whole family of
        named streams that is independent of every sibling's.
        """
        words = _key_words(namespace, parts)
        seed = int.from_bytes(
            np.random.SeedSequence([self._master_seed] + words)
            .generate_state(2, np.uint64).tobytes(), "big")
        return RandomStreams(seed)
