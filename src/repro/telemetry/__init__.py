"""Telemetry subsystem: metrics, sketches, exposition, tracing (S29).

The observability layer for the live runtime and the sampling core:

* :mod:`repro.telemetry.registry` — process-wide
  :class:`~repro.telemetry.registry.MetricsRegistry` of counter / gauge /
  histogram instruments with label support and a no-op
  :data:`~repro.telemetry.registry.NULL_REGISTRY` default, so
  un-instrumented runs pay one attribute check per seam;
* :mod:`repro.telemetry.histogram` — the mergeable log-bucketed
  :class:`~repro.telemetry.histogram.LogHistogram` quantile sketch
  (DDSketch-style relative-error bound) behind every latency / size /
  interval distribution;
* :mod:`repro.telemetry.exposition` — Prometheus text rendering and the
  asyncio ``/metrics`` + ``/healthz`` + ``/trace`` HTTP endpoint;
* :mod:`repro.telemetry.trace` — the bounded
  :class:`~repro.telemetry.trace.DecisionTrace` ring buffer of structured
  sampler/coordinator decisions, drainable over the wire;
* :mod:`repro.telemetry.selfmon` — the
  :class:`~repro.telemetry.selfmon.SelfMonitor` loop registering the
  runtime's own health gauges as Volley monitoring tasks.

Quickstart against a running server (``--http-port``)::

    curl -s localhost:9464/metrics | grep volley_offer_latency
    curl -s localhost:9464/trace | tail

In-process::

    from repro.telemetry import MetricsRegistry, render_prometheus
    registry = MetricsRegistry()
    hits = registry.counter("hits_total", "requests served")
    hits.inc()
    print(render_prometheus(registry.snapshot()))
"""

from repro.telemetry.exposition import (CONTENT_TYPE_PROMETHEUS,
                                        TelemetryHTTPServer,
                                        render_prometheus)
from repro.telemetry.histogram import LogHistogram
from repro.telemetry.registry import (NULL_REGISTRY, Counter, Gauge,
                                      HistogramInstrument, MetricsFamily,
                                      MetricsRegistry, NullRegistry,
                                      SUMMARY_QUANTILES,
                                      instrument_samplers)
from repro.telemetry.selfmon import SELF_SHARD, SelfMonitor
from repro.telemetry.trace import (NULL_TRACE, DecisionTrace, NullTrace,
                                   TRACE_EVENT_KINDS)

__all__ = [
    "CONTENT_TYPE_PROMETHEUS",
    "Counter",
    "DecisionTrace",
    "Gauge",
    "HistogramInstrument",
    "LogHistogram",
    "MetricsFamily",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACE",
    "NullRegistry",
    "NullTrace",
    "SELF_SHARD",
    "SUMMARY_QUANTILES",
    "SelfMonitor",
    "TRACE_EVENT_KINDS",
    "TelemetryHTTPServer",
    "instrument_samplers",
    "render_prometheus",
]
