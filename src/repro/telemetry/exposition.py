"""Prometheus text exposition + the lightweight telemetry HTTP endpoint.

:func:`render_prometheus` turns a
:meth:`~repro.telemetry.registry.MetricsRegistry.snapshot` dict into the
Prometheus text format (version 0.0.4): counters and gauges verbatim,
histogram sketches as summaries (``{quantile="..."}`` series plus
``_sum``/``_count``), which scrapers ingest natively without caring that
the quantiles come from a mergeable sketch.

:class:`TelemetryHTTPServer` is a deliberately tiny asyncio HTTP/1.0
responder — no third-party web framework, no keep-alive, no streaming —
because the only clients are scrapers and ``curl``:

* ``GET /metrics``  -> Prometheus text format;
* ``GET /healthz``  -> JSON liveness summary;
* ``GET /trace``    -> the decision trace as JSONL (``?since=<seq>``).

It binds its own port (``RuntimeConfig.http_port``, off by default) so a
scrape can never occupy the ingest protocol's accept queue.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable

__all__ = ["CONTENT_TYPE_PROMETHEUS", "TelemetryHTTPServer",
           "render_prometheus"]

CONTENT_TYPE_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

_MAX_REQUEST_HEAD = 16 * 1024


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(names: list[str], values: list[str],
                 extra: tuple[str, str] | None = None) -> str:
    pairs = [f'{name}="{_escape_label_value(str(value))}"'
             for name, value in zip(names, values)]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """Render a registry snapshot to Prometheus text format 0.0.4."""
    lines: list[str] = []
    for name, family in snapshot.items():
        kind = family["kind"]
        help_text = family.get("help", "")
        label_names = list(family.get("label_names", []))
        if help_text:
            escaped = help_text.replace("\\", r"\\").replace("\n", r"\n")
            lines.append(f"# HELP {name} {escaped}")
        lines.append(f"# TYPE {name} "
                     f"{'summary' if kind == 'histogram' else kind}")
        for series in family.get("series", []):
            labels = [str(v) for v in series.get("labels", [])]
            value = series["value"]
            if kind == "histogram":
                for q, est in value.get("quantiles", {}).items():
                    text = _labels_text(label_names, labels,
                                        extra=("quantile", q))
                    lines.append(f"{name}{text} {_format_value(est)}")
                base = _labels_text(label_names, labels)
                lines.append(f"{name}_sum{base} "
                             f"{_format_value(value['sum'])}")
                lines.append(f"{name}_count{base} "
                             f"{_format_value(value['count'])}")
            else:
                text = _labels_text(label_names, labels)
                lines.append(f"{name}{text} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


Route = Callable[[dict[str, str]], tuple[int, str, str]]
"""A route handler: query params -> (status, content type, body)."""


class TelemetryHTTPServer:
    """Minimal asyncio HTTP responder for telemetry routes.

    Args:
        routes: path -> handler; each handler receives the (naively)
            parsed query parameters and returns
            ``(status, content_type, body)``.
        host / port: listen address (``port=0`` picks a free port).
    """

    def __init__(self, routes: dict[str, Route],
                 host: str = "127.0.0.1", port: int = 0):
        self._routes = dict(routes)
        self._host = host
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    async def start(self) -> None:
        """Bind and start serving; resolves :attr:`port`."""
        self._server = await asyncio.start_server(
            self._handle, host=self._host, port=self._requested_port,
            limit=_MAX_REQUEST_HEAD)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting and close (idempotent)."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    @staticmethod
    def _parse_query(target: str) -> tuple[str, dict[str, str]]:
        path, _, query = target.partition("?")
        params: dict[str, str] = {}
        for part in query.split("&"):
            if not part:
                continue
            key, _, value = part.partition("=")
            params[key] = value
        return path, params

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                ConnectionResetError):
            writer.close()
            return
        try:
            request_line = head.split(b"\r\n", 1)[0].decode(
                "ascii", "replace")
            parts = request_line.split(" ")
            method, target = (parts[0], parts[1]) if len(parts) >= 2 \
                else ("", "/")
            path, params = self._parse_query(target)
            if method not in ("GET", "HEAD"):
                status, ctype, body = 405, "text/plain", "method not allowed\n"
            else:
                handler = self._routes.get(path)
                if handler is None:
                    status, ctype, body = 404, "text/plain", "not found\n"
                else:
                    try:
                        status, ctype, body = handler(params)
                    except Exception as exc:  # a broken route must 500,
                        status, ctype = 500, "application/json"  # not hang
                        body = json.dumps({"error": str(exc)}) + "\n"
            payload = body.encode("utf-8")
            reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                      405: "Method Not Allowed", 500: "Internal Server Error",
                      503: "Service Unavailable"}.get(status, "OK")
            writer.write(
                f"HTTP/1.0 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n".encode("ascii"))
            if method != "HEAD":
                writer.write(payload)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
