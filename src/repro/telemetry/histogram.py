"""Mergeable log-bucketed histogram sketch (DDSketch-style).

Datacenter telemetry pipelines need latency/size distributions that are
cheap to update on the hot path, bounded in memory, *mergeable* across
shards and restarts, and accurate at the tail — exactly the profile of
the relative-error quantile sketches used by production monitoring
systems (Lim et al., *Approximate Quantiles for Datacenter Telemetry
Monitoring*; DDSketch, VLDB'19). :class:`LogHistogram` is that sketch:

* values are binned by ``ceil(log_gamma |v|)`` with
  ``gamma = (1 + alpha) / (1 - alpha)``, so every bucket's midpoint is
  within relative error ``alpha`` of any value in the bucket;
* buckets are sparse dicts — memory is O(distinct magnitudes), not
  O(observations), and a quiet stream costs a handful of entries;
* :meth:`merge` adds bucket counts, making the sketch a commutative
  monoid: per-shard sketches combine into a server-wide view with no
  accuracy loss beyond the shared ``alpha``;
* :meth:`quantile` answers any ``q`` with the bucket-midpoint guarantee
  ``|est - exact| <= alpha * |exact|`` for values of magnitude at least
  ``min_value`` (smaller magnitudes collapse into an exact zero bucket).

The guarantee is *relative*, which is what monitoring wants: a p99 of
800 ms is reported within +/-1% of 800 ms (default ``alpha = 0.01``),
not within a fixed absolute error sized for the median.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.exceptions import ConfigurationError

__all__ = ["LogHistogram"]

DEFAULT_RELATIVE_ERROR = 0.01
DEFAULT_MIN_VALUE = 1e-9


class LogHistogram:
    """Sparse log-bucketed quantile sketch with a relative-error bound.

    Args:
        relative_error: ``alpha`` — the quantile accuracy guarantee;
            every reported quantile is within ``alpha * |true value|``
            of the true sample quantile (for magnitudes >= ``min_value``).
        min_value: magnitudes below this are counted in an exact zero
            bucket (reported as ``0.0``); keeps the index range finite.

    Thread-safety: none needed — the runtime mutates sketches from one
    event loop; merging across processes goes through :meth:`to_dict`.
    """

    __slots__ = ("relative_error", "min_value", "_gamma", "_log_gamma",
                 "count", "total", "zero_count", "_pos", "_neg",
                 "_min", "_max")

    def __init__(self, relative_error: float = DEFAULT_RELATIVE_ERROR,
                 min_value: float = DEFAULT_MIN_VALUE):
        if not 0.0 < relative_error < 1.0:
            raise ConfigurationError(
                f"relative_error must be in (0, 1), got {relative_error}")
        if min_value <= 0.0:
            raise ConfigurationError(
                f"min_value must be > 0, got {min_value}")
        self.relative_error = relative_error
        self.min_value = min_value
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        self.count = 0
        self.total = 0.0
        self.zero_count = 0
        self._pos: dict[int, int] = {}
        self._neg: dict[int, int] = {}
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    # Updates

    def _index(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def record(self, value: float, count: int = 1) -> None:
        """Absorb one observation (O(1): a log, a dict upsert)."""
        value = float(value)
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.count += count
        self.total += value * count
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value > self.min_value:
            key = self._index(value)
            self._pos[key] = self._pos.get(key, 0) + count
        elif value < -self.min_value:
            key = self._index(-value)
            self._neg[key] = self._neg.get(key, 0) + count
        else:
            self.zero_count += count

    def merge(self, other: "LogHistogram") -> None:
        """Fold another sketch into this one (commutative, associative).

        Both sketches must share the same ``relative_error`` — merging
        across different bucket bases has no error bound.
        """
        if other.relative_error != self.relative_error:
            raise ConfigurationError(
                f"cannot merge sketches with different relative errors "
                f"({self.relative_error} vs {other.relative_error})")
        self.count += other.count
        self.total += other.total
        self.zero_count += other.zero_count
        for key, n in other._pos.items():
            self._pos[key] = self._pos.get(key, 0) + n
        for key, n in other._neg.items():
            self._neg[key] = self._neg.get(key, 0) + n
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # ------------------------------------------------------------------
    # Queries

    @property
    def min(self) -> float:
        """Smallest recorded value (exact); ``0.0`` when empty."""
        return 0.0 if self.count == 0 else self._min

    @property
    def max(self) -> float:
        """Largest recorded value (exact); ``0.0`` when empty."""
        return 0.0 if self.count == 0 else self._max

    @property
    def mean(self) -> float:
        """Exact running mean; ``0.0`` when empty."""
        return 0.0 if self.count == 0 else self.total / self.count

    def _bucket_value(self, index: int) -> float:
        # Midpoint of (gamma^(i-1), gamma^i] in the relative metric:
        # 2*gamma^i/(gamma+1) is within alpha of every value in the bucket.
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile of everything recorded so far.

        Uses the lower-rank convention ``rank = floor(q * (count - 1))``
        (the same convention the property suite's reference uses), so the
        estimate is within ``relative_error`` of the true sample value at
        that rank whenever its magnitude is at least ``min_value``. The
        extremes are special-cased: ``q = 0.0`` and ``q = 1.0`` return
        the exact tracked min/max rather than a bucket midpoint — the
        sketch knows those two order statistics precisely, so there is
        no reason to pay the relative error on them.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        rank = int(q * (self.count - 1))
        remaining = rank + 1
        # Walk negatives from most negative (largest magnitude) upward.
        for key in sorted(self._neg, reverse=True):
            remaining -= self._neg[key]
            if remaining <= 0:
                return -self._bucket_value(key)
        remaining -= self.zero_count
        if remaining <= 0:
            return 0.0
        for key in sorted(self._pos):
            remaining -= self._pos[key]
            if remaining <= 0:
                return self._bucket_value(key)
        return self.max  # pragma: no cover - counts always exhaust above

    def quantiles(self, qs: Iterable[float]) -> dict[str, float]:
        """Several quantiles keyed by their (stringified) ``q``."""
        return {f"{q:g}": self.quantile(q) for q in qs}

    def tail_count(self, threshold: float) -> int:
        """Observations recorded above ``threshold`` (bucket resolution).

        A bucket counts toward the tail when its midpoint exceeds the
        threshold — the same midpoint convention :meth:`quantile` uses,
        so the answer is exact up to values within ``relative_error`` of
        the threshold itself. O(distinct buckets), integer arithmetic
        only: two sketches' tail counts add without any float drift,
        which is what lets the quantile task substrate query its rotating
        sketch pair without materialising a merge.
        """
        threshold = float(threshold)
        tail = 0
        for key, n in self._pos.items():
            if self._bucket_value(key) > threshold:
                tail += n
        if threshold < 0.0:
            # The zero bucket holds |v| <= min_value, reported as 0.0.
            tail += self.zero_count
            for key, n in self._neg.items():
                if -self._bucket_value(key) > threshold:
                    tail += n
        return tail

    # ------------------------------------------------------------------
    # Serialisation (wire snapshots, checkpoint-adjacent tooling)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form; :meth:`from_dict` rebuilds an equal sketch."""
        return {
            "relative_error": self.relative_error,
            "min_value": self.min_value,
            "count": self.count,
            "total": self.total,
            "zero_count": self.zero_count,
            "pos": {str(k): v for k, v in self._pos.items()},
            "neg": {str(k): v for k, v in self._neg.items()},
            "min": None if self.count == 0 else self._min,
            "max": None if self.count == 0 else self._max,
        }

    @classmethod
    def from_dict(cls, entry: dict[str, Any]) -> "LogHistogram":
        """Rebuild a sketch serialised by :meth:`to_dict`."""
        sketch = cls(relative_error=float(entry["relative_error"]),
                     min_value=float(entry["min_value"]))
        sketch.count = int(entry["count"])
        sketch.total = float(entry["total"])
        sketch.zero_count = int(entry["zero_count"])
        sketch._pos = {int(k): int(v) for k, v in entry["pos"].items()}
        sketch._neg = {int(k): int(v) for k, v in entry["neg"].items()}
        if entry.get("min") is not None:
            sketch._min = float(entry["min"])
        if entry.get("max") is not None:
            sketch._max = float(entry["max"])
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LogHistogram(count={self.count}, mean={self.mean:.4g}, "
                f"alpha={self.relative_error})")
