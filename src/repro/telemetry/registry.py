"""Process-wide metrics registry: counters, gauges, histogram instruments.

The registry is the write side of the telemetry subsystem. Hot paths hold
*instrument* objects (a :class:`Counter` is one float attribute; ``inc``
is one addition) and never touch the registry after creation; readers —
the ``telemetry`` wire op, the ``/metrics`` endpoint — call
:meth:`MetricsRegistry.snapshot` which walks every family once.

Two deployment modes, mirroring the chaos harness' ``NOOP_HOOK``:

* a live :class:`MetricsRegistry` (``enabled = True``) hands out real
  instruments;
* :data:`NULL_REGISTRY` (``enabled = False``) hands out shared no-op
  singletons, so un-instrumented code paths pay exactly one attribute
  check (``registry.enabled`` / ``metrics.enabled``) and nothing else.

Instruments supporting *callbacks* (``fn=...``) read their value at
snapshot time instead of being pushed — used to export state the runtime
already tracks (shard counters, queue depths, checkpoint age) without
double bookkeeping on the hot path.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.exceptions import ConfigurationError
from repro.telemetry.histogram import DEFAULT_RELATIVE_ERROR, LogHistogram

__all__ = [
    "Counter",
    "Gauge",
    "HistogramInstrument",
    "MetricsFamily",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "SUMMARY_QUANTILES",
    "instrument_samplers",
]

SUMMARY_QUANTILES = (0.5, 0.9, 0.99)
"""Quantiles reported for histogram instruments in snapshots."""


class Counter:
    """Monotonically increasing value. ``inc`` is the entire hot path."""

    kind = "counter"
    enabled = True
    __slots__ = ("value", "_fn")

    def __init__(self, fn: Callable[[], float] | None = None):
        self.value = 0.0
        self._fn = fn

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def get(self) -> float:
        """Current value (evaluates the callback for callback series)."""
        return float(self._fn()) if self._fn is not None else self.value


class Gauge:
    """A value that can go up and down (or be computed at snapshot time)."""

    kind = "gauge"
    enabled = True
    __slots__ = ("value", "_fn")

    def __init__(self, fn: Callable[[], float] | None = None):
        self.value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def get(self) -> float:
        """Current value (evaluates the callback for callback series)."""
        return float(self._fn()) if self._fn is not None else self.value


class HistogramInstrument:
    """A :class:`~repro.telemetry.histogram.LogHistogram` behind the
    instrument interface (``observe`` on the write side, summary
    quantiles on the snapshot side)."""

    kind = "histogram"
    enabled = True
    __slots__ = ("sketch",)

    def __init__(self, relative_error: float = DEFAULT_RELATIVE_ERROR):
        self.sketch = LogHistogram(relative_error=relative_error)

    def observe(self, value: float) -> None:
        self.sketch.record(value)

    def observe_repeat(self, value: float, count: int) -> None:
        """Record ``value`` ``count`` times in one bucket update.

        The columnar apply path aggregates a whole batch's intervals with
        ``np.unique`` and records each distinct value once — identical
        sketch state to ``count`` individual :meth:`observe` calls.
        """
        self.sketch.record(value, count)

    def get(self) -> dict[str, Any]:
        """Summary view used by snapshots (count/sum/min/max/quantiles)."""
        sketch = self.sketch
        return {
            "count": sketch.count,
            "sum": sketch.total,
            "min": sketch.min,
            "max": sketch.max,
            "quantiles": sketch.quantiles(SUMMARY_QUANTILES),
        }

    def get_raw(self) -> dict[str, Any]:
        """Full mergeable sketch (``{"sketch": LogHistogram.to_dict()}``).

        Raw snapshots are what cluster workers ship to the coordinator:
        summaries cannot be combined, but the underlying sketches merge
        exactly (order-independent), so fleet-level quantiles are computed
        after the merge, never averaged from per-worker summaries.
        """
        return {"sketch": self.sketch.to_dict()}


class MetricsFamily:
    """One named metric and all its labelled series.

    Args:
        name: Prometheus-style metric name (``volley_updates_total``).
        kind: ``counter`` / ``gauge`` / ``histogram``.
        help: one-line description for the exposition format.
        label_names: label keys every series of this family carries.
        make: zero-arg factory for a new series instrument.
    """

    __slots__ = ("name", "kind", "help", "label_names", "_make", "_series")

    def __init__(self, name: str, kind: str, help: str,
                 label_names: Sequence[str],
                 make: Callable[..., Any]):
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(str(k) for k in label_names)
        self._make = make
        self._series: dict[tuple[str, ...], Any] = {}

    def labels(self, *values: Any, fn: Callable[[], float] | None = None):
        """The series instrument for one label-value tuple (cached).

        Args:
            values: label values matching ``label_names`` positionally.
            fn: optional snapshot-time callback (counters/gauges only);
                only honoured when the series is first created.
        """
        key = tuple(str(v) for v in values)
        if len(key) != len(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} takes {len(self.label_names)} "
                f"label(s) {list(self.label_names)}, got {len(key)}")
        series = self._series.get(key)
        if series is None:
            series = self._make(fn) if fn is not None else self._make()
            self._series[key] = series
        return series

    def remove(self, *values: Any) -> bool:
        """Drop one labelled series; True if it existed.

        Used when the labelled resource itself goes away (a shard migrated
        off a worker) — the next snapshot simply no longer carries the
        series, rather than exporting a frozen stale value forever.
        """
        key = tuple(str(v) for v in values)
        return self._series.pop(key, None) is not None

    def snapshot(self, raw: bool = False) -> dict[str, Any]:
        """JSON-able view of the family and every series.

        Args:
            raw: histogram series export their full mergeable sketch
                (:meth:`HistogramInstrument.get_raw`) instead of the
                summary view — the worker→coordinator telemetry feed.
        """
        use_raw = raw and self.kind == "histogram"
        return {
            "kind": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "series": [{"labels": list(key),
                        "value": (instrument.get_raw() if use_raw
                                  else instrument.get())}
                       for key, instrument in sorted(self._series.items())],
        }


class MetricsRegistry:
    """Registry of metric families; the process-wide telemetry root.

    Creating an already-registered family returns the existing one (so
    independent components can share families idempotently); re-registering
    under a different kind or label set is a configuration error.
    """

    enabled = True

    def __init__(self) -> None:
        self._families: dict[str, MetricsFamily] = {}

    def _family(self, name: str, kind: str, help: str,
                labels: Sequence[str],
                make: Callable[..., Any]) -> MetricsFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.label_names != tuple(labels):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{family.kind} with labels "
                    f"{list(family.label_names)}")
            return family
        family = MetricsFamily(name, kind, help, labels, make)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = (),
                fn: Callable[[], float] | None = None):
        """A counter family; with no labels, the single series directly."""
        family = self._family(name, "counter", help, labels, Counter)
        if labels:
            return family
        return family.labels(fn=fn)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = (),
              fn: Callable[[], float] | None = None):
        """A gauge family; with no labels, the single series directly."""
        family = self._family(name, "gauge", help, labels, Gauge)
        if labels:
            return family
        return family.labels(fn=fn)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  relative_error: float = DEFAULT_RELATIVE_ERROR):
        """A histogram family; with no labels, the single series directly."""
        def make(fn: Callable[[], float] | None = None,
                 _alpha: float = relative_error) -> HistogramInstrument:
            if fn is not None:
                raise ConfigurationError(
                    "histogram series do not support callbacks")
            return HistogramInstrument(relative_error=_alpha)

        family = self._family(name, "histogram", help, labels, make)
        if labels:
            return family
        return family.labels()

    def families(self) -> Iterable[MetricsFamily]:
        """Registered families in registration order."""
        return self._families.values()

    def snapshot(self, raw: bool = False) -> dict[str, Any]:
        """One JSON-able dict covering every family and series.

        This is the payload of the ``telemetry`` wire op and the input of
        :func:`repro.telemetry.exposition.render_prometheus`. Callback
        series are evaluated here, on the reader's dime — the hot path
        never pays for them. With ``raw=True`` histogram series carry
        their mergeable sketches instead of summaries (what cluster
        workers send the coordinator for fleet-level merging).
        """
        return {name: family.snapshot(raw=raw)
                for name, family in self._families.items()}


class _NullInstrument:
    """Shared no-op instrument: every mutator discards, ``get`` is 0."""

    enabled = False
    kind = "null"
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_repeat(self, value: float, count: int) -> None:
        pass

    def labels(self, *values: Any, fn: Any = None) -> "_NullInstrument":
        return self

    def remove(self, *values: Any) -> bool:
        return False

    def get(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """No-op twin of :class:`MetricsRegistry` (the un-instrumented default).

    Every factory returns the same inert singleton, so holding and driving
    instruments is safe everywhere; code that wants to skip instrumentation
    work entirely guards with ``registry.enabled`` — one attribute check,
    mirroring the chaos harness' ``NOOP_HOOK`` contract.
    """

    enabled = False

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = (),
                fn: Callable[[], float] | None = None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = (),
              fn: Callable[[], float] | None = None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  relative_error: float = DEFAULT_RELATIVE_ERROR,
                  ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def families(self) -> Iterable[MetricsFamily]:
        return ()

    def snapshot(self, raw: bool = False) -> dict[str, Any]:
        return {}


NULL_REGISTRY = NullRegistry()
"""The shared un-instrumented registry (``enabled = False``)."""


def instrument_samplers(registry: MetricsRegistry | NullRegistry) -> None:
    """Point the sampler fast path's process-wide counters at ``registry``.

    :meth:`~repro.core.adaptation.ViolationLikelihoodSampler.observe_fast`
    guards its counter updates behind one ``enabled`` attribute check on a
    module-level metrics object (see ``repro.core.adaptation``). This
    swaps that object: a live registry installs real counters
    (``volley_sampler_*``), :data:`NULL_REGISTRY` restores the zero-cost
    null object. Process-wide by design — the registry is the process'
    telemetry root and samplers are created in many places.
    """
    from repro.core import adaptation

    if registry is None or not registry.enabled:
        adaptation._SAMPLER_METRICS = adaptation._NULL_SAMPLER_METRICS
        return
    # The metrics object holds plain ints the fast path increments in
    # place; the registry reads them through snapshot-time callbacks.
    # Reuse the live object across re-instrumentation so callbacks
    # captured by an earlier registry keep seeing the same counters.
    metrics = adaptation._SAMPLER_METRICS
    if not metrics.enabled:
        metrics = adaptation._SamplerMetrics()
    for name, help_text, attr in (
            ("volley_sampler_observations_total",
             "Sampling operations absorbed by the fast path",
             "observations"),
            ("volley_sampler_grow_events_total",
             "Interval additive-increase events (fast path)",
             "grow_events"),
            ("volley_sampler_reset_events_total",
             "Interval resets to the default (fast path)", "reset_events"),
            ("volley_sampler_violations_total",
             "Threshold violations observed by the fast path",
             "violations")):
        registry.counter(name, help_text,
                         fn=lambda m=metrics, a=attr: float(getattr(m, a)))
    adaptation._SAMPLER_METRICS = metrics
